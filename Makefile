PYTHON ?= python
PYTHONPATH := src
export PYTHONPATH

.PHONY: test bench bench-full perf

# Tier-1 verification: the full unit/integration test suite.
test:
	$(PYTHON) -m pytest -x -q

# Perf regression harness: times the quick-mode sweep (serial and
# parallel) and writes BENCH_perf.json at the repo root.
bench:
	$(PYTHON) benchmarks/perf_harness.py

# The full experiment benchmark suite (figures, tables, ablations,
# scenario) in quick mode, plus the perf harness smoke.
bench-full:
	$(PYTHON) -m pytest benchmarks -q

# Perf harness with one worker per core.
perf:
	$(PYTHON) benchmarks/perf_harness.py --jobs 0
