PYTHON ?= python
PYTHONPATH := src
export PYTHONPATH

.PHONY: test bench bench-full bench-domains perf

# Tier-1 verification: the full unit/integration test suite.
test:
	$(PYTHON) -m pytest -x -q

# Perf regression harness: times the quick-mode sweep (serial and
# parallel) and writes BENCH_perf.json at the repo root.
bench:
	$(PYTHON) benchmarks/perf_harness.py

# The full experiment benchmark suite (figures, tables, ablations,
# scenario) in quick mode, plus the perf harness smoke.
bench-full:
	$(PYTHON) -m pytest benchmarks -q

# Domain-sharding legs (flat vs. domained at 2048 nodes, plus the
# 10k-node leg); skips the scale/obs/sampler/faults sections and
# writes to a scratch report so the committed BENCH_perf.json keeps
# all of its sections.
bench-domains:
	$(PYTHON) benchmarks/perf_harness.py --no-scale-bench \
	    --no-obs-bench --no-sampler-bench --no-faults-bench \
	    --output BENCH_domains.json

# Perf harness with one worker per core.
perf:
	$(PYTHON) benchmarks/perf_harness.py --jobs 0
