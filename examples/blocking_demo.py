#!/usr/bin/env python
"""Anatomy of a blocking episode and its resolution.

Constructs the paper's §2 blocking state on a 32-node cluster (the
constructed scenario of ``repro.experiments.scenario``) and narrates
the reconfiguration routine's timeline: blocking detection, the
reserving period, the rescue migration, dedicated service, and the
adaptive release.

Run:  python examples/blocking_demo.py
"""

from repro.core.blocking import BlockingDetector
from repro.experiments.scenario import (
    large_job_slowdowns,
    run_blocking_scenario,
)


def main():
    print("Running the constructed blocking scenario under "
          "G-Loadsharing...")
    base = run_blocking_scenario("g-loadsharing")
    print(f"  baseline: {base.summary.blocking_events} blocking events, "
          f"{base.summary.total_paging_time_s:,.0f} s of paging, "
          f"mean large-job slowdown "
          f"{sum(large_job_slowdowns(base)) / 4:.2f}\n")

    print("Same workload under V-Reconfiguration...")
    reco = run_blocking_scenario("v-reconfiguration")
    summary = reco.summary
    print(f"  paging time: {summary.total_paging_time_s:,.0f} s "
          f"(was {base.summary.total_paging_time_s:,.0f})")
    print(f"  mean large-job slowdown: "
          f"{sum(large_job_slowdowns(reco)) / 4:.2f}")
    print(f"  reservations: {summary.extra.get('reservations', 0)}, "
          f"rescues: "
          f"{summary.extra.get('reconfiguration_migrations', 0)}\n")

    print("Reconfiguration timeline (reserve -> ready -> assign -> "
          "arrive -> release):")
    for event in reco.policy.reservation_timeline:
        job = f" job={event.job_id}" if event.job_id is not None else ""
        print(f"  t={event.time:8.1f}s  {event.kind:8s} "
              f"node={event.node_id}{job}")

    print("\nBlocking state after the run (should be clear):")
    report = BlockingDetector(reco.cluster).assess()
    print(f"  blocked nodes: {list(report.blocked_nodes) or 'none'}")
    print(f"  reserved nodes: "
          f"{[n.node_id for n in reco.cluster.reserved_nodes()] or 'none'}")


if __name__ == "__main__":
    main()
