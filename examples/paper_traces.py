#!/usr/bin/env python
"""Reproduce one of the paper's published trace experiments.

Generates SPEC-Trace-3 (578 jobs, ~3581 s, the "normal" submission
rate), replays it on the paper's 32-node cluster 1 under both
policies, and prints the Figure 1/2 quantities for that trace.

Run:  python examples/paper_traces.py [trace_index] [--app]
"""

import sys

from repro.experiments.runner import default_config, run_experiment
from repro.metrics.report import percentage_reduction
from repro.workload.generator import build_trace, program_mix
from repro.workload.programs import WorkloadGroup
from repro.workload.trace import summarize


def main():
    args = [a for a in sys.argv[1:]]
    group = WorkloadGroup.APP if "--app" in args else WorkloadGroup.SPEC
    indices = [int(a) for a in args if a.isdigit()] or [3]
    index = indices[0]

    config = default_config(group)
    trace = build_trace(group, index, num_nodes=config.num_nodes)
    print(summarize(trace))
    print(f"program mix: {program_mix(trace)}\n")

    results = {}
    for policy in ("g-loadsharing", "v-reconfiguration"):
        print(f"running {trace.name} under {policy} ...")
        results[policy] = run_experiment(group, index,
                                         policy=policy).summary
    base = results["g-loadsharing"]
    reco = results["v-reconfiguration"]

    print(f"\n{trace.name} on the paper's cluster "
          f"({group.value} group):\n")
    rows = [
        ("total execution time (s)", base.total_execution_time_s,
         reco.total_execution_time_s),
        ("total queuing time (s)", base.total_queuing_time_s,
         reco.total_queuing_time_s),
        ("total paging time (s)", base.total_paging_time_s,
         reco.total_paging_time_s),
        ("average slowdown", base.average_slowdown,
         reco.average_slowdown),
        ("average idle memory (MB)", base.average_idle_memory_mb,
         reco.average_idle_memory_mb),
        ("average job balance skew", base.average_job_balance_skew,
         reco.average_job_balance_skew),
    ]
    print(f"{'metric':28s} {'G-Loadsharing':>15s} "
          f"{'V-Reconfig':>15s} {'reduction':>10s}")
    for name, g, v in rows:
        print(f"{name:28s} {g:15,.1f} {v:15,.1f} "
              f"{percentage_reduction(g, v):9.1f}%")
    print(f"\nV-Reconfiguration activity: {reco.extra}")


if __name__ == "__main__":
    main()
