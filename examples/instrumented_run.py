#!/usr/bin/env python
"""Instrumented run: tracing, lifetime analysis, and result export.

Combines the observability tooling around one experiment, the way the
paper's §3.1 kernel facilities wrap a real run:

* the :class:`~repro.tracing.ExecutionTracer` event log and per-job
  lifetime breakdown;
* the [5]-style lifetime-distribution analysis behind the victim
  selection heuristic;
* CSV/JSON export of the run summary.

Run:  python examples/instrumented_run.py
"""

import io

from repro.analysis.lifetimes import analyze_lifetimes
from repro.cluster import Cluster
from repro.experiments.runner import default_config
from repro.metrics.collector import MetricsCollector
from repro.metrics.export import summaries_to_csv, summary_to_dict
from repro.metrics.summary import summarize_run
from repro.scheduling import GLoadSharing
from repro.tracing import ExecutionTracer, lifetime_breakdown_table
from repro.workload.generator import build_trace
from repro.workload.programs import WorkloadGroup


def main():
    config = default_config(WorkloadGroup.APP)
    trace = build_trace(WorkloadGroup.APP, 1, num_nodes=config.num_nodes)
    trace.jobs = trace.jobs[::6]  # small sample for a quick demo

    cluster = Cluster(config)
    policy = GLoadSharing(cluster)
    tracer = ExecutionTracer(cluster)
    tracer.watch_policy(policy)
    collector = MetricsCollector(cluster)

    jobs = trace.build_jobs()
    for job in jobs:
        cluster.sim.schedule_at(job.submit_time,
                                lambda job=job: policy.submit(job))
    print(f"replaying {len(jobs)} jobs of {trace.name} with tracing ...")
    cluster.sim.run()

    print("\nFirst 12 events:")
    print(tracer.render_timeline(limit=12))

    print("\nTop 5 jobs by wall time:")
    print(lifetime_breakdown_table(tracer.finished_jobs(), top=5))

    stats = analyze_lifetimes([job.cpu_work_s for job in jobs])
    print(f"\nLifetime distribution: n={stats.count} "
          f"mean={stats.mean_s:.0f}s median={stats.median_s:.0f}s "
          f"p90={stats.p90_s:.0f}s "
          f"P(L>2t|L>t)~{stats.doubling_survival:.2f} "
          f"(heavy-tailed: {stats.heavy_tailed})")

    summary = summarize_run(policy, jobs, collector, trace.name)
    print("\nSummary dict keys:", sorted(summary_to_dict(summary)))
    buffer = io.StringIO()
    summaries_to_csv([summary], target=buffer)
    print("CSV header:", buffer.getvalue().splitlines()[0])


if __name__ == "__main__":
    main()
