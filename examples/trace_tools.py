#!/usr/bin/env python
"""Working with workload traces: generate, save, inspect, replay.

Shows the trace toolchain the paper's methodology describes (§3.3.2):
a generated trace with its per-job header and activity records, the
on-disk format round-trip, and a replay of a saved trace.

Run:  python examples/trace_tools.py
"""

import os
import tempfile

from repro.experiments.runner import default_config, run_trace
from repro.workload.generator import build_trace
from repro.workload.programs import WorkloadGroup
from repro.workload.trace import Trace, summarize


def main():
    trace = build_trace(WorkloadGroup.APP, 1, seed=7)
    print(summarize(trace))

    job = trace.jobs[0]
    print(f"\nFirst job header: id={job.job_index} "
          f"submit={job.submit_time:.2f}s program={job.program} "
          f"lifetime={job.lifetime_s:.1f}s home={job.home_node}")
    print("Memory phases (progress_s -> demand_mb):")
    for start, demand in job.memory_phases:
        print(f"  {start:8.1f} -> {demand:7.1f}")

    records = list(job.activity_records())
    print(f"\n10 ms activity records: {len(records)} "
          f"(paper §3.3.2 format); first three:")
    for record in records[:3]:
        print(f"  t+{record.offset_ms:6.0f}ms cpu={record.cpu_fraction} "
              f"mem={record.memory_mb:.1f}MB io_ops={record.io_ops}")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "app-trace-1.trace")
        trace.write(path)
        size_kb = os.path.getsize(path) / 1024
        loaded = Trace.read(path)
        print(f"\nSaved to {path} ({size_kb:.0f} KiB), "
              f"loaded {loaded.num_jobs} jobs back")

        print("\nReplaying the saved trace (25% subsample) under "
              "G-Loadsharing ...")
        loaded.jobs = loaded.jobs[::4]
        result = run_trace(loaded, "g-loadsharing",
                           default_config(WorkloadGroup.APP))
        print(f"  makespan {result.summary.makespan_s:,.0f}s, "
              f"average slowdown {result.summary.average_slowdown:.2f}")


if __name__ == "__main__":
    main()
