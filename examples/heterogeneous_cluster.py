#!/usr/bin/env python
"""Heterogeneous clusters and the network-RAM extension (paper §2.3/§6).

The paper's §6 notes real systems "are likely to be heterogeneous from
CPU speed, memory capacity, to network interfaces", and §2.3 points at
network RAM ([12]) for jobs that cannot fit even a reserved
workstation.  This example exercises both extensions:

* a 16-node cluster where a quarter of the nodes have double memory
  and 1.5x CPU speed — §2.3 says reserved workstations should be the
  ones with large memory, and the reconfiguration's candidate choice
  naturally prefers them (largest idle memory);
* the same workload with network RAM enabled: page faults are served
  from remote memory (~1 ms) instead of disk (10 ms).

Run:  python examples/heterogeneous_cluster.py
"""

from repro.cluster import Cluster, ClusterConfig, Job, MemoryProfile
from repro.cluster.config import WorkstationSpec
from repro.core import VReconfiguration


def make_config(network_ram=False):
    config = ClusterConfig(
        num_nodes=16,
        spec=WorkstationSpec(cpu_mhz=233, memory_mb=128.0, swap_mb=128.0),
        cpu_threshold=4,
        network_ram=network_ram,
    )
    # four big-memory nodes (the natural reservation targets)
    for node_id in (12, 13, 14, 15):
        config.node_overrides[node_id] = WorkstationSpec(
            cpu_mhz=350, memory_mb=256.0, swap_mb=256.0,
            speed_factor=1.5)
    return config


def build_workload():
    jobs = []
    # two jobs too large for a small node's 120 MB user space
    for k in range(2):
        jobs.append(Job(program=f"huge-{k}", cpu_work_s=400.0,
                        memory=MemoryProfile.from_pairs(
                            [(0.0, 80.0), (20.0, 170.0)]),
                        submit_time=1.0 + k, home_node=k))
    for i in range(36):
        jobs.append(Job(program=f"small-{i}", cpu_work_s=80.0,
                        memory=MemoryProfile.constant(40.0),
                        submit_time=2.0 + 3.0 * i, home_node=i % 12))
    return jobs


def run(network_ram):
    cluster = Cluster(make_config(network_ram))
    policy = VReconfiguration(cluster)
    jobs = build_workload()
    for job in jobs:
        cluster.sim.schedule_at(job.submit_time,
                                lambda job=job: policy.submit(job))
    cluster.sim.run()
    huge = [job for job in jobs if job.program.startswith("huge")]
    reserved_used = {event.node_id
                     for event in policy.reservation_timeline
                     if event.kind == "assign"}
    return {
        "network_ram": network_ram,
        "total_page_s": sum(job.acct.page_s for job in jobs),
        "huge_slowdowns": [round(job.slowdown(), 2) for job in huge],
        "reserved_nodes_used": sorted(reserved_used),
        "reservations": policy.stats.extra.get("reservations", 0),
    }


def main():
    print("Heterogeneous 16-node cluster "
          "(nodes 12-15: 256 MB, 1.5x speed)\n")
    for network_ram in (False, True):
        result = run(network_ram)
        label = "network RAM" if network_ram else "disk paging"
        print(f"{label}:")
        for key, value in result.items():
            if key == "network_ram":
                continue
            print(f"  {key:20s} {value}")
        print()
    print("Note how reservations (if any were needed) land on the "
          "big-memory nodes,\nand network RAM shrinks the paging "
          "penalty of jobs that exceed a small node.")


if __name__ == "__main__":
    main()
