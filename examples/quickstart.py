#!/usr/bin/env python
"""Quickstart: simulate a small cluster under two scheduling policies.

Builds an 8-node cluster, submits a mixed workload (small jobs plus
one memory hog), and compares plain dynamic load sharing
(G-Loadsharing) against the paper's virtual reconfiguration
(V-Reconfiguration).

Run:  python examples/quickstart.py
"""

from repro.cluster import Cluster, ClusterConfig, Job, MemoryProfile
from repro.cluster.config import WorkstationSpec
from repro.core import VReconfiguration
from repro.scheduling import GLoadSharing


def build_workload():
    """A hog that grows to 240 MB plus a stream of 40 small jobs."""
    jobs = [Job(program="hog", cpu_work_s=600.0,
                memory=MemoryProfile.from_pairs(
                    [(0.0, 120.0), (30.0, 240.0)]),
                submit_time=1.0, home_node=0)]
    for i in range(40):
        jobs.append(Job(
            program=f"small-{i}", cpu_work_s=90.0,
            memory=MemoryProfile.constant(70.0),
            submit_time=2.0 + 4.0 * i, home_node=i % 8))
    return jobs


def run(policy_class):
    config = ClusterConfig(
        num_nodes=8,
        spec=WorkstationSpec(memory_mb=384.0, swap_mb=380.0),
        cpu_threshold=4,
    )
    cluster = Cluster(config)
    policy = policy_class(cluster)
    jobs = build_workload()
    for job in jobs:
        cluster.sim.schedule_at(job.submit_time,
                                lambda job=job: policy.submit(job))
    cluster.sim.run()
    slowdowns = [job.slowdown() for job in jobs]
    hog = jobs[0]
    return {
        "policy": policy.name,
        "makespan_s": max(job.finish_time for job in jobs),
        "average_slowdown": sum(slowdowns) / len(slowdowns),
        "hog_slowdown": hog.slowdown(),
        "total_page_s": sum(job.acct.page_s for job in jobs),
        "migrations": policy.stats.migrations,
        "blocking_events": policy.stats.blocking_events,
    }


def main():
    print("Quickstart: 8 nodes, 41 jobs, one growing memory hog\n")
    for policy_class in (GLoadSharing, VReconfiguration):
        result = run(policy_class)
        print(f"{result['policy']}:")
        for key, value in result.items():
            if key == "policy":
                continue
            if isinstance(value, float):
                print(f"  {key:20s} {value:10.2f}")
            else:
                print(f"  {key:20s} {value:10d}")
        print()


if __name__ == "__main__":
    main()
