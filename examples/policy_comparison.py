#!/usr/bin/env python
"""Compare every scheduling policy on one published trace.

Runs App-Trace-2 (the trace where the paper reports its clearest
group-2 gains) under all six policies and prints a ranking — the
design space the paper's §1 surveys: no sharing, CPU-count balancing,
memory-based placement, job suspension, dynamic CPU+memory sharing,
and virtual reconfiguration.

Run:  python examples/policy_comparison.py [--scale 0.5]
"""

import sys

from repro.experiments.runner import POLICIES, run_experiment
from repro.workload.programs import WorkloadGroup


def main():
    scale = 1.0
    if "--scale" in sys.argv:
        scale = float(sys.argv[sys.argv.index("--scale") + 1])

    rows = []
    for name in POLICIES:
        print(f"running App-Trace-2 under {name} "
              f"(scale={scale}) ...")
        summary = run_experiment(WorkloadGroup.APP, 2, policy=name,
                                 scale=scale).summary
        rows.append((name, summary))

    rows.sort(key=lambda item: item[1].average_slowdown)
    print(f"\n{'policy':20s} {'slowdown':>9s} {'queue (s)':>12s} "
          f"{'page (s)':>10s} {'migrations':>11s} {'p95 slow':>9s}")
    for name, s in rows:
        print(f"{name:20s} {s.average_slowdown:9.2f} "
              f"{s.total_queuing_time_s:12,.0f} "
              f"{s.total_paging_time_s:10,.0f} {s.migrations:11d} "
              f"{s.slowdown_percentile(95):9.2f}")
    best = rows[0][0]
    print(f"\nBest average slowdown: {best}")


if __name__ == "__main__":
    main()
