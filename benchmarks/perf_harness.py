"""Perf regression harness: time the quick-mode sweep and write
``BENCH_perf.json`` at the repo root.

The harness measures three things on a fixed, seeded workload:

* **single-run throughput** — events/sec of one quick-mode run
  (SPEC trace 3 under G-Loadsharing), the canonical hot-path figure;
* **serial sweep wall time** — the quick-mode figure-1-shaped sweep
  (traces 1/3/5 x both headline policies) executed with ``jobs=1``;
* **parallel sweep wall time** — the same sweep with ``--jobs``
  workers, verifying the summaries are identical to the serial ones
  before reporting the speedup.

``BENCH_perf.json`` records those numbers plus the environment
(cpu count, python version), giving every future PR a trajectory to
compare against.  ``baseline`` carries the pre-change numbers measured
on the same machine when this harness was introduced, so a regression
in single-run events/sec is visible without digging through history.

Usage::

    python benchmarks/perf_harness.py                 # jobs=4, quick scale
    python benchmarks/perf_harness.py --jobs 8
    python benchmarks/perf_harness.py --output /tmp/perf.json
    make bench                                        # repo-root Makefile
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.experiments.parallel import RunSpec, run_specs  # noqa: E402
from repro.experiments.runner import run_experiment  # noqa: E402
from repro.workload.generator import clear_trace_cache  # noqa: E402
from repro.workload.programs import WorkloadGroup  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         os.pardir))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_perf.json")

#: Quick-mode sweep shape: the light/normal/heavy SPEC traces under the
#: two headline policies, quarter-scale (matches benchmarks/conftest).
SWEEP_SCALE = 0.25
SWEEP_TRACES = (1, 3, 5)
SWEEP_POLICIES = ("g-loadsharing", "v-reconfiguration")

#: Pre-change numbers, measured on the machine that introduced this
#: harness (1 available core) immediately before the hot-path
#: optimization landed.  Regenerate when the harness shape changes.
BASELINE_PRE_CHANGE = {
    "single_run_events_per_s": 9996.0,
    "serial_sweep_wall_s": 9.75,
    "note": ("measured at commit preceding the parallel-sweep/hot-path "
             "PR, same machine, same sweep shape"),
}


def sweep_specs(scale: float = SWEEP_SCALE) -> List[RunSpec]:
    return [RunSpec(group=WorkloadGroup.SPEC, trace_index=index,
                    policy=policy, seed=0, scale=scale)
            for index in SWEEP_TRACES
            for policy in SWEEP_POLICIES]


def measure_single_run(scale: float = SWEEP_SCALE) -> dict:
    """Events/sec of one quick-mode run (trace generation excluded)."""
    clear_trace_cache()
    warm = run_experiment(WorkloadGroup.SPEC, 3, policy="g-loadsharing",
                          seed=0, scale=scale)  # warm the trace cache
    del warm
    started = time.perf_counter()
    result = run_experiment(WorkloadGroup.SPEC, 3, policy="g-loadsharing",
                            seed=0, scale=scale)
    wall_s = time.perf_counter() - started
    events = result.cluster.sim.event_count
    return {
        "wall_s": wall_s,
        "events": events,
        "events_per_s": events / wall_s if wall_s > 0 else 0.0,
    }


def measure_sweep(jobs: int, scale: float = SWEEP_SCALE) -> dict:
    """Wall seconds for the quick-mode sweep at ``jobs`` workers."""
    specs = sweep_specs(scale)
    started = time.perf_counter()
    summaries = run_specs(specs, jobs=jobs)
    wall_s = time.perf_counter() - started
    return {"jobs": jobs, "wall_s": wall_s, "runs": len(summaries),
            "summaries": summaries}


def run_harness(jobs: int = 4, scale: float = SWEEP_SCALE,
                output: Optional[str] = DEFAULT_OUTPUT) -> dict:
    """Measure, check determinism, and (optionally) write the report."""
    single = measure_single_run(scale)
    serial = measure_sweep(1, scale)
    parallel = measure_sweep(jobs, scale)
    if parallel["summaries"] != serial["summaries"]:
        raise AssertionError(
            "parallel sweep summaries differ from the serial ones — "
            "the determinism invariant is broken")
    speedup = (serial["wall_s"] / parallel["wall_s"]
               if parallel["wall_s"] > 0 else 0.0)
    report = {
        "harness": "benchmarks/perf_harness.py",
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "affinity_cpus": (len(os.sched_getaffinity(0))
                              if hasattr(os, "sched_getaffinity") else None),
        },
        "sweep": {
            "scale": scale,
            "traces": list(SWEEP_TRACES),
            "policies": list(SWEEP_POLICIES),
            "runs": serial["runs"],
        },
        "single_run": single,
        "serial_sweep_wall_s": serial["wall_s"],
        "parallel_sweep_wall_s": parallel["wall_s"],
        "parallel_jobs": jobs,
        "speedup": speedup,
        "deterministic": True,
        "baseline": BASELINE_PRE_CHANGE,
    }
    if output:
        with open(output, "w") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the quick-mode sweep and write BENCH_perf.json.")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel leg "
                             "(default 4; 0 = one per core)")
    parser.add_argument("--scale", type=float, default=SWEEP_SCALE,
                        help="trace subsampling factor (default 0.25)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="report path (default: repo-root "
                             "BENCH_perf.json)")
    args = parser.parse_args(argv)
    report = run_harness(jobs=args.jobs, scale=args.scale,
                         output=args.output)
    single = report["single_run"]
    print(f"single run : {single['events']} events in "
          f"{single['wall_s']:.2f}s = {single['events_per_s']:,.0f} ev/s")
    print(f"sweep      : serial {report['serial_sweep_wall_s']:.2f}s, "
          f"jobs={report['parallel_jobs']} "
          f"{report['parallel_sweep_wall_s']:.2f}s, "
          f"speedup {report['speedup']:.2f}x "
          f"(on {report['environment']['cpu_count']} cores)")
    base = report["baseline"]
    print(f"baseline   : {base['single_run_events_per_s']:,.0f} ev/s, "
          f"serial sweep {base['serial_sweep_wall_s']:.2f}s (pre-change)")
    print(f"[wrote {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
