"""Perf regression harness: time the quick-mode sweep and write
``BENCH_perf.json`` at the repo root.

The harness measures, on a fixed, seeded workload (timed gate legs
run best-of-:data:`BENCH_REPEATS` so a single noisy-neighbor sample
cannot trip the CI ratio gates):

* **single-run throughput** — events/sec of one quick-mode run
  (SPEC trace 3 under G-Loadsharing), the canonical hot-path figure;
* **serial sweep wall time** — the quick-mode figure-1-shaped sweep
  (traces 1/3/5 x both headline policies) executed with ``jobs=1``;
* **parallel sweep wall time** — the same sweep with ``--jobs``
  workers, verifying the summaries are identical to the serial ones
  before reporting the speedup;
* **cluster-size scaling** — SPEC trace 3 under the memory policy at
  32 and 256 nodes with the candidate index on, plus 256 nodes with
  the index off (the seed's full-rebuild path) and 256 nodes with the
  columnar (SoA) state layer off (the per-object path), verifying
  that all 256-node summaries are identical before reporting the
  speedups, and a 2048-node columnar run demonstrating
  thousands-of-nodes scale;
* **domain sharding** — the 2048-node run repeated flat and with the
  load-info directory split into 16 domains (gated in CI via
  ``--domain-fail-below-ratio``), plus a 10 000-node 32-domain leg
  showing the two-level directory at a scale the flat path never
  reaches; each leg records its average slowdown so the throughput
  win is visible next to its scheduling-quality cost;
* **instrumentation overhead** — the single run repeated with a
  metrics-only obs session attached (see :mod:`repro.obs`), verifying
  the summaries are identical modulo the ``obs.*`` keys and reporting
  the obs-on/obs-off overhead factor (gated in CI via
  ``--max-obs-overhead-factor``);
* **lifecycle/sampler overhead** — the single run repeated with the
  full explain-a-run instrumentation (lifecycle tracker + 10 s
  cluster sampler), verifying the summary is unchanged modulo
  ``obs.*`` *and* the lifecycle partition invariant holds, reporting
  the overhead factor (gated under the same
  ``--max-obs-overhead-factor``);
* **fault-injection overhead** — the single run repeated with the
  failure model enabled (see :mod:`repro.faults`), verifying the
  fault schedule is deterministic (two runs, identical summaries) and
  reporting the faults-on/faults-off factor.  The faults-*off* run is
  the one the ``--fail-below-ratio`` gate reads, so the fault
  subsystem cannot mask a hot-path regression;
* **streaming ingest** — a live session (ephemeral HTTP port, paced
  engine) saturated with ``POST /submit`` job batches for a fixed
  wall window, reporting the sustained jobs/s the whole
  HTTP → validate → enqueue → slice-boundary-admit pipeline clears,
  plus the engine's max sim lag during the flood (gated in CI via
  ``--ingest-fail-below-ratio``).

``BENCH_perf.json`` records those numbers plus the environment
(cpu count, python version), giving every future PR a trajectory to
compare against.  ``baseline`` carries the pre-change numbers measured
on the same machine when this harness was introduced, so a regression
in single-run events/sec is visible without digging through history.
``--fail-below-ratio R`` additionally reads the *committed*
``BENCH_perf.json`` before overwriting it and exits non-zero if the
fresh single-run events/sec fall below ``R`` times the committed
figure — the CI perf-smoke gate.

Usage::

    python benchmarks/perf_harness.py                 # jobs=auto, quick scale
    python benchmarks/perf_harness.py --jobs 8
    python benchmarks/perf_harness.py --output /tmp/perf.json
    python benchmarks/perf_harness.py --fail-below-ratio 0.6
    make bench                                        # repo-root Makefile
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.experiments.parallel import (  # noqa: E402
    RunSpec,
    default_jobs,
    run_specs,
)
from repro.experiments.runner import default_config, run_experiment  # noqa: E402
from repro.workload.generator import build_trace, clear_trace_cache  # noqa: E402
from repro.workload.programs import WorkloadGroup  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         os.pardir))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_perf.json")

#: Quick-mode sweep shape: the light/normal/heavy SPEC traces under the
#: two headline policies, quarter-scale (matches benchmarks/conftest).
SWEEP_SCALE = 0.25
SWEEP_TRACES = (1, 3, 5)
SWEEP_POLICIES = ("g-loadsharing", "v-reconfiguration")

#: Pre-change numbers, measured on the machine that introduced this
#: harness (1 available core) immediately before the hot-path
#: optimization landed.  Regenerate when the harness shape changes.
BASELINE_PRE_CHANGE = {
    "single_run_events_per_s": 9996.0,
    "serial_sweep_wall_s": 9.75,
    "note": ("measured at commit preceding the parallel-sweep/hot-path "
             "PR, same machine, same sweep shape"),
}


#: Cluster sizes for the scaling leg.  The memory policy is used
#: because it scans the accepting-candidate order on every placement;
#: G-Loadsharing short-circuits to the home node on an underloaded
#: 256-node cluster, so it would not exercise the index at all.
SCALE_BENCH_NODES = (32, 256)
SCALE_BENCH_POLICY = "memory"
#: Large-cluster leg: columnar path only (the per-object path at this
#: size would dominate harness wall time without adding information).
SCALE_BENCH_HUGE_NODES = 2048

#: Gated timed legs run this many times and keep the fastest attempt:
#: on a 1-CPU CI runner a single sample measures the noisy neighbor,
#: not the code, and the ``--fail-below-ratio`` gates were flaky.
#: Deliberately-slow baseline legs (unindexed, columnar-off) and the
#: 10k-node leg run once — they are comparisons, not gates.
BENCH_REPEATS = 3

#: Domain-bench shape: the 2048-node columnar leg re-run flat and
#: with 16 domains (the CI-gated leg), plus a 10k-node 32-domain run
#: demonstrating the two-level directory at a scale the flat path is
#: never benchmarked at.
DOMAIN_BENCH_NODES = 2048
DOMAIN_BENCH_DOMAINS = 16
DOMAIN_BENCH_HUGE_NODES = 10000
DOMAIN_BENCH_HUGE_DOMAINS = 32

#: Ingest-bench shape: batches of short jobs POSTed back-to-back to a
#: live session's ``/submit`` for a fixed wall window.  The window is
#: fixed (rather than a fixed job count) so the figure is not
#: quantized by the 0.25 s slice-boundary admission cadence; the
#: feeder sends thousands of jobs, so one boundary either way is
#: noise.
INGEST_BENCH_WALL_S = 2.0
INGEST_BENCH_BATCH = 32
INGEST_BENCH_PACE = 5000.0
INGEST_BENCH_NODES = 32


def _cpu_env() -> dict:
    """CPU visibility at this instant, recorded per timed leg.

    CI runners can reshape the affinity mask between legs (cgroup
    throttling, noisy neighbors getting evicted); a single top-level
    snapshot silently misattributes such shifts to the code under
    test.
    """
    return {
        "cpu_count": os.cpu_count(),
        "affinity_cpus": (len(os.sched_getaffinity(0))
                          if hasattr(os, "sched_getaffinity") else None),
    }


def sweep_specs(scale: float = SWEEP_SCALE) -> List[RunSpec]:
    return [RunSpec(group=WorkloadGroup.SPEC, trace_index=index,
                    policy=policy, seed=0, scale=scale)
            for index in SWEEP_TRACES
            for policy in SWEEP_POLICIES]


def _best_of(repeats: int, attempt) -> dict:
    """Run ``attempt()`` ``repeats`` times, return the fastest (by
    events/s).  Every attempt snapshots its own env, so an affinity
    shift mid-leg stays visible in the kept sample."""
    best = None
    for _ in range(repeats):
        measured = attempt()
        if best is None or measured["events_per_s"] > best["events_per_s"]:
            best = measured
    best["repeats"] = repeats
    return best


def measure_single_run(scale: float = SWEEP_SCALE) -> dict:
    """Events/sec of one quick-mode run (trace generation excluded),
    best of :data:`BENCH_REPEATS` attempts."""
    clear_trace_cache()
    warm = run_experiment(WorkloadGroup.SPEC, 3, policy="g-loadsharing",
                          seed=0, scale=scale)  # warm the trace cache
    del warm

    def attempt() -> dict:
        started = time.perf_counter()
        result = run_experiment(WorkloadGroup.SPEC, 3,
                                policy="g-loadsharing", seed=0,
                                scale=scale)
        wall_s = time.perf_counter() - started
        events = result.cluster.sim.event_count
        return {
            "wall_s": wall_s,
            "events": events,
            "events_per_s": events / wall_s if wall_s > 0 else 0.0,
            "env": _cpu_env(),
        }

    return _best_of(BENCH_REPEATS, attempt)


def measure_obs_bench(scale: float = SWEEP_SCALE) -> dict:
    """Instrumentation overhead: the single-run measurement repeated
    with a metrics-only ObsSession attached.

    Checks the determinism invariant (obs must not change scheduling:
    the instrumented summary equals the plain one once the ``obs.*``
    keys are stripped) and reports the overhead factor
    ``events_per_s(off) / events_per_s(on)``.
    """
    import dataclasses

    from repro.obs.session import EXTRA_PREFIX, ObsSession

    off = measure_single_run(scale)
    plain = run_experiment(WorkloadGroup.SPEC, 3, policy="g-loadsharing",
                           seed=0, scale=scale)

    def attempt() -> dict:
        obs = ObsSession(record_events=False, run_label="obs-bench")
        started = time.perf_counter()
        result = run_experiment(WorkloadGroup.SPEC, 3,
                                policy="g-loadsharing", seed=0,
                                scale=scale, obs=obs)
        wall_s = time.perf_counter() - started
        events = result.cluster.sim.event_count
        stripped = dataclasses.replace(
            result.summary,
            extra={key: value
                   for key, value in result.summary.extra.items()
                   if not key.startswith(EXTRA_PREFIX)})
        if stripped != plain.summary:
            raise AssertionError(
                "instrumented run produced a different summary — "
                "observability changed scheduling behavior")
        return {
            "wall_s": wall_s,
            "events": events,
            "events_per_s": events / wall_s if wall_s > 0 else 0.0,
            "env": _cpu_env(),
        }

    on = _best_of(BENCH_REPEATS, attempt)
    factor = (off["events_per_s"] / on["events_per_s"]
              if on["events_per_s"] > 0 else 0.0)
    return {
        "obs_off": off,
        "obs_on": on,
        "overhead_factor": factor,
        "summaries_identical_modulo_obs": True,
    }


def measure_sampler_bench(scale: float = SWEEP_SCALE) -> dict:
    """Lifecycle/sampler overhead: the single-run measurement with the
    full explain-a-run instrumentation attached (a
    :class:`~repro.obs.lifecycle.JobLifecycleTracker` plus a 10 s
    :class:`~repro.obs.sampler.ClusterSampler`).

    Checks that the heavier instrumentation still does not change
    scheduling (summary identical modulo ``obs.*``) and that the
    lifecycle partition invariant holds (max residual at float noise),
    then reports the overhead factor — gated in CI alongside
    ``obs_bench`` via ``--max-obs-overhead-factor``.
    """
    import dataclasses

    from repro.obs.session import EXTRA_PREFIX, ObsSession

    off = measure_single_run(scale)
    plain = run_experiment(WorkloadGroup.SPEC, 3, policy="g-loadsharing",
                           seed=0, scale=scale)
    extras = {}

    def attempt() -> dict:
        obs = ObsSession(record_events=False, run_label="sampler-bench",
                         lifecycle=True, sample_period=10.0)
        started = time.perf_counter()
        result = run_experiment(WorkloadGroup.SPEC, 3,
                                policy="g-loadsharing", seed=0,
                                scale=scale, obs=obs)
        wall_s = time.perf_counter() - started
        events = result.cluster.sim.event_count
        stripped = dataclasses.replace(
            result.summary,
            extra={key: value
                   for key, value in result.summary.extra.items()
                   if not key.startswith(EXTRA_PREFIX)})
        if stripped != plain.summary:
            raise AssertionError(
                "lifecycle/sampler-instrumented run produced a different "
                "summary — the sampler perturbed scheduling")
        residual = result.summary.extra.get(
            "obs.lifecycle_residual_max_s", 0.0)
        if abs(residual) > 1e-6:
            raise AssertionError(
                f"lifecycle partition residual {residual!r} exceeds "
                f"1e-6 — span attribution no longer tiles job wall time")
        extras.update(
            residual=residual,
            samples=result.summary.extra.get("obs.sampler_samples", 0.0),
            lifecycle_jobs=result.summary.extra.get(
                "obs.lifecycle_jobs", 0.0))
        return {
            "wall_s": wall_s,
            "events": events,
            "events_per_s": events / wall_s if wall_s > 0 else 0.0,
            "env": _cpu_env(),
        }

    on = _best_of(BENCH_REPEATS, attempt)
    factor = (off["events_per_s"] / on["events_per_s"]
              if on["events_per_s"] > 0 else 0.0)
    return {
        "sampler_off": off,
        "sampler_on": on,
        "overhead_factor": factor,
        "sample_period_s": 10.0,
        "samples": extras["samples"],
        "lifecycle_jobs": extras["lifecycle_jobs"],
        "partition_residual_max_s": extras["residual"],
        "summaries_identical_modulo_obs": True,
    }


def measure_profile_bench(scale: float = SWEEP_SCALE) -> dict:
    """Engine self-profiling overhead and coverage.

    The single-run measurement repeated with
    ``ObsSession(profile=True)``: phase timers wrapped around the
    engine's hot entry points (recompute, placement, reconfiguration,
    load-info ticks).  Checks that profiling does not change
    scheduling (summary identical modulo ``obs.*``) and that the
    exclusive phase times account for at least 90% of the engine wall
    time — the coverage floor that makes the breakdown trustworthy.
    Reports the overhead factor, gated in CI alongside ``obs_bench``
    via ``--max-obs-overhead-factor``.
    """
    import dataclasses

    from repro.obs.session import EXTRA_PREFIX, ObsSession

    off = measure_single_run(scale)
    plain = run_experiment(WorkloadGroup.SPEC, 3, policy="g-loadsharing",
                           seed=0, scale=scale)
    extras = {}

    def attempt() -> dict:
        obs = ObsSession(record_events=False, run_label="profile-bench",
                         profile=True)
        started = time.perf_counter()
        result = run_experiment(WorkloadGroup.SPEC, 3,
                                policy="g-loadsharing", seed=0,
                                scale=scale, obs=obs)
        wall_s = time.perf_counter() - started
        events = result.cluster.sim.event_count
        stripped = dataclasses.replace(
            result.summary,
            extra={key: value
                   for key, value in result.summary.extra.items()
                   if not key.startswith(EXTRA_PREFIX)})
        if stripped != plain.summary:
            raise AssertionError(
                "self-profiled run produced a different summary — "
                "the phase timers perturbed scheduling")
        coverage = result.summary.extra.get("obs.profile_coverage", 0.0)
        if coverage < 0.9:
            raise AssertionError(
                f"profile coverage {coverage:.3f} is below 0.9 — the "
                f"phase timers no longer tile the engine wall time")
        extras.update(
            coverage=coverage,
            engine_wall_s=result.summary.extra.get(
                "obs.profile_engine_wall_s", 0.0),
            phases={key[len("obs.profile_"):-len("_wall_s")]:
                    value for key, value in result.summary.extra.items()
                    if key.startswith("obs.profile_")
                    and key.endswith("_wall_s")
                    and key != "obs.profile_engine_wall_s"})
        return {
            "wall_s": wall_s,
            "events": events,
            "events_per_s": events / wall_s if wall_s > 0 else 0.0,
            "env": _cpu_env(),
        }

    on = _best_of(BENCH_REPEATS, attempt)
    factor = (off["events_per_s"] / on["events_per_s"]
              if on["events_per_s"] > 0 else 0.0)
    return {
        "profile_off": off,
        "profile_on": on,
        "overhead_factor": factor,
        "coverage": extras["coverage"],
        "engine_wall_s": extras["engine_wall_s"],
        "phase_wall_s": extras["phases"],
        "summaries_identical_modulo_obs": True,
    }


def measure_faults_bench(scale: float = SWEEP_SCALE) -> dict:
    """Fault-injection overhead and determinism.

    The single-run measurement repeated with the failure model on
    (node crashes every ~2000 s per node plus lossy load information
    and a migration failure rate — every fault branch is exercised).
    The run executes twice and the summaries must match exactly: the
    fault schedule derives from ``fault_seed`` alone.
    """
    from repro.faults.config import FaultConfig

    faults = FaultConfig(mtbf_s=2000.0, mttr_s=60.0, fault_seed=0,
                         loadinfo_drop_prob=0.05,
                         loadinfo_delay_prob=0.05,
                         migration_failure_prob=0.2)
    off = measure_single_run(scale)

    def timed() -> tuple:
        started = time.perf_counter()
        result = run_experiment(WorkloadGroup.SPEC, 3,
                                policy="g-loadsharing", seed=0,
                                scale=scale, faults=faults)
        wall_s = time.perf_counter() - started
        return result.summary, {
            "wall_s": wall_s,
            "events": result.cluster.sim.event_count,
            "events_per_s": (result.cluster.sim.event_count / wall_s
                             if wall_s > 0 else 0.0),
        }

    first_summary, first_on = timed()
    second_summary, second_on = timed()
    if first_summary != second_summary:
        raise AssertionError(
            "two faults-enabled runs produced different summaries — "
            "the fault schedule is not deterministic")
    # The determinism check already pays for two runs; keep the faster
    # one as the throughput sample (best-of-2).
    on = (first_on if first_on["events_per_s"]
          >= second_on["events_per_s"] else second_on)
    on["repeats"] = 2
    factor = (off["events_per_s"] / on["events_per_s"]
              if on["events_per_s"] > 0 else 0.0)
    return {
        "mtbf_s": faults.mtbf_s,
        "faults_off": off,
        "faults_on": on,
        "overhead_factor": factor,
        "crashes": first_summary.extra.get("fault.crashes", 0.0),
        "lost_jobs": first_summary.extra.get("fault.lost_jobs", 0.0),
        "deterministic": True,
    }


def measure_ingest_bench() -> dict:
    """Sustained streaming-ingest throughput (jobs/s *admitted*).

    A live session on an ephemeral port is held open by an ingest hold
    while the feeder POSTs batches of half-second jobs to ``/submit``
    as fast as the server answers, for :data:`INGEST_BENCH_WALL_S`
    wall seconds.  The clock stops only once the engine has admitted
    every posted job (queued-but-unadmitted work does not count), so
    the figure covers HTTP parsing, validation, queueing and the
    engine's slice-boundary admission — plus the simulation of the
    admitted jobs themselves, which is exactly the lag a live operator
    would feel.  The engine's max sim lag rides along: an ingest-path
    regression shows up either as fewer jobs/s or as the engine
    falling behind its pace.  Best of :data:`BENCH_REPEATS` attempts.
    """
    import threading
    import urllib.request

    from repro.cluster.cluster import Cluster
    from repro.experiments.runner import POLICIES
    from repro.metrics.collector import (MetricsCollector,
                                         PolicyPendingProbe)
    from repro.obs.session import ObsSession

    batch = [{"program": "ingest-bench", "lifetime_s": 0.5,
              "peak_demand_mb": 8.0,
              "home_node": k % INGEST_BENCH_NODES}
             for k in range(INGEST_BENCH_BATCH)]
    payload = json.dumps(batch).encode("utf-8")

    def attempt() -> dict:
        cluster = Cluster(default_config(WorkloadGroup.SPEC).replace(
            num_nodes=INGEST_BENCH_NODES))
        policy = POLICIES["g-loadsharing"](cluster)
        collector = MetricsCollector(
            cluster, pending_probe=PolicyPendingProbe(policy))
        obs = ObsSession(record_events=False, serve=0,
                         pace=INGEST_BENCH_PACE,
                         run_label="ingest-bench")
        obs.attach(cluster, policy=policy)
        obs.bind_run(collector=collector, jobs=[],
                     trace_name="ingest-bench")
        monitor = obs.live
        monitor.add_ingest_hold()
        engine = threading.Thread(
            target=lambda: obs.run_engine(cluster.sim),
            name="ingest-bench-engine")
        engine.start()
        url = f"{monitor.url}/submit"
        try:
            started = time.perf_counter()
            feed_until = started + INGEST_BENCH_WALL_S
            posts = 0
            while time.perf_counter() < feed_until:
                request = urllib.request.Request(url, data=payload,
                                                 method="POST")
                with urllib.request.urlopen(request, timeout=30) as resp:
                    resp.read()
                posts += 1
            sent = posts * INGEST_BENCH_BATCH
            drain_deadline = started + 10 * INGEST_BENCH_WALL_S
            while (monitor.jobs_admitted < sent
                   and time.perf_counter() < drain_deadline):
                time.sleep(0.005)
            wall_s = time.perf_counter() - started
        finally:
            monitor.release_ingest_hold()
            engine.join(timeout=120)
            obs.close()
        admitted = monitor.jobs_admitted
        if admitted < sent:
            raise AssertionError(
                f"ingest bench admitted only {admitted} of {sent} "
                f"posted jobs before the drain deadline")
        jobs_per_s = admitted / wall_s if wall_s > 0 else 0.0
        return {
            "wall_s": wall_s,
            "http_posts": posts,
            "admitted": admitted,
            "jobs_per_s": jobs_per_s,
            # _best_of selects on events_per_s; this leg's "event" is
            # one admitted job.
            "events_per_s": jobs_per_s,
            "sim_lag_max_s": monitor.sim_lag_max_s,
            "env": _cpu_env(),
        }

    best = _best_of(BENCH_REPEATS, attempt)
    best.update(
        feed_window_s=INGEST_BENCH_WALL_S,
        batch_size=INGEST_BENCH_BATCH,
        pace_sim_per_wall=INGEST_BENCH_PACE,
        nodes=INGEST_BENCH_NODES,
    )
    return best


def measure_sweep(jobs: int, scale: float = SWEEP_SCALE) -> dict:
    """Wall seconds for the quick-mode sweep at ``jobs`` workers."""
    specs = sweep_specs(scale)
    started = time.perf_counter()
    summaries = run_specs(specs, jobs=jobs)
    wall_s = time.perf_counter() - started
    return {"jobs": jobs, "wall_s": wall_s, "runs": len(summaries),
            "summaries": summaries, "env": _cpu_env()}


def _timed_run(config, scale: float,
               repeats: int = BENCH_REPEATS) -> dict:
    """Timed memory-policy run of SPEC trace 3 on ``config``, best of
    ``repeats`` attempts (pass 1 for deliberately-slow baseline legs).

    Trace generation is warmed (cached per topology) before the clock
    starts, so the measurement is simulation time only.
    """
    build_trace(WorkloadGroup.SPEC, 3, seed=0,
                num_nodes=config.num_nodes)

    def attempt() -> dict:
        started = time.perf_counter()
        result = run_experiment(WorkloadGroup.SPEC, 3,
                                policy=SCALE_BENCH_POLICY, seed=0,
                                scale=scale, config=config)
        wall_s = time.perf_counter() - started
        events = result.cluster.sim.event_count
        return {
            "wall_s": wall_s,
            "events": events,
            "events_per_s": events / wall_s if wall_s > 0 else 0.0,
            "env": _cpu_env(),
            "summary": result.summary,
        }

    return _best_of(repeats, attempt)


def measure_scale_bench(scale: float = SWEEP_SCALE) -> dict:
    """Throughput as the cluster grows, against both escape hatches.

    At the big size the candidate index and the columnar state layer
    are each switched off in turn; all three 256-node summaries must
    be identical — both are pure optimizations.  The 2048-node leg
    demonstrates thousands-of-nodes scale on the columnar path (no
    differential twin at that size: the per-object path would dominate
    harness wall time without adding information).
    """
    runs = {}
    for nodes in SCALE_BENCH_NODES:
        cfg = default_config(WorkloadGroup.SPEC).replace(num_nodes=nodes)
        runs[f"nodes_{nodes}_indexed"] = _timed_run(cfg, scale)
    big = SCALE_BENCH_NODES[-1]
    cfg = default_config(WorkloadGroup.SPEC).replace(
        num_nodes=big, indexed_selection=False)
    runs[f"nodes_{big}_unindexed"] = _timed_run(cfg, scale, repeats=1)
    cfg = default_config(WorkloadGroup.SPEC).replace(
        num_nodes=big, columnar=False)
    runs[f"nodes_{big}_columnar_off"] = _timed_run(cfg, scale, repeats=1)
    baseline_summary = runs[f"nodes_{big}_indexed"]["summary"]
    if baseline_summary != runs[f"nodes_{big}_unindexed"]["summary"]:
        raise AssertionError(
            "indexed and unindexed runs produced different summaries — "
            "the candidate index changed scheduling behavior")
    if baseline_summary != runs[f"nodes_{big}_columnar_off"]["summary"]:
        raise AssertionError(
            "columnar and per-object runs produced different summaries "
            "— the SoA state layer changed scheduling behavior")
    huge_cfg = default_config(WorkloadGroup.SPEC).replace(
        num_nodes=SCALE_BENCH_HUGE_NODES)
    runs[f"nodes_{SCALE_BENCH_HUGE_NODES}_columnar"] = _timed_run(
        huge_cfg, scale)
    indexed_wall = runs[f"nodes_{big}_indexed"]["wall_s"]
    unindexed_wall = runs[f"nodes_{big}_unindexed"]["wall_s"]
    columnar_off_wall = runs[f"nodes_{big}_columnar_off"]["wall_s"]
    for entry in runs.values():
        entry.pop("summary", None)  # not JSON-serializable
    return {
        "policy": SCALE_BENCH_POLICY,
        "scale": scale,
        "nodes": list(SCALE_BENCH_NODES) + [SCALE_BENCH_HUGE_NODES],
        "runs": runs,
        "indexed_speedup_at_%d_nodes" % big: (
            unindexed_wall / indexed_wall if indexed_wall > 0 else 0.0),
        "columnar_speedup_at_%d_nodes" % big: (
            columnar_off_wall / indexed_wall if indexed_wall > 0 else 0.0),
        "summaries_identical": True,
    }


def measure_domain_bench(scale: float = SWEEP_SCALE) -> dict:
    """Throughput of the sharded (domained) load-info directory.

    Three legs: the 2048-node cluster flat (one global directory), the
    same cluster split into 16 domains (the CI-gated leg), and a
    10 000-node 32-domain run — a size the flat directory is never
    benchmarked at.  Flat and domained runs schedule against different
    views by design (two-level placement is an approximation), so no
    summary-identity assertion here; each leg records its average
    slowdown instead so a quality collapse is visible next to the
    throughput win.  The byte-identity contract for ``domains=1`` is
    pinned separately by ``tests/test_domain_equivalence.py``.
    """
    runs = {}
    slowdowns = {}

    def leg(name: str, nodes: int, domains: int, repeats: int) -> None:
        cfg = default_config(WorkloadGroup.SPEC).replace(
            num_nodes=nodes, domains=domains)
        entry = _timed_run(cfg, scale, repeats=repeats)
        slowdowns[name] = entry["summary"].average_slowdown
        runs[name] = entry

    leg(f"nodes_{DOMAIN_BENCH_NODES}_flat",
        DOMAIN_BENCH_NODES, 1, BENCH_REPEATS)
    leg(f"nodes_{DOMAIN_BENCH_NODES}_domains_{DOMAIN_BENCH_DOMAINS}",
        DOMAIN_BENCH_NODES, DOMAIN_BENCH_DOMAINS, BENCH_REPEATS)
    leg(f"nodes_{DOMAIN_BENCH_HUGE_NODES}_domains_"
        f"{DOMAIN_BENCH_HUGE_DOMAINS}",
        DOMAIN_BENCH_HUGE_NODES, DOMAIN_BENCH_HUGE_DOMAINS, 1)
    for name, entry in runs.items():
        entry.pop("summary", None)  # not JSON-serializable
        entry["avg_slowdown"] = slowdowns[name]
    flat_wall = runs[f"nodes_{DOMAIN_BENCH_NODES}_flat"]["wall_s"]
    domained_wall = runs[
        f"nodes_{DOMAIN_BENCH_NODES}_domains_"
        f"{DOMAIN_BENCH_DOMAINS}"]["wall_s"]
    return {
        "policy": SCALE_BENCH_POLICY,
        "scale": scale,
        "domains": DOMAIN_BENCH_DOMAINS,
        "huge_nodes": DOMAIN_BENCH_HUGE_NODES,
        "huge_domains": DOMAIN_BENCH_HUGE_DOMAINS,
        "runs": runs,
        "domain_speedup_at_%d_nodes" % DOMAIN_BENCH_NODES: (
            flat_wall / domained_wall if domained_wall > 0 else 0.0),
    }


def resolve_jobs(requested: int) -> dict:
    """Resolve ``--jobs`` against the CPU affinity mask.

    ``0`` means one worker per *available* core (the affinity mask, not
    the machine-wide count).  When only one core is available the
    parallel leg is pointless — it runs serially with a note instead of
    pretending fork overhead is a scheduling result.
    """
    effective = default_jobs() if requested == 0 else requested
    note = None
    if requested == 0 and effective == 1:
        note = ("single available core (affinity mask); parallel leg "
                "ran serially")
    return {"requested": requested, "effective": effective, "note": note}


def run_harness(jobs: int = 0, scale: float = SWEEP_SCALE,
                output: Optional[str] = DEFAULT_OUTPUT,
                scale_bench: bool = True,
                obs_bench: bool = True,
                sampler_bench: bool = True,
                faults_bench: bool = True,
                domain_bench: bool = True,
                profile_bench: bool = True,
                ingest_bench: bool = True) -> dict:
    """Measure, check determinism, and (optionally) write the report."""
    resolved = resolve_jobs(jobs)
    single = measure_single_run(scale)
    serial = measure_sweep(1, scale)
    parallel = measure_sweep(resolved["effective"], scale)
    if parallel["summaries"] != serial["summaries"]:
        raise AssertionError(
            "parallel sweep summaries differ from the serial ones — "
            "the determinism invariant is broken")
    speedup = (serial["wall_s"] / parallel["wall_s"]
               if parallel["wall_s"] > 0 else 0.0)
    report = {
        "harness": "benchmarks/perf_harness.py",
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "affinity_cpus": (len(os.sched_getaffinity(0))
                              if hasattr(os, "sched_getaffinity") else None),
        },
        "sweep": {
            "scale": scale,
            "traces": list(SWEEP_TRACES),
            "policies": list(SWEEP_POLICIES),
            "runs": serial["runs"],
        },
        "single_run": single,
        "serial_sweep_wall_s": serial["wall_s"],
        "parallel_sweep_wall_s": parallel["wall_s"],
        "requested_jobs": resolved["requested"],
        "parallel_jobs": resolved["effective"],
        "parallel_note": resolved["note"],
        "speedup": speedup,
        "deterministic": True,
        "baseline": BASELINE_PRE_CHANGE,
    }
    if scale_bench:
        report["scale_bench"] = measure_scale_bench(scale)
    if domain_bench:
        report["domain_bench"] = measure_domain_bench(scale)
    if obs_bench:
        report["obs_bench"] = measure_obs_bench(scale)
    if sampler_bench:
        report["sampler_bench"] = measure_sampler_bench(scale)
    if profile_bench:
        report["profile_bench"] = measure_profile_bench(scale)
    if faults_bench:
        report["faults_bench"] = measure_faults_bench(scale)
    if ingest_bench:
        report["ingest_bench"] = measure_ingest_bench()
    if output:
        with open(output, "w") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
    return report


def committed_events_per_s(path: str) -> Optional[float]:
    """Single-run events/sec from an existing report, if readable."""
    try:
        with open(path) as stream:
            prior = json.load(stream)
        return float(prior["single_run"]["events_per_s"])
    except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError):
        return None


def committed_scale_events_per_s(path: str,
                                 leg: str) -> Optional[float]:
    """Scale-bench events/sec of one leg from an existing report."""
    try:
        with open(path) as stream:
            prior = json.load(stream)
        return float(prior["scale_bench"]["runs"][leg]["events_per_s"])
    except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError):
        return None


def committed_domain_events_per_s(path: str,
                                  leg: str) -> Optional[float]:
    """Domain-bench events/sec of one leg from an existing report."""
    try:
        with open(path) as stream:
            prior = json.load(stream)
        return float(prior["domain_bench"]["runs"][leg]["events_per_s"])
    except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError):
        return None


def committed_ingest_jobs_per_s(path: str) -> Optional[float]:
    """Ingest-bench jobs/s from an existing report, if readable."""
    try:
        with open(path) as stream:
            prior = json.load(stream)
        return float(prior["ingest_bench"]["jobs_per_s"])
    except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError):
        return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the quick-mode sweep and write BENCH_perf.json.")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for the parallel leg "
                             "(default 0 = one per available core)")
    parser.add_argument("--scale", type=float, default=SWEEP_SCALE,
                        help="trace subsampling factor (default 0.25)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="report path (default: repo-root "
                             "BENCH_perf.json)")
    parser.add_argument("--no-scale-bench", action="store_true",
                        help="skip the 32/256-node scaling leg")
    parser.add_argument("--no-obs-bench", action="store_true",
                        help="skip the obs-off/obs-on overhead leg")
    parser.add_argument("--no-sampler-bench", action="store_true",
                        help="skip the lifecycle/sampler overhead leg")
    parser.add_argument("--no-profile-bench", action="store_true",
                        help="skip the engine self-profiling overhead "
                             "leg")
    parser.add_argument("--no-faults-bench", action="store_true",
                        help="skip the fault-injection overhead leg")
    parser.add_argument("--no-domain-bench", action="store_true",
                        help="skip the sharded-directory (domains) leg")
    parser.add_argument("--no-ingest-bench", action="store_true",
                        help="skip the streaming-ingest throughput leg")
    parser.add_argument("--fail-below-ratio", type=float, default=None,
                        metavar="R",
                        help="exit non-zero if fresh single-run events/s "
                             "is below R times the committed report's "
                             "figure (CI regression gate)")
    parser.add_argument("--scale-fail-below-ratio", type=float,
                        default=None, metavar="R",
                        help="exit non-zero if the fresh 256-node "
                             "scale-bench events/s is below R times the "
                             "committed report's figure for the same leg "
                             "(CI large-cluster regression gate)")
    parser.add_argument("--domain-fail-below-ratio", type=float,
                        default=None, metavar="R",
                        help="exit non-zero if the fresh 2048-node "
                             "16-domain bench events/s is below R times "
                             "the committed report's figure for the same "
                             "leg (CI sharded-directory regression gate)")
    parser.add_argument("--ingest-fail-below-ratio", type=float,
                        default=None, metavar="R",
                        help="exit non-zero if the fresh streaming-"
                             "ingest jobs/s is below R times the "
                             "committed report's figure (CI ingest "
                             "regression gate)")
    parser.add_argument("--max-obs-overhead-factor", type=float,
                        default=None, metavar="F",
                        help="exit non-zero if the obs-on run is more "
                             "than F times slower than obs-off (CI "
                             "instrumentation-overhead gate)")
    args = parser.parse_args(argv)
    if args.max_obs_overhead_factor is not None and args.no_obs_bench:
        parser.error("--max-obs-overhead-factor needs the obs bench; "
                     "drop --no-obs-bench")
    if args.scale_fail_below_ratio is not None and args.no_scale_bench:
        parser.error("--scale-fail-below-ratio needs the scale bench; "
                     "drop --no-scale-bench")
    if args.domain_fail_below_ratio is not None and args.no_domain_bench:
        parser.error("--domain-fail-below-ratio needs the domain bench; "
                     "drop --no-domain-bench")
    if args.ingest_fail_below_ratio is not None and args.no_ingest_bench:
        parser.error("--ingest-fail-below-ratio needs the ingest bench; "
                     "drop --no-ingest-bench")
    committed = (committed_events_per_s(args.output)
                 if args.fail_below_ratio is not None else None)
    scale_gate_leg = "nodes_%d_indexed" % SCALE_BENCH_NODES[-1]
    committed_scale = (
        committed_scale_events_per_s(args.output, scale_gate_leg)
        if args.scale_fail_below_ratio is not None else None)
    domain_gate_leg = ("nodes_%d_domains_%d"
                       % (DOMAIN_BENCH_NODES, DOMAIN_BENCH_DOMAINS))
    committed_domain = (
        committed_domain_events_per_s(args.output, domain_gate_leg)
        if args.domain_fail_below_ratio is not None else None)
    committed_ingest = (
        committed_ingest_jobs_per_s(args.output)
        if args.ingest_fail_below_ratio is not None else None)
    report = run_harness(jobs=args.jobs, scale=args.scale,
                         output=args.output,
                         scale_bench=not args.no_scale_bench,
                         obs_bench=not args.no_obs_bench,
                         sampler_bench=not args.no_sampler_bench,
                         faults_bench=not args.no_faults_bench,
                         domain_bench=not args.no_domain_bench,
                         profile_bench=not args.no_profile_bench,
                         ingest_bench=not args.no_ingest_bench)
    single = report["single_run"]
    print(f"single run : {single['events']} events in "
          f"{single['wall_s']:.2f}s = {single['events_per_s']:,.0f} ev/s")
    print(f"sweep      : serial {report['serial_sweep_wall_s']:.2f}s, "
          f"jobs={report['parallel_jobs']} "
          f"{report['parallel_sweep_wall_s']:.2f}s, "
          f"speedup {report['speedup']:.2f}x "
          f"(on {report['environment']['cpu_count']} cores)")
    if report["parallel_note"]:
        print(f"note       : {report['parallel_note']}")
    if "scale_bench" in report:
        bench = report["scale_bench"]
        for name, entry in bench["runs"].items():
            print(f"{name:22s}: {entry['events']} events in "
                  f"{entry['wall_s']:.2f}s = "
                  f"{entry['events_per_s']:,.0f} ev/s")
        big = SCALE_BENCH_NODES[-1]
        ratio = bench[f"indexed_speedup_at_{big}_nodes"]
        col_ratio = bench[f"columnar_speedup_at_{big}_nodes"]
        print(f"index speedup at {big} nodes: {ratio:.1f}x, columnar "
              f"speedup {col_ratio:.1f}x (identical summaries)")
    if "domain_bench" in report:
        bench = report["domain_bench"]
        for name, entry in bench["runs"].items():
            print(f"{name:22s}: {entry['events']} events in "
                  f"{entry['wall_s']:.2f}s = "
                  f"{entry['events_per_s']:,.0f} ev/s "
                  f"(slowdown {entry['avg_slowdown']:.2f})")
        ratio = bench[f"domain_speedup_at_{DOMAIN_BENCH_NODES}_nodes"]
        print(f"domain speedup at {DOMAIN_BENCH_NODES} nodes "
              f"({DOMAIN_BENCH_DOMAINS} domains): {ratio:.2f}x")
    if "obs_bench" in report:
        bench = report["obs_bench"]
        print(f"obs        : off {bench['obs_off']['events_per_s']:,.0f} "
              f"ev/s, on {bench['obs_on']['events_per_s']:,.0f} ev/s, "
              f"overhead {bench['overhead_factor']:.2f}x "
              f"(identical summaries modulo obs.*)")
    if "sampler_bench" in report:
        bench = report["sampler_bench"]
        print(f"sampler    : off "
              f"{bench['sampler_off']['events_per_s']:,.0f} ev/s, on "
              f"{bench['sampler_on']['events_per_s']:,.0f} ev/s, "
              f"overhead {bench['overhead_factor']:.2f}x "
              f"({bench['samples']:.0f} samples, "
              f"{bench['lifecycle_jobs']:.0f} lifecycles, residual "
              f"{bench['partition_residual_max_s']:.1e}s)")
    if "profile_bench" in report:
        bench = report["profile_bench"]
        top = sorted(bench["phase_wall_s"].items(),
                     key=lambda item: -item[1])[:3]
        top_str = ", ".join(f"{phase} {seconds:.2f}s"
                            for phase, seconds in top)
        print(f"profile    : off "
              f"{bench['profile_off']['events_per_s']:,.0f} ev/s, on "
              f"{bench['profile_on']['events_per_s']:,.0f} ev/s, "
              f"overhead {bench['overhead_factor']:.2f}x, coverage "
              f"{bench['coverage']:.1%} ({top_str})")
    if "faults_bench" in report:
        bench = report["faults_bench"]
        print(f"faults     : off "
              f"{bench['faults_off']['events_per_s']:,.0f} ev/s, on "
              f"{bench['faults_on']['events_per_s']:,.0f} ev/s, "
              f"overhead {bench['overhead_factor']:.2f}x "
              f"({bench['crashes']:.0f} crashes, "
              f"{bench['lost_jobs']:.0f} jobs lost, deterministic)")
    if "ingest_bench" in report:
        bench = report["ingest_bench"]
        print(f"ingest     : {bench['admitted']} jobs in "
              f"{bench['wall_s']:.2f}s = {bench['jobs_per_s']:,.0f} "
              f"jobs/s admitted over {bench['http_posts']} POSTs, "
              f"max sim lag {bench['sim_lag_max_s']:.3f}s")
    base = report["baseline"]
    print(f"baseline   : {base['single_run_events_per_s']:,.0f} ev/s, "
          f"serial sweep {base['serial_sweep_wall_s']:.2f}s (pre-change)")
    print(f"[wrote {args.output}]")
    if args.fail_below_ratio is not None:
        if committed is None:
            print("[no committed report to gate against; gate skipped]")
        else:
            floor = args.fail_below_ratio * committed
            fresh = single["events_per_s"]
            if fresh < floor:
                print(f"PERF REGRESSION: {fresh:,.0f} ev/s is below "
                      f"{args.fail_below_ratio:.0%} of the committed "
                      f"{committed:,.0f} ev/s", file=sys.stderr)
                return 1
            print(f"[perf gate ok: {fresh:,.0f} >= "
                  f"{args.fail_below_ratio:.0%} of {committed:,.0f} ev/s]")
    if args.scale_fail_below_ratio is not None:
        if committed_scale is None:
            print("[no committed scale-bench figure to gate against; "
                  "scale gate skipped]")
        else:
            floor = args.scale_fail_below_ratio * committed_scale
            fresh = report["scale_bench"]["runs"][scale_gate_leg][
                "events_per_s"]
            if fresh < floor:
                print(f"SCALE PERF REGRESSION ({scale_gate_leg}): "
                      f"{fresh:,.0f} ev/s is below "
                      f"{args.scale_fail_below_ratio:.0%} of the "
                      f"committed {committed_scale:,.0f} ev/s",
                      file=sys.stderr)
                return 1
            print(f"[scale gate ok: {scale_gate_leg} {fresh:,.0f} >= "
                  f"{args.scale_fail_below_ratio:.0%} of "
                  f"{committed_scale:,.0f} ev/s]")
    if args.domain_fail_below_ratio is not None:
        if committed_domain is None:
            print("[no committed domain-bench figure to gate against; "
                  "domain gate skipped]")
        else:
            floor = args.domain_fail_below_ratio * committed_domain
            fresh = report["domain_bench"]["runs"][domain_gate_leg][
                "events_per_s"]
            if fresh < floor:
                print(f"DOMAIN PERF REGRESSION ({domain_gate_leg}): "
                      f"{fresh:,.0f} ev/s is below "
                      f"{args.domain_fail_below_ratio:.0%} of the "
                      f"committed {committed_domain:,.0f} ev/s",
                      file=sys.stderr)
                return 1
            print(f"[domain gate ok: {domain_gate_leg} {fresh:,.0f} >= "
                  f"{args.domain_fail_below_ratio:.0%} of "
                  f"{committed_domain:,.0f} ev/s]")
    if args.ingest_fail_below_ratio is not None:
        if committed_ingest is None:
            print("[no committed ingest-bench figure to gate against; "
                  "ingest gate skipped]")
        else:
            floor = args.ingest_fail_below_ratio * committed_ingest
            fresh = report["ingest_bench"]["jobs_per_s"]
            if fresh < floor:
                print(f"INGEST PERF REGRESSION: {fresh:,.0f} jobs/s is "
                      f"below {args.ingest_fail_below_ratio:.0%} of the "
                      f"committed {committed_ingest:,.0f} jobs/s",
                      file=sys.stderr)
                return 1
            print(f"[ingest gate ok: {fresh:,.0f} >= "
                  f"{args.ingest_fail_below_ratio:.0%} of "
                  f"{committed_ingest:,.0f} jobs/s]")
    if args.max_obs_overhead_factor is not None:
        gated = [("obs", report["obs_bench"]["overhead_factor"])]
        if "sampler_bench" in report:
            gated.append(("sampler",
                          report["sampler_bench"]["overhead_factor"]))
        if "profile_bench" in report:
            gated.append(("profile",
                          report["profile_bench"]["overhead_factor"]))
        for leg, factor in gated:
            if factor > args.max_obs_overhead_factor:
                print(f"OBS OVERHEAD REGRESSION ({leg}): instrumented "
                      f"run is {factor:.2f}x slower than obs-off, above "
                      f"the {args.max_obs_overhead_factor:.2f}x gate",
                      file=sys.stderr)
                return 1
        summary = ", ".join(f"{leg} {factor:.2f}x"
                            for leg, factor in gated)
        print(f"[obs gate ok: {summary} <= "
              f"{args.max_obs_overhead_factor:.2f}x]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
