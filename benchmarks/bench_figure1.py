"""Figure 1: total execution and queuing times, workload group 1.

Runs SPEC traces under G-Loadsharing and V-Reconfiguration and prints
the comparison rows with the paper's reported reductions alongside.
Quick mode subsamples; REPRO_FULL=1 runs the paper's configuration.
"""

from conftest import bench_scale, bench_traces

from repro.experiments.figures import figure1


def run():
    return figure1(scale=bench_scale(), trace_indices=bench_traces())


def test_figure1(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.render())
    assert len(result.baseline) == len(result.improved)
    for base, improved in zip(result.baseline, result.improved):
        assert base.num_jobs == improved.num_jobs
        assert base.num_jobs > 0
        # every job finished in both runs (summaries exist only then)
        assert base.total_execution_time_s > 0
        assert improved.total_execution_time_s > 0
