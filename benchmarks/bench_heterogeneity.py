"""Heterogeneous-cluster experiment (paper §2.3/§6 extension).

Capacity-neutral heterogeneity: a quarter of the nodes get double
memory and 1.5x CPU; §2.3 predicts reservations gravitate to the
big-memory nodes.
"""

from conftest import bench_scale

from repro.experiments.heterogeneity import run_heterogeneity_experiment
from repro.workload.programs import WorkloadGroup


def test_heterogeneity(benchmark):
    report = benchmark.pedantic(
        lambda: run_heterogeneity_experiment(
            group=WorkloadGroup.APP, trace_index=3,
            scale=bench_scale()),
        rounds=1, iterations=1)
    print()
    print(report.render())
    assert len(report.rows) == 4
    homogeneous = [row for row in report.rows
                   if row["cluster"] == "homogeneous"]
    heterogeneous = [row for row in report.rows
                     if row["cluster"] == "heterogeneous"]
    assert homogeneous and heterogeneous
    # §2.3's placement prediction, when reservations occurred at all
    verdict = report.reservations_prefer_big_nodes
    if verdict is not None:
        print(f"reservations prefer big-memory nodes: {verdict}")
