"""Table 2: the 7 application program characteristics (reconstructed).

As for Table 1, the measured component is dedicated-environment
profiling on a cluster-2 workstation (233 MHz, 128 MB): each program
runs alone; its lifetime, working-set range, and I/O activity are the
table's columns.
"""

import pytest

from repro.cluster import Cluster
from repro.cluster.config import APP_CLUSTER
from repro.cluster.job import Job
from repro.experiments.tables import render_table2
from repro.workload.programs import APP_PROGRAMS


def profile_program(program):
    cluster = Cluster(APP_CLUSTER.replace(num_nodes=1))
    profile = program.memory_profile(program.lifetime_s,
                                     program.working_set_mb)
    job = Job(program=program.name, cpu_work_s=program.lifetime_s,
              memory=profile,
              io_stall_per_cpu_s=program.io_stall_per_cpu_s)
    cluster.nodes[0].add_job(job)
    cluster.sim.run()
    return job


@pytest.mark.parametrize("program", APP_PROGRAMS,
                         ids=[p.name for p in APP_PROGRAMS])
def test_dedicated_profile_matches_table(benchmark, program):
    job = benchmark(profile_program, program)
    assert job.finished
    # Wall time = CPU lifetime plus the program's I/O stalls; no
    # paging in a dedicated environment.
    expected_wall = program.lifetime_s * (1.0 + program.io_stall_per_cpu_s)
    assert job.finish_time == pytest.approx(expected_wall, rel=1e-6)
    assert job.acct.page_s == pytest.approx(0.0)
    assert job.acct.io_s == pytest.approx(
        program.lifetime_s * program.io_stall_per_cpu_s, rel=1e-6)
    # ranged working sets stay within the table's range
    if program.working_set_min_mb > 0:
        demands = [phase.demand_mb for phase in job.memory.phases]
        assert min(demands) >= program.working_set_min_mb


def test_print_table2():
    print()
    print(render_table2())
