"""The constructed blocking scenario: the mechanism's envelope.

Demonstrates the paper's §2 mechanism end-to-end at 32-node scale
(DESIGN.md experiment A0): in a cluster state where G-Loadsharing has
no qualified migration destination, V-Reconfiguration reserves
workstations, rescues the starving large jobs, and eliminates the
paging penalty — at a measured cost to the jobs sharing the reserved
nodes.  Prints the head-to-head comparison.
"""

import pytest

from repro.experiments.scenario import (
    large_job_slowdowns,
    run_blocking_scenario,
)
from repro.metrics.report import percentage_reduction


def run_pair():
    results = {}
    for policy in ("g-loadsharing", "v-reconfiguration"):
        results[policy] = run_blocking_scenario(policy)
    return results


def test_blocking_scenario(benchmark):
    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    base = results["g-loadsharing"]
    reco = results["v-reconfiguration"]
    big_base = large_job_slowdowns(base)
    big_reco = large_job_slowdowns(reco)

    print()
    print("Blocking scenario (constructed, 32 nodes):")
    rows = [
        ("total paging time (s)", base.summary.total_paging_time_s,
         reco.summary.total_paging_time_s),
        ("mean large-job slowdown", sum(big_base) / len(big_base),
         sum(big_reco) / len(big_reco)),
        ("average slowdown (all jobs)", base.summary.average_slowdown,
         reco.summary.average_slowdown),
        ("total execution time (s)",
         base.summary.total_execution_time_s,
         reco.summary.total_execution_time_s),
    ]
    for name, g, v in rows:
        print(f"  {name:32s} G={g:12.2f}  V={v:12.2f}  "
              f"reduction={percentage_reduction(g, v):6.1f}%")
    print(f"  reservations={reco.summary.extra.get('reservations', 0)} "
          f"rescues="
          f"{reco.summary.extra.get('reconfiguration_migrations', 0)} "
          f"baseline blocking events={base.summary.blocking_events}")

    # The mechanism's envelope contract:
    # 1. the baseline suffers the blocking problem,
    assert base.summary.blocking_events > 0
    # 2. the reconfiguration detects and resolves it,
    assert reco.summary.extra.get("reconfiguration_migrations", 0) >= 1
    # 3. the paging penalty is (nearly) eliminated,
    assert (reco.summary.total_paging_time_s
            < 0.25 * base.summary.total_paging_time_s)
    # 4. large jobs are treated fairly (paper §2.2): their slowdowns
    #    strictly improve,
    assert (sum(big_reco) / len(big_reco)
            < sum(big_base) / len(big_base))
    # 5. and every reservation was released (adaptive switch-back).
    assert reco.cluster.reserved_nodes() == []
