"""Figure 3: total execution and queuing times, group 2.

Runs the traces under G-Loadsharing and V-Reconfiguration and prints
the comparison rows with the paper's reported reductions alongside.
Quick mode subsamples; REPRO_FULL=1 runs the paper's configuration.
"""

from conftest import bench_scale, bench_traces

from repro.experiments.figures import figure3


def run():
    return figure3(scale=bench_scale(), trace_indices=bench_traces())


def test_figure3(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.render())
    assert len(result.baseline) == len(result.improved)
    for base, improved in zip(result.baseline, result.improved):
        assert base.num_jobs == improved.num_jobs
        assert base.average_slowdown >= 1.0
        assert improved.average_slowdown >= 1.0
