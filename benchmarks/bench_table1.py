"""Table 1: the 6 SPEC 2000 program characteristics (reconstructed).

Regenerates the catalog table and, as the measured component, runs the
dedicated-environment profiling the paper describes in §3.2: each
program executes alone on one cluster-1 workstation and its lifetime
and peak working set are recorded — the numbers the table reports.
"""

import pytest

from repro.cluster import Cluster
from repro.cluster.config import SPEC_CLUSTER
from repro.experiments.tables import render_table1
from repro.workload.programs import SPEC_PROGRAMS


def profile_program(program):
    """Run one program alone on a dedicated workstation (§3.2)."""
    cluster = Cluster(SPEC_CLUSTER.replace(num_nodes=1))
    job_ = program.memory_profile(program.lifetime_s,
                                  program.working_set_mb)
    from repro.cluster.job import Job
    job = Job(program=program.name, cpu_work_s=program.lifetime_s,
              memory=job_)
    cluster.nodes[0].add_job(job)
    cluster.sim.run()
    return job


@pytest.mark.parametrize("program", SPEC_PROGRAMS,
                         ids=[p.name for p in SPEC_PROGRAMS])
def test_dedicated_profile_matches_table(benchmark, program):
    """Dedicated execution reproduces the catalog lifetime (no major
    page faults, §3.2) — the defining property of Table 1's numbers."""
    job = benchmark(profile_program, program)
    assert job.finished
    assert job.finish_time == pytest.approx(program.lifetime_s, rel=1e-6)
    assert job.acct.page_s == pytest.approx(0.0)
    assert job.peak_demand_mb == pytest.approx(program.working_set_mb)


def test_print_table1():
    print()
    print(render_table1())
