"""Benchmark configuration.

Set ``REPRO_FULL=1`` to run the paper's full-scale configurations
(all five traces, no subsampling — minutes per figure).  The default
quick mode subsamples traces and runs a trace subset so the whole
benchmark suite finishes in a few minutes while still exercising every
experiment end-to-end.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

FULL = os.environ.get("REPRO_FULL", "0") == "1"

#: Trace subsampling factor for quick mode.
QUICK_SCALE = 0.25
#: Trace indices exercised in quick mode (light / normal / heavy).
QUICK_TRACES = [1, 3, 5]


def bench_scale() -> float:
    return 1.0 if FULL else QUICK_SCALE


def bench_traces():
    return None if FULL else list(QUICK_TRACES)
