"""Baseline sweep (DESIGN.md experiment A4): every policy, one trace.

Compares no-sharing, CPU-only, memory-only, suspension, G-Loadsharing,
and V-Reconfiguration on the same workload (§1-2's design space).
"""

from conftest import bench_scale

from repro.experiments.ablations import baseline_sweep
from repro.workload.programs import WorkloadGroup


def test_policy_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: baseline_sweep(group=WorkloadGroup.APP, trace_index=3,
                               scale=bench_scale()),
        rounds=1, iterations=1)
    print()
    print(result.render())
    by_policy = {row["variant"]: row for row in result.rows}
    assert len(by_policy) == 7
    # Load sharing must not lose to no load sharing on queuing time:
    # the central premise of the literature the paper builds on.  (At
    # quick scale the load can be light enough that every job runs at
    # home under both policies, making them exactly equal.)
    assert (by_policy["g-loadsharing"]["queue (s)"]
            <= by_policy["local"]["queue (s)"])
    # CPU+memory sharing does not lose meaningfully to count-only
    # balancing on paging: it avoids known-full nodes.  (At quick
    # scale both paging totals are near zero; compare with slack.)
    assert (by_policy["g-loadsharing"]["page (s)"]
            <= by_policy["cpu"]["page (s)"] * 1.5 + 60.0)
