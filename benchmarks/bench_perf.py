"""Perf regression smoke: run the harness and sanity-check the report.

Times the fixed quick-mode sweep serially and with worker processes,
asserts the determinism invariant (parallel summaries identical to
serial), and writes ``BENCH_perf.json`` at the repo root so the run
leaves a comparable perf record behind.  ``REPRO_BENCH_JOBS``
overrides the parallel worker count (default 0 = one per available
core, resolved against the CPU affinity mask).
"""

import os

from perf_harness import DEFAULT_OUTPUT, SWEEP_SCALE, run_harness

JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0"))


def test_perf_harness(benchmark):
    report = benchmark.pedantic(
        lambda: run_harness(jobs=JOBS, scale=SWEEP_SCALE,
                            output=DEFAULT_OUTPUT),
        rounds=1, iterations=1)

    print()
    print(f"single run: {report['single_run']['events_per_s']:,.0f} ev/s; "
          f"sweep serial {report['serial_sweep_wall_s']:.2f}s vs "
          f"jobs={report['parallel_jobs']} "
          f"{report['parallel_sweep_wall_s']:.2f}s "
          f"({report['speedup']:.2f}x on "
          f"{report['environment']['cpu_count']} cores)")

    # The harness itself verifies serial == parallel summaries.
    assert report["deterministic"] is True
    assert report["single_run"]["events"] > 0
    assert report["serial_sweep_wall_s"] > 0
    assert report["parallel_sweep_wall_s"] > 0
    assert os.path.exists(DEFAULT_OUTPUT)

    # Hot-path regression gate: stay comfortably above the pre-change
    # baseline measured on the machine that introduced the harness.
    # Machines differ, so only flag an order-of-magnitude collapse.
    floor = 0.1 * report["baseline"]["single_run_events_per_s"]
    assert report["single_run"]["events_per_s"] > floor
