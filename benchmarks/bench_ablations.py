"""Ablations (DESIGN.md experiments A2-A3): design-choice sweeps.

Each test sweeps one reconstructed parameter on one trace and prints
the sensitivity table.  These are the knobs EXPERIMENTS.md's
calibration discussion refers to.
"""

import pytest

from conftest import bench_scale

from repro.experiments.ablations import (
    cpu_threshold_ablation,
    fault_cost_ablation,
    load_info_staleness_ablation,
    max_reserved_ablation,
    network_ram_ablation,
    network_speed_ablation,
    reservation_mode_ablation,
    residency_alpha_ablation,
    victim_ranking_ablation,
)
from repro.workload.programs import WorkloadGroup

GROUP = WorkloadGroup.APP
TRACE = 3


def run_and_print(benchmark, fn, **kwargs):
    result = benchmark.pedantic(
        lambda: fn(group=GROUP, trace_index=TRACE, scale=bench_scale(),
                   **kwargs),
        rounds=1, iterations=1)
    print()
    print(result.render())
    return result


def test_reservation_mode(benchmark):
    result = run_and_print(benchmark, reservation_mode_ablation)
    assert {row["variant"] for row in result.rows} == {"drain-all",
                                                       "first-fit"}


def test_residency_alpha(benchmark):
    result = run_and_print(benchmark, residency_alpha_ablation)
    assert len(result.rows) == 4


def test_fault_cost(benchmark):
    result = run_and_print(benchmark, fault_cost_ablation)
    # A stronger fault model broadly raises paging, but scheduling
    # feedback (migrations, placement changes) makes the relation
    # non-monotone at small magnitudes — assert only a loose ordering.
    pages = [row["page (s)"] for row in result.rows]
    assert all(page >= 0 for page in pages)
    assert pages[0] <= pages[-1] * 3.0 + 60.0


def test_network_speed(benchmark):
    result = run_and_print(benchmark, network_speed_ablation)
    assert len(result.rows) == 3


def test_load_info_staleness(benchmark):
    result = run_and_print(benchmark, load_info_staleness_ablation)
    assert len(result.rows) == 4


def test_cpu_threshold(benchmark):
    result = run_and_print(benchmark, cpu_threshold_ablation)
    assert len(result.rows) == 4


def test_max_reserved(benchmark):
    result = run_and_print(benchmark, max_reserved_ablation)
    assert len(result.rows) == 4


def test_victim_ranking(benchmark):
    result = run_and_print(benchmark, victim_ranking_ablation)
    assert {row["variant"] for row in result.rows} == {"demand-only",
                                                       "demand-x-age"}


def test_network_ram(benchmark):
    result = run_and_print(benchmark, network_ram_ablation)
    off, on = result.rows
    # remote-memory fault service cannot increase paging time
    assert on["page (s)"] <= off["page (s)"] + 1e-6
