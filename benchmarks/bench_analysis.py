"""§5 analytical model check (DESIGN.md experiment A1).

Runs one trace under both policies and verifies the measured results
against the paper's execution-time model: CPU-time invariance, the
paging statement, and the reserved-queue FIFO bound.
"""

from conftest import bench_scale

from repro.analysis.model import (
    ExecutionTimeModel,
    ReservedQueueModel,
    verify_against_run,
)
from repro.experiments.runner import run_experiment
from repro.workload.programs import WorkloadGroup


def run_pair():
    base = run_experiment(WorkloadGroup.APP, 3, policy="g-loadsharing",
                          scale=bench_scale()).summary
    reco = run_experiment(WorkloadGroup.APP, 3,
                          policy="v-reconfiguration",
                          scale=bench_scale()).summary
    return base, reco


def test_section5_model(benchmark):
    base, reco = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    check = verify_against_run(base, reco, cpu_tolerance=0.02)
    print()
    print("Section 5 model check (App-Trace-3):")
    print(f"  T_cpu invariance error: {check.cpu_invariant_error:.4%}")
    print(f"  paging reduced:        {check.paging_reduced}")
    print(f"  predicted gain bound:  {check.predicted_gain_s:,.1f} s")
    print(f"  measured gain:         {check.measured_gain_s:,.1f} s")
    print(f"  consistent:            {check.consistent}")
    # CPU service demand is workload-intrinsic: invariant across
    # policies (§5 model statement 1).
    assert check.cpu_invariant_error < 0.02
    # The measured gain always dominates the model's lower bound.
    assert check.measured_gain_s >= check.predicted_gain_s - 1e-6


def test_reserved_queue_bound_is_minimized_by_srpt_order():
    """§5 statement 3: the FIFO bound is minimized when waits increase
    with arrival order (shortest-first service)."""
    waits = [30.0, 5.0, 80.0, 12.0]
    arbitrary = ReservedQueueModel(waits).queuing_bound_s()
    minimal = ReservedQueueModel.minimal_bound_s(waits)
    assert minimal <= arbitrary
    assert ReservedQueueModel(sorted(waits)).is_minimized_ordering()


def test_execution_time_decomposition_total():
    model = ExecutionTimeModel(cpu_s=100.0, page_s=20.0, queue_s=50.0,
                               migration_s=5.0)
    assert model.total_s == 175.0
