"""CPU-based load sharing: balance job counts, ignore memory.

Represents the classic process-count balancing schemes the paper cites
([5], [11], [14]): a submission goes to the node with the fewest
running jobs that still has a free slot.  Memory demands play no role,
so jobs with large allocations are scattered blindly — the situation
that creates the blocking problem in the first place.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.job import Job
from repro.cluster.workstation import Workstation
from repro.scheduling.base import LoadSharingPolicy


class CpuBasedPolicy(LoadSharingPolicy):
    """Least-loaded-by-count placement, no memory awareness."""

    name = "CPU-Loadsharing"

    def select_node(self, job: Job) -> Optional[Workstation]:
        home = self._live_node(job.home_node)
        directory = self.cluster.directory
        if self._num_domains > 1:
            return self._select_domained(home, directory)
        if self._indexed:
            ordered = directory.load_order_ids()
            # prefer the home node among equally loaded candidates
            if home.alive and home.has_free_slot and not home.reserved:
                if home.num_running <= directory.least_num_jobs():
                    return home
            for node_id in ordered:
                node = self._live_node(node_id)
                if node.alive and node.has_free_slot and not node.reserved:
                    return node
            return None
        snaps = sorted((s for s in directory.snapshots() if s.alive),
                       key=lambda s: (s.num_jobs, s.node_id))
        # prefer the home node among equally loaded candidates
        if home.alive and home.has_free_slot and not home.reserved:
            least = snaps[0].num_jobs if snaps else 0
            if home.num_running <= least:
                return home
        for snap in snaps:
            node = self._live_node(snap.node_id)
            if node.alive and node.has_free_slot and not node.reserved:
                return node
        return None

    def _select_domained(self, home: Workstation,
                         directory) -> Optional[Workstation]:
        """Two-level least-loaded placement (domains > 1): home-node
        preference judged against the *home domain's* least count,
        then the home domain's load order, then remote domains ranked
        by summary least-loaded key."""
        home_domain = directory.domain_of(home.node_id)
        if home.alive and home.has_free_slot and not home.reserved:
            if home.num_running <= directory.least_num_jobs(home_domain):
                return home
        for node_id in directory.load_order_ids(local_domain=home_domain):
            node = self._live_node(node_id)
            if node.alive and node.has_free_slot and not node.reserved:
                return node
        return None
