"""G-Loadsharing: dynamic load sharing with CPU and memory resources.

The paper's baseline (its reference [3], ICDCS 2001): job scheduling
and migration decisions consider both the number of running jobs (the
CPU threshold) and the availability of idle memory, *without knowing
job memory demands in advance*:

* a new job is accepted by a workstation with idle memory space while
  its running-job count is below the CPU threshold;
* when a workstation detects a certain amount of page faults, new
  submissions to it are blocked and are remotely submitted to other
  lightly loaded workstations with available memory space and job
  slots, if possible;
* one or more jobs already executing on the overloaded workstation may
  be migrated to lightly loaded workstations if a qualified
  destination (enough idle memory for the job's current demand plus a
  free slot) exists.

When no qualified destination exists the scheme has no recourse — that
is the blocking problem the reconfiguration method of
:mod:`repro.core` resolves.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.job import Job
from repro.cluster.workstation import Workstation
from repro.scheduling.base import LoadSharingPolicy


class GLoadSharing(LoadSharingPolicy):
    """Dynamic CPU+memory load sharing (the paper's G-Loadsharing)."""

    name = "G-Loadsharing"

    def select_node(self, job: Job) -> Optional[Workstation]:
        home = self._live_node(job.home_node)
        if home.accepting and not home.thrashing:
            return home
        # Candidates come from (possibly stale) snapshots and are
        # live-verified before committing the submission.
        for node in self.candidates_by_idle_memory(exclude=job.home_node):
            if node.accepting and not node.thrashing:
                return node
        return None

    def handle_overload(self, node: Workstation) -> None:
        """Migrate the most memory-intensive faulting job away from a
        thrashing node, if a qualified destination exists.  When no
        destination qualifies the blocking problem is reported —
        regardless of whether a regular migration would currently pay
        for itself, since that is the state the reconfiguration
        routine exists to resolve."""
        job = node.most_memory_intensive_job(faulting_only=True)
        if job is None:
            return
        destination = self.find_migration_destination(
            job, exclude=node.node_id)
        if destination is None:
            self.on_blocking(node, job)
            return
        if not self._migratable(job):
            return
        self.stats.migration_attempts += 1
        self.migrate(job, node, destination)
