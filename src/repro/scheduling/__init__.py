"""Load-sharing policies.

* :class:`~repro.scheduling.base.LoadSharingPolicy` — shared machinery:
  submission handling, the pending queue, periodic overload
  monitoring, and migration mechanics with cost accounting;
* :class:`~repro.scheduling.local.LocalPolicy` — no load sharing;
* :class:`~repro.scheduling.cpu_based.CpuBasedPolicy` — balances job
  counts only;
* :class:`~repro.scheduling.memory_based.MemoryBasedPolicy` — places by
  idle memory only;
* :class:`~repro.scheduling.g_loadsharing.GLoadSharing` — the dynamic
  CPU+memory scheme of [3] (the paper's baseline, "G-Loadsharing");
* :class:`~repro.scheduling.suspension.SuspensionPolicy` — the
  brute-force alternative the paper argues against (§1);
* :class:`repro.core.reconfiguration.VReconfiguration` — the paper's
  contribution, built on top of :class:`GLoadSharing` (lives in
  :mod:`repro.core`).
"""

from repro.scheduling.base import LoadSharingPolicy, PolicyStats
from repro.scheduling.cpu_based import CpuBasedPolicy
from repro.scheduling.g_loadsharing import GLoadSharing
from repro.scheduling.local import LocalPolicy
from repro.scheduling.memory_based import MemoryBasedPolicy
from repro.scheduling.srpt import SrptOracle
from repro.scheduling.suspension import SuspensionPolicy

__all__ = [
    "CpuBasedPolicy",
    "GLoadSharing",
    "LoadSharingPolicy",
    "LocalPolicy",
    "MemoryBasedPolicy",
    "PolicyStats",
    "SrptOracle",
    "SuspensionPolicy",
]
