"""Memory-based load sharing: place by idle memory, migrate on faults.

Represents the memory-conscious schemes the paper cites ([1], [2]):
submissions go to the node with the most idle memory, and a thrashing
node ushers its most memory-intensive job to the node with the most
idle memory.  Job counts are considered only through the CPU-threshold
admission rule, not balanced for.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.job import Job
from repro.cluster.workstation import Workstation
from repro.scheduling.base import LoadSharingPolicy


class MemoryBasedPolicy(LoadSharingPolicy):
    """Most-idle-memory placement plus fault-driven migration."""

    name = "Memory-Loadsharing"

    def select_node(self, job: Job) -> Optional[Workstation]:
        # No home preference: always chase the most idle memory.
        for node in self.candidates_by_idle_memory():
            if node.accepting:
                return node
        home = self._live_node(job.home_node)
        if home.accepting:
            return home
        return None

    def handle_overload(self, node: Workstation) -> None:
        job = node.most_memory_intensive_job(faulting_only=True)
        if job is None or not self._migratable(job):
            return
        self.stats.migration_attempts += 1
        destination = self.find_migration_destination(
            job, exclude=node.node_id)
        if destination is None:
            self.on_blocking(node, job)
            return
        self.migrate(job, node, destination)
