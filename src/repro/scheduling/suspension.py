"""Job suspension: the brute-force alternative the paper rejects.

§1: "One simple solution would be to temporarily suspend the large
jobs so that the job submissions will not be blocked.  However, this
approach will not be fair to the large jobs that may starve if job
submissions continue to flow."

The policy extends G-Loadsharing: when blocking is detected, the most
memory-intensive faulting job is *suspended* (removed from its node,
its memory released) instead of being given a reserved workstation.  A
suspended job resumes only when some workstation can take it back —
under sustained submission pressure that may be very late, which is
exactly the unfairness the paper predicts (visible in the large-job
slowdown tail measured by the baseline benchmark).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.job import Job, JobState
from repro.cluster.workstation import Workstation
from repro.scheduling.g_loadsharing import GLoadSharing


class SuspensionPolicy(GLoadSharing):
    """G-Loadsharing plus suspend-the-large-job blocking relief."""

    name = "Suspension"

    def __init__(self, *args, max_suspension_s: float = 300.0, **kwargs):
        super().__init__(*args, **kwargs)
        self._suspended: List[Job] = []
        self._suspend_started = {}
        self._resuming = False
        self._retry_scheduled = False
        self._suspension_counts: dict = {}
        #: A job is never suspended more than this many times: without
        #: a cap, a job that remains the blocking victim after a forced
        #: resume would ping-pong between suspension and resumption
        #: forever, starving it completely (the §1 critique, taken to
        #: its pathological end).
        self.max_suspensions_per_job = 3
        #: A job suspended longer than this is force-resumed on the
        #: least-loaded node even without a qualified destination —
        #: brute-force suspension must not become a livelock when no
        #: node can ever fit the job.
        self.max_suspension_s = max_suspension_s

    # ------------------------------------------------------------------
    def on_blocking(self, node: Workstation, job: Optional[Job]) -> None:
        super().on_blocking(node, job)
        if job is None or job.state is not JobState.RUNNING:
            return
        count = self._suspension_counts.get(job.job_id, 0)
        if count >= self.max_suspensions_per_job:
            return
        self._suspension_counts[job.job_id] = count + 1
        node.remove_job(job)
        job.state = JobState.SUSPENDED
        self._suspended.append(job)
        self._suspend_started[job.job_id] = self.sim.now
        self.stats.extra["suspensions"] = (
            self.stats.extra.get("suspensions", 0) + 1)
        self._ensure_retry()
        self.cluster.notify_node_changed(node)

    # ------------------------------------------------------------------
    def _ensure_retry(self) -> None:
        """A suspended job is real pending work: keep a non-daemon
        retry alive so the simulation cannot drain while one waits."""
        if self._retry_scheduled or not self._suspended:
            return
        self._retry_scheduled = True
        self.sim.schedule(self.config.monitor_interval_s,
                          self._retry_tick, priority=3)

    def _retry_tick(self) -> None:
        self._retry_scheduled = False
        self._resume_suspended()
        self._ensure_retry()

    def _on_node_changed(self, node: Workstation) -> None:
        self._resume_suspended()
        super()._on_node_changed(node)

    def _resume_suspended(self) -> None:
        if self._resuming or not self._suspended:
            return
        self._resuming = True
        try:
            waiting, self._suspended = self._suspended, []
            resumed = []
            for job in waiting:
                destination = self.find_migration_destination(job)
                if destination is None:
                    started = self._suspend_started.get(job.job_id,
                                                        self.sim.now)
                    if self.sim.now - started >= self.max_suspension_s:
                        destination = self._least_loaded_node()
                    if destination is None:
                        self._suspended.append(job)
                        continue
                started = self._suspend_started.pop(job.job_id,
                                                    self.sim.now)
                waited = self.sim.now - started
                job.acct.queue_s += waited
                job.acct.pending_s += waited
                destination.add_job(job)
                resumed.append(destination)
        finally:
            self._resuming = False
        for destination in resumed:
            self.cluster.notify_node_changed(destination)

    def _least_loaded_node(self) -> Optional[Workstation]:
        candidates = [n for n in self.cluster.nodes
                      if n.alive and not n.reserved]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda n: (n.committed_jobs, -n.idle_memory_mb,
                                  n.node_id))

    @property
    def suspended_jobs(self) -> List[Job]:
        return list(self._suspended)
