"""SRPT oracle: the paper's §1 theoretical reference point.

"It has been proved that the optimal inter-workstation scheduling
policy is to always schedule the job with the shortest remaining
processing time [8].  ...  In practice, the optimal scheduling policy
is impossible to be implemented [because] the remaining processing
time of each job is unknown to the scheduler."

In a simulator we *do* know every job's remaining processing time, so
this oracle exists as an upper-reference policy: it behaves exactly
like G-Loadsharing except that the pending queue is served
shortest-remaining-work-first instead of FIFO.  Comparing any
practical policy against it bounds how much of the SRPT principle the
virtual reconfiguration's implicit ordering actually captures.
"""

from __future__ import annotations

from repro.cluster.workstation import Workstation
from repro.scheduling.g_loadsharing import GLoadSharing


class SrptOracle(GLoadSharing):
    """G-Loadsharing with an SRPT-ordered pending queue (oracle)."""

    name = "SRPT-Oracle"

    def _drain_pending(self) -> None:
        if self._draining or not self._pending:
            return
        self._draining = True
        try:
            progressed = True
            while progressed and self._pending:
                progressed = False
                # Oracle knowledge: shortest remaining work first.
                ordered = sorted(self._pending,
                                 key=lambda job: job.remaining_work_s)
                self._pending.clear()
                self._pending.extend(ordered)
                for _ in range(len(self._pending)):
                    job = self._pending.popleft()
                    if self._try_place(job):
                        progressed = True
                    else:
                        self._pending.append(job)
                        break
        finally:
            self._draining = False
