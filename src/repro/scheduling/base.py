"""Shared machinery for load-sharing policies.

The base class implements everything the paper's §1 framework
describes around the placement decision itself:

* **submission handling** — a job submitted at its home workstation is
  placed by :meth:`select_node`; a remote placement is charged the
  remote submission cost ``r``; when no node qualifies the job waits
  in a FIFO pending queue and placement is retried on every cluster
  state change;
* **monitoring** — a periodic monitor (default 1 s) checks each node
  for thrashing and calls :meth:`handle_overload`, where concrete
  policies implement their migration logic;
* **migration mechanics** — preemptive migration freezes the job,
  transfers its working-set image at cost ``r + D/B``, and restarts it
  at the destination, charging the delay to the job's ``t_mig``.

Subclasses override :meth:`select_node`, :meth:`handle_overload`, and
optionally :meth:`on_blocking` (called when an overloaded node has no
qualified migration destination — the trigger of the paper's
reconfiguration routine).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional
from collections import deque

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job, JobState
from repro.cluster.workstation import Workstation


class _TransferArrival:
    """Arrival callback of one migration-transfer attempt.

    A callable class rather than a closure so pending transfers can be
    pickled into a checkpoint (closures cannot).  ``delay`` is filled
    in *after* :meth:`Network.migrate` returns — under contention the
    transfer time is only known once the link queue has been consulted,
    but the callback object must exist before the call.
    """

    __slots__ = ("policy", "job", "source", "destination", "image_mb",
                 "on_arrival", "on_abandoned", "attempt", "failed", "delay")

    def __init__(self, policy: "LoadSharingPolicy", job: Job,
                 source: Workstation, destination: Workstation,
                 image_mb: float,
                 on_arrival: Optional[Callable[[Job], None]],
                 on_abandoned: Optional[Callable[[Job], None]],
                 attempt: int, failed: bool):
        self.policy = policy
        self.job = job
        self.source = source
        self.destination = destination
        self.image_mb = image_mb
        self.on_arrival = on_arrival
        self.on_abandoned = on_abandoned
        self.attempt = attempt
        self.failed = failed
        self.delay = 0.0

    def __call__(self) -> None:
        job, destination = self.job, self.destination
        if self.failed or not destination.alive:
            # The image was lost in flight, or the destination died
            # while it was on the wire.  The time is spent either
            # way; release the slot and decide on a retry.
            job.acct.migration_s += self.delay
            destination.inbound_jobs -= 1
            self.policy._transfer_failed(job, self.source, destination,
                                         self.image_mb, self.on_arrival,
                                         self.on_abandoned, self.attempt)
            return
        job.acct.migration_s += self.delay
        destination.inbound_jobs -= 1
        destination.add_job(job)
        if self.on_arrival is not None:
            self.on_arrival(job)
        self.policy.cluster.notify_node_changed(destination)


@dataclass
class PolicyStats:
    """Counters a policy accumulates while driving a workload."""

    submissions: int = 0
    local_placements: int = 0
    remote_submissions: int = 0
    migrations: int = 0
    migration_attempts: int = 0
    blocking_events: int = 0
    pending_peak: int = 0
    overload_checks: int = 0
    extra: Dict[str, float] = field(default_factory=dict)


class LoadSharingPolicy:
    """Base class; concrete policies override the placement hooks."""

    #: Human-readable policy name used in reports.
    name = "base"

    def __init__(self, cluster: Cluster,
                 migration_cooldown_s: float = 60.0,
                 min_remaining_for_migration_s: float = 5.0,
                 migration_payoff_factor: float = 2.0):
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = cluster.config
        self.stats = PolicyStats()
        self.migration_cooldown_s = migration_cooldown_s
        self.min_remaining_for_migration_s = min_remaining_for_migration_s
        self.migration_payoff_factor = migration_payoff_factor
        self._pending: Deque[Job] = deque()
        self._wait_started: Dict[int, float] = {}
        self._last_migration: Dict[int, float] = {}
        self._draining = False
        #: Candidate-selection path: the load directory's maintained
        #: index (default) or the seed snapshot-sort (equivalence and
        #: scale-benchmark fallback).
        self._indexed = cluster.config.indexed_selection
        #: Load-information domains (1 = flat directory).  K > 1
        #: switches candidate selection to the two-level path: local
        #: domain first, remote domains ranked from summaries.
        self._num_domains = cluster.config.domains
        #: Cached candidate view keyed on (directory order version,
        #: exclude): one drain round over the pending queue — and any
        #: burst of selections between directory updates — reuses a
        #: single list instead of rebuilding per job.
        self._candidates_key: Optional[tuple] = None
        self._candidates_view: List[Workstation] = []
        #: Obs channels, cached once so the emit sites are a single
        #: attribute load + bool test while observability is off.
        self._obs_place = cluster.obs.channel("cluster.placement")
        self._obs_migrate = cluster.obs.channel("cluster.migration")
        self._obs_block = cluster.obs.channel("reconfig.blocking")
        self._obs_job = cluster.obs.channel("cluster.job")
        if cluster.faults is not None:
            cluster.faults.policy = self
        #: Handle of the next monitor tick, kept so :meth:`retire` can
        #: cancel it when a checkpoint fork replaces this policy.
        self._monitor_event = None
        self._retired = False
        cluster.on_node_changed(self._on_node_changed)
        self._schedule_monitor()

    # ------------------------------------------------------------------
    # submission path
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Entry point: a job arrives at its home workstation."""
        self.stats.submissions += 1
        job.state = JobState.PENDING
        self._wait_started[job.job_id] = self.sim.now
        obs = self._obs_job
        if obs.enabled:
            obs.emit(self.sim.now, "submit", job=job.job_id,
                     home=job.home_node, cpu_work_s=job.cpu_work_s,
                     demand_mb=job.current_demand_mb, program=job.program)
        if not self._try_place(job):
            self._enqueue_pending(job)

    def _enqueue_pending(self, job: Job) -> None:
        self._pending.append(job)
        self.stats.pending_peak = max(self.stats.pending_peak,
                                      len(self._pending))

    def _try_place(self, job: Job) -> bool:
        node = self.select_node(job)
        if node is None:
            return False
        if node.node_id == job.home_node:
            self.stats.local_placements += 1
            self._start(job, node)
        else:
            self.stats.remote_submissions += 1
            job.remote_submissions += 1
            self._start_remote(job, node)
        return True

    def _start(self, job: Job, node: Workstation) -> None:
        self._charge_wait(job)
        obs = self._obs_place
        if obs.enabled:
            obs.emit(self.sim.now, "local", job=job.job_id,
                     node=node.node_id, demand_mb=job.current_demand_mb)
        node.add_job(job)
        self.cluster.notify_node_changed(node)

    def _start_remote(self, job: Job, node: Workstation) -> None:
        self._charge_wait(job)
        obs = self._obs_place
        if obs.enabled:
            obs.emit(self.sim.now, "remote", job=job.job_id,
                     node=node.node_id, home=job.home_node,
                     demand_mb=job.current_demand_mb)
        job.state = JobState.MIGRATING
        node.inbound_jobs += 1
        delay = self.cluster.network.remote_cost_s
        self.cluster.network.submit_remote(
            functools.partial(self._remote_arrival, job, node, delay))

    def _remote_arrival(self, job: Job, node: Workstation,
                        delay: float) -> None:
        """A remote submission's image landed (or tried to)."""
        job.acct.migration_s += delay
        if not node.alive:
            # The destination crashed while the submission was in
            # flight: release the slot and requeue the job.
            node.inbound_jobs -= 1
            self._requeue_in_flight(job)
            return
        node.inbound_jobs -= 1
        node.add_job(job)
        self.cluster.notify_node_changed(node)

    def _charge_wait(self, job: Job) -> None:
        started = self._wait_started.pop(job.job_id, None)
        if started is None:
            return
        waited = self.sim.now - started
        if waited > 0:
            job.acct.queue_s += waited
            job.acct.pending_s += waited

    # ------------------------------------------------------------------
    # pending queue retry
    # ------------------------------------------------------------------
    def _on_node_changed(self, node: Workstation) -> None:
        self._drain_pending()

    def _drain_pending(self) -> None:
        if self._draining or not self._pending:
            return
        self._draining = True
        try:
            progressed = True
            while progressed and self._pending:
                progressed = False
                for _ in range(len(self._pending)):
                    job = self._pending.popleft()
                    if self._try_place(job):
                        progressed = True
                    else:
                        self._pending.append(job)
                        # FIFO fairness: if the head cannot be placed,
                        # don't let later jobs overtake it this round.
                        break
        finally:
            self._draining = False

    @property
    def pending_jobs(self) -> List[Job]:
        return list(self._pending)

    @property
    def pending_count(self) -> int:
        """Pending-queue length without the list copy ``pending_jobs``
        makes — probed every collector tick, so O(1) matters."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # monitoring and migration
    # ------------------------------------------------------------------
    def _schedule_monitor(self) -> None:
        self._monitor_event = self.sim.schedule(
            self.config.monitor_interval_s,
            self._monitor_tick, priority=3, daemon=True)

    def _monitor_tick(self) -> None:
        """Check overloaded nodes once per monitor period.

        With the index enabled only the cluster's maintained thrashing
        set is visited (ascending node id, live re-verified — a node
        handled earlier in the tick may have stopped thrashing).  No
        node can *become* thrashing synchronously inside a tick —
        demand only arrives through delayed network events — so the
        set always covers what a full scan would find.
        """
        if self._indexed:
            hot = self.cluster.thrashing_nodes
            if hot:
                nodes = self.cluster.nodes
                for node_id in sorted(hot):
                    self.stats.overload_checks += 1
                    node = nodes[node_id]
                    if node.thrashing and not node.reserved:
                        self.handle_overload(node)
        else:
            for node in self.cluster.nodes:
                self.stats.overload_checks += 1
                if node.thrashing and not node.reserved:
                    self.handle_overload(node)
        if not self._retired:
            self._schedule_monitor()

    def _migratable(self, job: Job) -> bool:
        """A migration must plausibly pay for itself: the job keeps
        running, its remaining work covers the transfer cost a few
        times over, and it has not just been moved."""
        if job.state is not JobState.RUNNING:
            return False
        cost = self.cluster.network.migration_cost_s(job.current_demand_mb)
        needed = max(self.min_remaining_for_migration_s,
                     self.migration_payoff_factor * cost)
        if job.remaining_work_s < needed:
            return False
        last = self._last_migration.get(job.job_id)
        return last is None or (self.sim.now - last
                                >= self.migration_cooldown_s)

    def migrate(self, job: Job, source: Workstation,
                destination: Workstation,
                on_arrival: Optional[Callable[[Job], None]] = None,
                on_abandoned: Optional[Callable[[Job], None]] = None
                ) -> float:
        """Preemptively migrate ``job``; returns the charged delay.

        Under fault injection a transfer may fail in flight (or land
        on a node that died meanwhile); failed transfers retry with
        capped exponential backoff and finally fall back to local
        execution — ``on_abandoned`` fires once if the job never
        reaches ``destination`` (so reservation bookkeeping can undo
        its assignment).
        """
        if job.state is not JobState.RUNNING:
            raise ValueError(f"cannot migrate job {job.job_id} in state "
                             f"{job.state}")
        image_mb = job.current_demand_mb
        source.remove_job(job)
        job.state = JobState.MIGRATING
        job.migrations += 1
        self.stats.migrations += 1
        self._last_migration[job.job_id] = self.sim.now
        delay = self._start_transfer(job, source, destination, image_mb,
                                     on_arrival, on_abandoned, attempt=0)
        obs = self._obs_migrate
        if obs.enabled:
            obs.emit(self.sim.now, "migrate", job=job.job_id,
                     source=source.node_id, dest=destination.node_id,
                     image_mb=image_mb, delay_s=delay,
                     dedicated=job.dedicated)
        self.cluster.notify_node_changed(source)
        return delay

    def _start_transfer(self, job: Job, source: Workstation,
                        destination: Workstation, image_mb: float,
                        on_arrival: Optional[Callable[[Job], None]],
                        on_abandoned: Optional[Callable[[Job], None]],
                        attempt: int) -> float:
        """One transfer attempt of a migrating job's memory image."""
        faults = self.cluster.faults
        failed = faults is not None and faults.migration_transfer_fails()
        destination.inbound_jobs += 1
        arrive = _TransferArrival(self, job, source, destination, image_mb,
                                  on_arrival, on_abandoned, attempt, failed)
        arrive.delay = self.cluster.network.migrate(image_mb, arrive)
        return arrive.delay

    def _transfer_failed(self, job: Job, source: Workstation,
                         destination: Workstation, image_mb: float,
                         on_arrival: Optional[Callable[[Job], None]],
                         on_abandoned: Optional[Callable[[Job], None]],
                         attempt: int) -> None:
        faults = self.cluster.faults
        cfg = faults.config
        faults.record_migration_failure(job, source, destination, attempt)
        if attempt < cfg.migration_max_retries:
            backoff = min(cfg.migration_backoff_cap_s,
                          cfg.migration_backoff_base_s * (2.0 ** attempt))
            faults.record_migration_retry(job, destination, attempt + 1,
                                          backoff)
            self.sim.schedule(
                backoff,
                functools.partial(self._retry_transfer, job, source,
                                  destination, image_mb, on_arrival,
                                  on_abandoned, attempt + 1))
            return
        self._abandon_migration(job, source, on_abandoned)

    def _retry_transfer(self, job: Job, source: Workstation,
                        destination: Workstation, image_mb: float,
                        on_arrival: Optional[Callable[[Job], None]],
                        on_abandoned: Optional[Callable[[Job], None]],
                        attempt: int) -> None:
        """Backoff elapsed: re-verify the destination, then re-send.

        The reserved flag is deliberately *not* re-checked: reservation
        migrations legitimately target a reserved workstation, and for
        ordinary migrations a reservation that appeared mid-retry
        still leaves the capacity checks authoritative.
        """
        if (destination.alive and destination.has_free_slot
                and destination.idle_memory_mb
                >= job.current_demand_mb - 1e-9):
            self._start_transfer(job, source, destination, image_mb,
                                 on_arrival, on_abandoned, attempt)
            return
        self._abandon_migration(job, source, on_abandoned)

    def _abandon_migration(self, job: Job, source: Workstation,
                           on_abandoned: Optional[Callable[[Job], None]]
                           ) -> None:
        """Retries exhausted (or the destination is gone): fall back
        to local execution at the source, or requeue if the source
        itself died meanwhile."""
        faults = self.cluster.faults
        if on_abandoned is not None:
            on_abandoned(job)
        job.dedicated = False
        faults.record_migration_fallback(job, source)
        if source.alive:
            source.add_job(job)
            self.cluster.notify_node_changed(source)
        else:
            self._requeue_in_flight(job)

    def _requeue_in_flight(self, job: Job) -> None:
        """An in-flight job lost its destination and has no live node
        to fall back to: re-enter the submission path."""
        self.cluster.faults.record_inflight_requeue(job)
        job.state = JobState.PENDING
        self._wait_started[job.job_id] = self.sim.now
        obs = self._obs_job
        if obs.enabled:
            obs.emit(self.sim.now, "requeue", job=job.job_id,
                     reason="in-flight")
        if not self._try_place(job):
            self._enqueue_pending(job)

    def requeue_lost_jobs(self, node: Workstation,
                          jobs: List[Job]) -> None:
        """Crash-recovery hook (fault injection): jobs torn off a dead
        ``node`` re-enter the submission path in their running order.
        The injector has already applied the crash policy (progress
        reset for ``requeue``, kept for ``checkpoint``)."""
        obs = self._obs_job
        for job in jobs:
            self._wait_started[job.job_id] = self.sim.now
            if obs.enabled:
                obs.emit(self.sim.now, "requeue", job=job.job_id,
                         reason="crash", node=node.node_id)
            if not self._try_place(job):
                self._enqueue_pending(job)

    # ------------------------------------------------------------------
    # checkpoint fork support
    # ------------------------------------------------------------------
    def retire(self) -> None:
        """Permanently stop this policy's autonomous activity.

        Used when a checkpoint fork replaces the policy mid-run: the
        monitor tick is cancelled and the node-change listener removed,
        so the retiree makes no further placement or migration
        decisions.  Callbacks already in flight (transfer arrivals,
        retry backoffs) still execute against the shared cluster — they
        represent work physically on the wire — and land their jobs or
        requeue them into the pending deque the successor adopted.
        """
        self._retired = True
        if self._monitor_event is not None:
            self._monitor_event.cancel()
            self._monitor_event = None
        self.cluster.remove_node_changed_listener(self._on_node_changed)

    def adopt_pending_from(self, old: "LoadSharingPolicy") -> None:
        """Take over a retired predecessor's queue state *by reference*.

        Sharing (rather than copying) the deque and the wait/cooldown
        maps means the predecessor's in-flight callbacks — which hold
        references to the same objects — keep landing in the queue the
        successor drains.  Call after :meth:`retire` on ``old``.
        """
        self._pending = old._pending
        self._wait_started = old._wait_started
        self._last_migration = old._last_migration
        self.stats.pending_peak = max(self.stats.pending_peak,
                                      len(self._pending))
        self._drain_pending()

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------
    def select_node(self, job: Job) -> Optional[Workstation]:
        """Choose a workstation for a submission, or None to queue."""
        raise NotImplementedError

    def handle_overload(self, node: Workstation) -> None:
        """React to a thrashing node (called by the monitor)."""

    def on_blocking(self, node: Workstation, job: Optional[Job]) -> None:
        """Called when ``node`` thrashes but no qualified migration
        destination exists — the paper's blocking problem.  ``job`` is
        the migration candidate that could not be placed."""
        self.stats.blocking_events += 1
        obs = self._obs_block
        if obs.enabled:
            obs.emit(self.sim.now, "blocking", node=node.node_id,
                     job=job.job_id if job is not None else None,
                     fault_rate_per_s=node.fault_rate_per_s)

    # ------------------------------------------------------------------
    # helpers shared by concrete policies
    # ------------------------------------------------------------------
    def _live_node(self, node_id: int) -> Workstation:
        return self.cluster.nodes[node_id]

    def candidates_by_idle_memory(self,
                                  exclude: Optional[int] = None
                                  ) -> List[Workstation]:
        """Nodes ordered by (idle memory desc, job count asc) using the
        possibly stale load directory; each is live-verified by the
        caller.

        The default path reads the directory's maintained accepting
        order (O(1) amortized; the returned list is cached per
        directory version and must not be mutated).  The legacy path
        (``indexed_selection=False``) rebuilds and sorts snapshots per
        call — same result, pinned by the equivalence tests.
        """
        directory = self.cluster.directory
        if not self._indexed:
            snaps = [s for s in directory.snapshots()
                     if s.accepting and s.node_id != exclude]
            snaps.sort(key=lambda s: (-s.idle_memory_mb, s.num_jobs,
                                      s.node_id))
            return [self._live_node(s.node_id) for s in snaps]
        if self._num_domains > 1:
            # Two-level selection: the submitting node's domain first,
            # then remote domains as ranked (and possibly skipped) by
            # the stale summaries.  The cache key below stays valid:
            # the local domain is a function of ``exclude``.
            local = (directory.domain_of(exclude)
                     if exclude is not None else None)
            ordered = directory.accepting_ids(local_domain=local)
        else:
            ordered = directory.accepting_ids()
        key = (directory.order_version, exclude)
        if key != self._candidates_key:
            nodes = self.cluster.nodes
            self._candidates_view = [nodes[node_id] for node_id in ordered
                                     if node_id != exclude]
            self._candidates_key = key
        return self._candidates_view

    def find_migration_destination(self, job: Job,
                                   exclude: Optional[int] = None
                                   ) -> Optional[Workstation]:
        """Qualified destination per [3]: enough idle memory for the
        job's current demand and a free slot; largest idle memory wins."""
        for node in self.candidates_by_idle_memory(exclude=exclude):
            if node.accepts_migration(job):
                return node
        return None
