"""No load sharing: every job runs on its home workstation.

The degenerate baseline the load-sharing literature starts from — jobs
queue behind the home node's CPU threshold and thrash when their
combined demands exceed its memory.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.job import Job
from repro.cluster.workstation import Workstation
from repro.scheduling.base import LoadSharingPolicy


class LocalPolicy(LoadSharingPolicy):
    """Home-node-only placement, no migration."""

    name = "Local"

    def select_node(self, job: Job) -> Optional[Workstation]:
        home = self._live_node(job.home_node)
        if home.alive and home.has_free_slot:
            return home
        return None
