"""Event-log tracer over a cluster run.

Records a timestamped event stream (submissions, placements,
migrations, completions, reservation lifecycle when a
V-Reconfiguration policy is attached) and renders the paper-style
per-job lifetime breakdown — the §3.1 measurements: "current ages and
lifetime of jobs, the sizes of memory allocation for each running
job, ... events of page faults in each workstation".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job
from repro.cluster.workstation import Workstation
from repro.metrics.report import render_table
from repro.scheduling.base import LoadSharingPolicy


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    kind: str
    job_id: Optional[int] = None
    node_id: Optional[int] = None
    detail: str = ""


@dataclass
class JobRecord:
    """Aggregated view of one job's life (built from events)."""

    job: Job
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    nodes_visited: List[int] = field(default_factory=list)

    @property
    def placement_delay_s(self) -> Optional[float]:
        if self.submitted_at is None or self.started_at is None:
            return None
        return self.started_at - self.submitted_at


class ExecutionTracer:
    """Subscribes to a cluster (and optionally a policy) and records
    the event stream.

    Attach *before* replaying a workload::

        tracer = ExecutionTracer(cluster)
        tracer.watch_policy(policy)   # optional richer events
        ... run ...
        print(tracer.render_timeline(limit=50))
        print(lifetime_breakdown_table(tracer.finished_jobs()))
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.events: List[TraceEvent] = []
        self.records: Dict[int, JobRecord] = {}
        self._policy: Optional[LoadSharingPolicy] = None
        self._known_nodes: Dict[int, Optional[int]] = {}
        cluster.on_job_finished(self._job_finished)
        cluster.on_node_changed(self._node_changed)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def watch_policy(self, policy: LoadSharingPolicy) -> None:
        """Wrap the policy's submit/migrate hooks to record intent
        events in addition to the cluster's state events.

        For reconfiguration policies the tracer also subscribes to the
        cluster's obs bus so the timeline explains *why* reservations
        did not happen: ``activation-skipped`` (accumulated idle memory
        below the average workstation user memory, §2.1/§2.3) and
        ``backoff-cancel`` (blocking disappeared during the reserving
        period) appear as first-class events.
        """
        self._policy = policy
        self._watch_reconfiguration_decisions(policy)
        original_submit = policy.submit
        original_migrate = policy.migrate

        def traced_submit(job: Job):
            self._record("submit", job=job,
                         node_id=job.home_node,
                         detail=f"home={job.home_node}")
            record = self._record_for(job)
            if record.submitted_at is None:
                record.submitted_at = self.cluster.sim.now
            return original_submit(job)

        def traced_migrate(job: Job, source: Workstation,
                           destination: Workstation, **kwargs):
            self._record(
                "migrate", job=job, node_id=source.node_id,
                detail=(f"{source.node_id}->{destination.node_id} "
                        f"image={job.current_demand_mb:.0f}MB"))
            return original_migrate(job, source, destination, **kwargs)

        policy.submit = traced_submit
        policy.migrate = traced_migrate

    def _watch_reconfiguration_decisions(self,
                                         policy: LoadSharingPolicy) -> None:
        """Record reservation *non*-events from the obs bus (no-op for
        policies that never emit them)."""
        bus = self.cluster.obs

        def on_blocking_event(event) -> None:
            if event.kind != "activation-skipped":
                return
            data = event.data
            self.events.append(TraceEvent(
                time=event.time, kind="activation-skipped",
                node_id=data.get("node"),
                detail=(f"idle={data.get('idle_memory_mb', 0.0):.0f}MB"
                        f" <= avg-user="
                        f"{data.get('threshold_mb', 0.0):.0f}MB")))

        def on_reservation_event(event) -> None:
            if event.kind != "backoff-cancel":
                return
            data = event.data
            self.events.append(TraceEvent(
                time=event.time, kind="backoff-cancel",
                node_id=data.get("node"),
                detail=(f"reservation={data.get('reservation')}"
                        f" backoff-until="
                        f"{data.get('backoff_until', 0.0):.1f}s")))

        bus.subscribe("reconfig.blocking", on_blocking_event)
        bus.subscribe("reconfig.reservation", on_reservation_event)

    # ------------------------------------------------------------------
    # event capture
    # ------------------------------------------------------------------
    def _record(self, kind: str, job: Optional[Job] = None,
                node_id: Optional[int] = None, detail: str = "") -> None:
        self.events.append(TraceEvent(
            time=self.cluster.sim.now, kind=kind,
            job_id=job.job_id if job is not None else None,
            node_id=node_id, detail=detail))

    def _record_for(self, job: Job) -> JobRecord:
        if job.job_id not in self.records:
            self.records[job.job_id] = JobRecord(job=job)
        return self.records[job.job_id]

    def _job_finished(self, job: Job, node: Workstation) -> None:
        record = self._record_for(job)
        record.finished_at = self.cluster.sim.now
        self._record("finish", job=job, node_id=node.node_id,
                     detail=f"slowdown={job.slowdown():.2f}")

    def _node_changed(self, node: Workstation) -> None:
        # Detect job starts by scanning the node's running set; cheap
        # because node populations are small (<= CPU threshold).
        for job in node.running_jobs:
            record = self._record_for(job)
            if record.started_at is None:
                record.started_at = self.cluster.sim.now
                self._record("start", job=job, node_id=node.node_id)
            if (not record.nodes_visited
                    or record.nodes_visited[-1] != node.node_id):
                record.nodes_visited.append(node.node_id)

    # ------------------------------------------------------------------
    # queries and rendering
    # ------------------------------------------------------------------
    def events_of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def finished_jobs(self) -> List[Job]:
        return [record.job for record in self.records.values()
                if record.finished_at is not None]

    def job_timeline(self, job_id: int) -> List[TraceEvent]:
        return [event for event in self.events if event.job_id == job_id]

    def render_timeline(self, limit: Optional[int] = None,
                        kinds: Optional[Sequence[str]] = None) -> str:
        """Human-readable event log (optionally filtered/truncated)."""
        selected = [event for event in self.events
                    if kinds is None or event.kind in kinds]
        if limit is not None:
            selected = selected[:limit]
        lines = []
        for event in selected:
            job_part = f" job={event.job_id}" if event.job_id is not None \
                else ""
            node_part = f" node={event.node_id}" \
                if event.node_id is not None else ""
            detail = f"  {event.detail}" if event.detail else ""
            lines.append(f"t={event.time:10.2f}s {event.kind:8s}"
                         f"{job_part}{node_part}{detail}")
        return "\n".join(lines)


def lifetime_breakdown_table(jobs: Sequence[Job],
                             top: Optional[int] = None) -> str:
    """The paper's §3.1 measurement: per-job lifetime broken into CPU,
    paging, I/O, queuing, and migration portions."""
    ordered = sorted((job for job in jobs if job.finished),
                     key=lambda job: -(job.finish_time - job.submit_time))
    if top is not None:
        ordered = ordered[:top]
    rows = []
    for job in ordered:
        wall = job.finish_time - job.submit_time
        rows.append({
            "job": job.job_id,
            "program": job.program,
            "wall (s)": wall,
            "cpu (s)": job.acct.cpu_s,
            "page (s)": job.acct.page_s,
            "io (s)": job.acct.io_s,
            "queue (s)": job.acct.queue_s,
            "mig (s)": job.acct.migration_s,
            "slowdown": job.slowdown(),
            "migs": float(job.migrations),
        })
    columns = ("job", "program", "wall (s)", "cpu (s)", "page (s)",
               "io (s)", "queue (s)", "mig (s)", "slowdown", "migs")
    return render_table(rows, columns,
                        title="Per-job lifetime breakdown (paper §3.1)")
