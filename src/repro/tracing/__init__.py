"""Execution tracing: the kernel-instrumentation analog (paper §3.1).

The paper's authors instrumented the Linux kernel to record "when a
job process is interrupted for a system event, and how long this event
lasts", plus per-interval memory/I/O activity.  In the simulator the
same observability is provided by :class:`ExecutionTracer`: it
subscribes to cluster and policy events and produces a queryable,
renderable event log — per-job lifetime breakdowns, migration chains,
reservation episodes.
"""

from repro.tracing.tracer import (
    ExecutionTracer,
    TraceEvent,
    lifetime_breakdown_table,
)

__all__ = [
    "ExecutionTracer",
    "TraceEvent",
    "lifetime_breakdown_table",
]
