"""Global load-index directory.

Each workstation "maintains a global load index file which contains
CPU, memory, and I/O load status information of other computing
nodes.  The load sharing system periodically collects and distributes
the load information among the workstations" (paper §3.3.1).

The directory publishes a snapshot of every node at a configurable
period.  Schedulers *select* candidates from snapshots (possibly
stale) and perform a live admission check at the chosen node, the way
a real remote submission would.  A period of 0 disables staleness:
every lookup reads the live node.

Beyond the snapshot store, the directory incrementally maintains the
two candidate orders the scheduling layer consumes on its hot path:

* the **accepting order** — accepting nodes sorted by
  ``(-idle_memory_mb, num_jobs, node_id)``, backing
  ``candidates_by_idle_memory`` / ``find_migration_destination``;
* the **load order** — all live nodes sorted by ``(num_jobs,
  node_id)``, backing the CPU-based policy.

Under fault injection, crashed nodes leave both orders immediately
(:meth:`LoadInfoDirectory.evict`) and return on recovery
(:meth:`LoadInfoDirectory.readmit`); a lossy exchange is modelled by
the :attr:`LoadInfoDirectory.fault_hook` dropping or delaying
per-node updates.

Each order is activated lazily on first use and then kept sorted:
one exchange round updates only the nodes that actually changed since
the previous round (workstations report changes through their
change-listener hook), and in live mode (``exchange_interval_s == 0``)
every node change updates the order in place (amortized O(log N)
comparisons per update).  Reading an order is an O(1) cached-list
lookup; ``order_version`` lets schedulers cache derived candidate
views.  The orders reproduce exactly what sorting a fresh
``snapshots()`` list would yield — a property pinned by tests.
"""

from __future__ import annotations

import functools
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster.state import (
    FLAG_ACCEPTING,
    FLAG_ALIVE,
    FLAG_THRASHING,
    ClusterState,
)
from repro.obs.bus import NULL_CHANNEL, Channel
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.workstation import Workstation


@dataclass(frozen=True)
class NodeSnapshot:
    """Published load state of one workstation.

    ``timestamp`` is the instant the snapshot was (re)published — for a
    node that has not changed across exchange rounds this is the round
    that last observed a change, since unchanged nodes are not
    re-collected.
    """

    node_id: int
    num_jobs: int
    idle_memory_mb: float
    total_demand_mb: float
    fault_rate_per_s: float
    accepting: bool
    timestamp: float
    #: Fail-stop liveness (fault injection); dead nodes are excluded
    #: from both candidate orders until re-admitted.
    alive: bool = True
    #: Published thrashing state, carried in the load report so domain
    #: summaries can aggregate it without touching live nodes.
    thrashing: bool = False


class _CandidateOrder:
    """One incrementally maintained sorted order over the nodes.

    Entries are key tuples ending in the node id, so the sort is total
    and ``ids()`` can strip the keys.  ``update`` keeps the list sorted
    under single-node changes via bisection; a node whose key is
    ``None`` is excluded (used for the accepting filter).
    """

    __slots__ = ("entries", "key_of", "_ids")

    def __init__(self, keyed: Iterable[Tuple[int, Optional[tuple]]]):
        self.key_of: Dict[int, Optional[tuple]] = dict(keyed)
        self.entries: List[tuple] = sorted(
            key for key in self.key_of.values() if key is not None)
        self._ids: Optional[List[int]] = None

    def update(self, node_id: int, key: Optional[tuple]) -> bool:
        """Move ``node_id`` to its new position; True if anything moved."""
        old = self.key_of.get(node_id)
        if old == key:
            return False
        if old is not None:
            index = bisect_left(self.entries, old)
            del self.entries[index]
        if key is not None:
            insort(self.entries, key)
        self.key_of[node_id] = key
        self._ids = None
        return True

    def ids(self) -> List[int]:
        """Node ids in order (cached between changes)."""
        if self._ids is None:
            self._ids = [entry[-1] for entry in self.entries]
        return self._ids


class LoadInfoDirectory:
    """Periodically refreshed cluster-wide load information."""

    def __init__(self, sim: Simulator, nodes: List["Workstation"],
                 exchange_interval_s: float = 1.0,
                 incremental: bool = True,
                 obs: Optional[Channel] = None,
                 state: Optional[ClusterState] = None,
                 managed: bool = False):
        if exchange_interval_s < 0:
            raise ValueError("exchange_interval_s must be >= 0")
        self._sim = sim
        self._nodes = nodes
        #: Id-based lookup: a directory may cover a *subset* of the
        #: cluster (a domain shard), so node ids are not list indexes.
        self._node_by_id: Dict[int, "Workstation"] = {
            node.node_id: node for node in nodes}
        #: Columnar cluster state; when present, snapshot collection
        #: and candidate keys read the published columns (array loads
        #: over dirty node ids) instead of per-object property calls.
        self._state = state
        #: ``loadinfo.exchange`` obs channel (disabled by default).
        self.obs = obs if obs is not None else NULL_CHANNEL
        self.exchange_interval_s = exchange_interval_s
        #: When False every exchange round re-collects all N nodes,
        #: reproducing the seed directory exactly (used by the
        #: unindexed fallback so benchmarks compare real baselines).
        self.incremental = incremental
        self._snapshots: Dict[int, NodeSnapshot] = {}
        #: Fault-injection hook consulted once per refreshed node each
        #: exchange round: ``hook(node_id) -> (action, delay_s)`` with
        #: action one of ``"deliver"``/``"drop"``/``"delay"``.  Dropped
        #: updates stay dirty and are retried next round; delayed ones
        #: apply their (by then possibly stale) snapshot after
        #: ``delay_s``.  ``None`` (the default) delivers everything.
        self.fault_hook = None
        self.refreshes = 0
        #: Bumped whenever a maintained candidate order may have
        #: changed; schedulers key cached candidate views on it.
        self.order_version = 0
        #: Accepting nodes by (-idle_memory_mb, num_jobs, node_id);
        #: None until first queried (lazy activation).
        self._accepting_order: Optional[_CandidateOrder] = None
        #: All nodes by (num_jobs, node_id); None until first queried.
        self._load_order: Optional[_CandidateOrder] = None
        #: Nodes that changed since their snapshot was last collected.
        self._dirty: Set[int] = set()
        #: Aggregates over the *published* snapshots of live nodes,
        #: maintained on every publish so a domain summary costs O(1)
        #: per shard instead of a per-node walk.
        self._agg_idle_mb = 0.0
        self._agg_thrashing = 0
        for node in nodes:
            node.add_change_listener(self._node_changed)
        if exchange_interval_s > 0:
            self.refresh()
            # A managed directory (a domain shard) leaves tick
            # scheduling to its owning DomainDirectory: one exchange
            # event per round drives all K shards.
            if not managed:
                self._schedule_next()

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        self._sim.schedule(self.exchange_interval_s, self._tick, priority=2,
                           daemon=True)

    def _tick(self) -> None:
        self.refresh()
        self._schedule_next()

    def refresh(self) -> None:
        """Collect fresh snapshots (one exchange round).

        Only nodes that reported a change since their last collection
        are re-snapshotted — an unchanged node's snapshot would come
        out field-identical, so skipping it is free.
        """
        self.refreshes += 1
        if not self._snapshots or not self.incremental:
            changed_nodes = self._nodes
        elif self._dirty:
            changed_nodes = [self._node_by_id[node_id]
                             for node_id in sorted(self._dirty)]
        else:
            return
        self._dirty.clear()
        order_moved = False
        hook = self.fault_hook
        dropped = delayed = 0
        for node in changed_nodes:
            if hook is not None:
                action, delay_s = hook(node.node_id)
                if action == "drop":
                    # The update was lost: the node stays dirty so the
                    # next round retries it.
                    self._dirty.add(node.node_id)
                    dropped += 1
                    continue
                if action == "delay":
                    snap = self._snapshot_of(node)
                    self._sim.schedule(
                        delay_s,
                        functools.partial(self._apply_delayed, snap),
                        priority=2, daemon=True)
                    delayed += 1
                    continue
            snap = self._snapshot_of(node)
            self._publish(snap)
            order_moved |= self._reposition(snap.node_id,
                                            self._snapshot_keys(snap))
        if order_moved:
            self.order_version += 1
        obs = self.obs
        if obs.enabled:
            if hook is not None:
                obs.emit(self._sim.now, "exchange",
                         refreshed=len(changed_nodes),
                         order_moved=order_moved, round=self.refreshes,
                         dropped=dropped, delayed=delayed)
            else:
                obs.emit(self._sim.now, "exchange",
                         refreshed=len(changed_nodes),
                         order_moved=order_moved, round=self.refreshes)

    def _apply_delayed(self, snap: NodeSnapshot) -> None:
        """Land a delayed exchange update.

        Out-of-order delivery is the point: the snapshot may be staler
        than what a later round already published — a real lossy
        network re-delivers old load reports too.  An update for a
        node that has crashed since collection is discarded (the
        eviction wins).
        """
        if not self._node_by_id[snap.node_id].alive:
            return
        self._publish(snap)
        if self._reposition(snap.node_id, self._snapshot_keys(snap)):
            self.order_version += 1

    def _snapshot_of(self, node: "Workstation") -> NodeSnapshot:
        state = self._state
        if state is not None:
            node_id = node.node_id
            bits = state.flags[node_id]
            alive = bool(bits & FLAG_ALIVE)
            return NodeSnapshot(
                node_id=node_id,
                num_jobs=((state.num_running[node_id]
                           + state.inbound_jobs[node_id]) if alive else 0),
                idle_memory_mb=state.idle_memory_mb[node_id],
                total_demand_mb=state.total_demand_mb[node_id],
                fault_rate_per_s=state.fault_rate_per_s[node_id],
                accepting=bool(bits & FLAG_ACCEPTING),
                timestamp=self._sim.now,
                alive=alive,
                thrashing=alive and bool(bits & FLAG_THRASHING),
            )
        alive = node.alive
        return NodeSnapshot(
            node_id=node.node_id,
            num_jobs=node.committed_jobs if alive else 0,
            idle_memory_mb=node.idle_memory_mb,
            total_demand_mb=node.total_demand_mb,
            fault_rate_per_s=node.fault_rate_per_s,
            accepting=node.accepting,
            timestamp=self._sim.now,
            alive=alive,
            thrashing=alive and node.thrashing,
        )

    def _publish(self, snap: NodeSnapshot) -> None:
        """Store a snapshot, maintaining the live-node aggregates."""
        old = self._snapshots.get(snap.node_id)
        if old is not None and old.alive:
            self._agg_idle_mb -= old.idle_memory_mb
            self._agg_thrashing -= old.thrashing
        if snap.alive:
            self._agg_idle_mb += snap.idle_memory_mb
            self._agg_thrashing += snap.thrashing
        self._snapshots[snap.node_id] = snap

    # ------------------------------------------------------------------
    # candidate orders
    # ------------------------------------------------------------------
    @staticmethod
    def _snapshot_keys(snap: NodeSnapshot
                       ) -> Tuple[Optional[tuple], Optional[tuple]]:
        if not snap.alive:
            return None, None
        accepting_key = ((-snap.idle_memory_mb, snap.num_jobs, snap.node_id)
                         if snap.accepting else None)
        return accepting_key, (snap.num_jobs, snap.node_id)

    def _live_keys(self, node: "Workstation"
                   ) -> Tuple[Optional[tuple], Optional[tuple]]:
        state = self._state
        if state is not None:
            node_id = node.node_id
            bits = state.flags[node_id]
            if not bits & FLAG_ALIVE:
                return None, None
            num_jobs = (state.num_running[node_id]
                        + state.inbound_jobs[node_id])
            accepting_key = ((-state.idle_memory_mb[node_id], num_jobs,
                              node_id) if bits & FLAG_ACCEPTING else None)
            return accepting_key, (num_jobs, node_id)
        if not node.alive:
            return None, None
        num_jobs = node.committed_jobs
        accepting_key = ((-node.idle_memory_mb, num_jobs, node.node_id)
                         if node.accepting else None)
        return accepting_key, (num_jobs, node.node_id)

    def _keys_of(self, node: "Workstation") -> Tuple[Optional[tuple], tuple]:
        """Key pair (accepting order, load order) under the directory's
        staleness regime."""
        if self.exchange_interval_s == 0:
            return self._live_keys(node)
        return self._snapshot_keys(self._snapshots[node.node_id])

    def _reposition(self, node_id: int,
                    keys: Tuple[Optional[tuple], tuple]) -> bool:
        accepting_key, load_key = keys
        moved = False
        if self._accepting_order is not None:
            moved |= self._accepting_order.update(node_id, accepting_key)
        if self._load_order is not None:
            moved |= self._load_order.update(node_id, load_key)
        return moved

    def _node_changed(self, node: "Workstation") -> None:
        """Workstation change hook: live mode repositions the node in
        the active orders immediately; periodic mode just marks it
        dirty for the next exchange round."""
        if self.exchange_interval_s == 0:
            if self._reposition(node.node_id, self._live_keys(node)):
                self.order_version += 1
        else:
            self._dirty.add(node.node_id)

    # ------------------------------------------------------------------
    # fail-stop membership (fault injection)
    # ------------------------------------------------------------------
    def evict(self, node_id: int) -> None:
        """Remove a crashed node from both candidate orders at once.

        Eviction is immediate rather than waiting for the next
        exchange round: a real load-sharing system learns of a crash
        through connection failure, not through the periodic load
        report.  In periodic mode the dead snapshot is published so
        stale reads also see the node as gone.
        """
        if self.exchange_interval_s != 0:
            self._publish(self._snapshot_of(self._node_by_id[node_id]))
            self._dirty.discard(node_id)
        if self._reposition(node_id, (None, None)):
            self.order_version += 1

    def readmit(self, node_id: int) -> None:
        """Put a recovered node back into the candidate orders."""
        node = self._node_by_id[node_id]
        if self.exchange_interval_s != 0:
            self._publish(self._snapshot_of(node))
            self._dirty.discard(node_id)
        if self._reposition(node_id, self._keys_of(node)):
            self.order_version += 1

    def accepting_ids(self) -> List[int]:
        """Accepting node ids ordered by (idle memory desc, job count
        asc, node id) — identical to sorting a fresh ``snapshots()``
        list, without the per-call rebuild."""
        if self._accepting_order is None:
            self._accepting_order = _CandidateOrder(
                (node.node_id, self._keys_of(node)[0])
                for node in self._nodes)
            self.order_version += 1
        return self._accepting_order.ids()

    def load_order_ids(self) -> List[int]:
        """All live node ids ordered by (job count asc, node id)."""
        if self._load_order is None:
            self._load_order = _CandidateOrder(
                (node.node_id, self._keys_of(node)[1])
                for node in self._nodes)
            self.order_version += 1
        return self._load_order.ids()

    def least_num_jobs(self) -> int:
        """Smallest published job count across all nodes (O(1) once
        the load order is active: reads its first entry instead of
        materializing the full ids list)."""
        if self._load_order is None:
            self.load_order_ids()  # activate the order lazily
        entries = self._load_order.entries
        return entries[0][0] if entries else 0

    # ------------------------------------------------------------------
    # published aggregates (domain summaries)
    # ------------------------------------------------------------------
    def published_idle_mb(self) -> float:
        """Total idle memory over the published view of live nodes."""
        if self.exchange_interval_s == 0:
            return sum(snap.idle_memory_mb for snap in self.snapshots()
                       if snap.alive)
        return self._agg_idle_mb

    def thrashing_count(self) -> int:
        """Live nodes whose published view shows them thrashing."""
        if self.exchange_interval_s == 0:
            return sum(1 for snap in self.snapshots()
                       if snap.alive and snap.thrashing)
        return self._agg_thrashing

    def accepting_count(self) -> int:
        """Nodes currently in the accepting order (O(1) once the
        order is active: its length is the count — the ids list the
        public accessor materializes is not needed)."""
        if self._accepting_order is None:
            self.accepting_ids()  # activate the order lazily
        return len(self._accepting_order.entries)

    # ------------------------------------------------------------------
    def snapshot(self, node_id: int) -> NodeSnapshot:
        """The current view of ``node_id`` (live when period is 0)."""
        if self.exchange_interval_s == 0:
            return self._snapshot_of(self._node_by_id[node_id])
        return self._snapshots[node_id]

    def snapshots(self) -> List[NodeSnapshot]:
        """Views of all nodes, ordered by node id."""
        return [self.snapshot(node.node_id) for node in self._nodes]
