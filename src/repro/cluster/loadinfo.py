"""Global load-index directory.

Each workstation "maintains a global load index file which contains
CPU, memory, and I/O load status information of other computing
nodes.  The load sharing system periodically collects and distributes
the load information among the workstations" (paper §3.3.1).

The directory publishes a snapshot of every node at a configurable
period.  Schedulers *select* candidates from snapshots (possibly
stale) and perform a live admission check at the chosen node, the way
a real remote submission would.  A period of 0 disables staleness:
every lookup reads the live node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.workstation import Workstation


@dataclass(frozen=True)
class NodeSnapshot:
    """Published load state of one workstation."""

    node_id: int
    num_jobs: int
    idle_memory_mb: float
    total_demand_mb: float
    fault_rate_per_s: float
    accepting: bool
    timestamp: float


class LoadInfoDirectory:
    """Periodically refreshed cluster-wide load information."""

    def __init__(self, sim: Simulator, nodes: List["Workstation"],
                 exchange_interval_s: float = 1.0):
        if exchange_interval_s < 0:
            raise ValueError("exchange_interval_s must be >= 0")
        self._sim = sim
        self._nodes = nodes
        self.exchange_interval_s = exchange_interval_s
        self._snapshots: Dict[int, NodeSnapshot] = {}
        self.refreshes = 0
        if exchange_interval_s > 0:
            self.refresh()
            self._schedule_next()

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        self._sim.schedule(self.exchange_interval_s, self._tick, priority=2,
                           daemon=True)

    def _tick(self) -> None:
        self.refresh()
        self._schedule_next()

    def refresh(self) -> None:
        """Collect a fresh snapshot of every node (one exchange round)."""
        self.refreshes += 1
        for node in self._nodes:
            self._snapshots[node.node_id] = self._snapshot_of(node)

    def _snapshot_of(self, node: "Workstation") -> NodeSnapshot:
        return NodeSnapshot(
            node_id=node.node_id,
            num_jobs=node.committed_jobs,
            idle_memory_mb=node.idle_memory_mb,
            total_demand_mb=node.total_demand_mb,
            fault_rate_per_s=node.fault_rate_per_s,
            accepting=node.accepting,
            timestamp=self._sim.now,
        )

    # ------------------------------------------------------------------
    def snapshot(self, node_id: int) -> NodeSnapshot:
        """The current view of ``node_id`` (live when period is 0)."""
        if self.exchange_interval_s == 0:
            return self._snapshot_of(self._nodes[node_id])
        return self._snapshots[node_id]

    def snapshots(self) -> List[NodeSnapshot]:
        """Views of all nodes, ordered by node id."""
        return [self.snapshot(node.node_id) for node in self._nodes]
