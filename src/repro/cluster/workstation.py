"""Workstation model: multiprogrammed node with memory-aware progress.

Between simulator events every rate on a node is constant, so the node
advances all running jobs analytically and schedules exactly one
internal event at the earliest job completion or memory-phase
boundary.  On every state change (arrival, departure, migration, phase
boundary) accounting is brought up to date and rates are recomputed
from the CPU model (:mod:`repro.cluster.cpu`) and the paging model
(:mod:`repro.cluster.memory`).

Per-job accounting accumulates the paper's §5 decomposition:
``wall = cpu + page + io + queue (+ migration, charged elsewhere)``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.config import ClusterConfig, WorkstationSpec
from repro.cluster.cpu import progress_rates
from repro.cluster.job import Job, JobState
from repro.cluster.memory import PagingAssessment, PagingModel
from repro.cluster.state import (
    FLAG_ACCEPTING,
    FLAG_ALIVE,
    FLAG_RESERVED,
    FLAG_STARVING,
    FLAG_THRASHING,
    ClusterState,
)
from repro.obs.bus import NULL_CHANNEL
from repro.sim.engine import EventHandle, Simulator

_EPS = 1e-9


class Workstation:
    """One node of the simulated cluster.

    With a columnar :class:`~repro.cluster.state.ClusterState`
    attached the workstation is a thin façade over its row: the object
    API below is unchanged, but every externally visible state change
    also writes through to the state columns (:meth:`_sync_row`) so
    batch consumers never have to walk node objects.
    """

    def __init__(self, sim: Simulator, node_id: int, spec: WorkstationSpec,
                 config: ClusterConfig, paging: PagingModel,
                 on_job_finished: Optional[Callable[[Job, "Workstation"], None]] = None,
                 state: Optional[ClusterState] = None):
        self._sim = sim
        self.node_id = node_id
        self.spec = spec
        self.config = config
        self._paging = paging
        self.on_job_finished = on_job_finished
        self.user_memory_mb = config.user_memory_mb(spec)
        #: Columnar cluster state this node writes through to
        #: (None on the per-object fallback path).
        self._state = state

        #: Observers notified after every externally visible state
        #: change (recompute, reservation flag, in-flight arrivals).
        #: The cluster tracks its thrashing set through this, and the
        #: load directory marks changed nodes dirty instead of
        #: re-snapshotting all N nodes every exchange round.
        self._change_listeners: List[Callable[["Workstation"], None]] = []

        #: Fail-stop liveness (fault injection).  A dead node reports
        #: no capacity, accepts nothing, and advances no job.
        self._alive = True
        #: Submissions/migrations blocked by a reservation (the paper's
        #: reservation flag) or by an overload condition.
        self._reserved = False
        #: Jobs committed to this node but still in transit (remote
        #: submissions and migrations reserve their slot up front, so
        #: concurrent placements do not over-commit a node).
        self._inbound_jobs = 0

        self._running: List[Job] = []
        self._rates: List[float] = []
        self._fault_stalls: List[float] = []
        self._io_stalls: List[float] = []
        self._assessment: Optional[PagingAssessment] = None
        self._last_update = sim.now
        self._next_event: Optional[EventHandle] = None

        # Cached aggregates.  Between simulator events every per-job
        # demand and rate on this node is constant (phase boundaries
        # and completions each get their own internal event, which
        # calls _recompute), so these values are exact until the next
        # state change — queries never need to re-sum the job list.
        self._total_demand_cache = 0.0
        self._fault_rate_cache = 0.0
        self._starving_cache = False

        #: Inputs of the last full ``_recompute``: (alive, per-job
        #: demands, per-job dedicated flags).  Every mutation of the
        #: running list itself triggers a recompute, so when a later
        #: recompute sees the same key the job list is the *same
        #: objects in the same order* and every derived quantity
        #: (assessment, rates, stalls) is already exact — the fixed
        #: point is skipped.  None forces the first recompute.
        self._recompute_key: Optional[tuple] = None

        # Diagnostics
        self.busy_cpu_s = 0.0
        self.completed_jobs = 0
        #: Full recomputes vs. skips taken by the early exit above
        #: (surfaced as ``obs.workstation_recompute*`` gauges).
        self.recomputes = 0
        self.recompute_skips = 0

        #: ``memory.fault`` obs channel (thrashing transitions); the
        #: owning cluster points this at its bus.
        self.obs_fault = NULL_CHANNEL
        #: ``cluster.job`` obs channel (job start/stop/finish on this
        #: node, with accounting snapshots); wired by the cluster.
        self.obs_job = NULL_CHANNEL
        self._was_thrashing = False
        if state is not None:
            state.user_memory_mb[node_id] = self.user_memory_mb
            self._sync_row()

    def _emit_job(self, kind: str, job: Job, **extra) -> None:
        """Emit a ``cluster.job`` event carrying the job's cumulative
        accounting.  Callers guarantee the accounting is current (every
        emit site runs right after ``_advance``), so lifecycle trackers
        can compute exact per-segment cpu/page/io deltas."""
        acct = job.acct
        self.obs_job.emit(self._sim.now, kind, job=job.job_id,
                          node=self.node_id, cpu_s=acct.cpu_s,
                          page_s=acct.page_s, io_s=acct.io_s,
                          dedicated=job.dedicated, **extra)

    # ------------------------------------------------------------------
    # change notifications
    # ------------------------------------------------------------------
    def add_change_listener(self,
                            listener: Callable[["Workstation"], None]) -> None:
        """Subscribe to state changes of this node (see __init__)."""
        self._change_listeners.append(listener)

    def _notify_changed(self) -> None:
        for listener in self._change_listeners:
            listener(self)

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def reserved(self) -> bool:
        return self._reserved

    @reserved.setter
    def reserved(self, value: bool) -> None:
        self._reserved = value
        if self._state is not None:
            self._sync_row()
        self._notify_changed()

    @property
    def inbound_jobs(self) -> int:
        return self._inbound_jobs

    @inbound_jobs.setter
    def inbound_jobs(self, value: int) -> None:
        self._inbound_jobs = value
        if self._state is not None:
            self._sync_row()
        self._notify_changed()

    # ------------------------------------------------------------------
    # queries (always consistent with the current instant)
    # ------------------------------------------------------------------
    @property
    def num_running(self) -> int:
        return len(self._running)

    @property
    def committed_jobs(self) -> int:
        """Running jobs plus in-flight arrivals (slot accounting)."""
        return len(self._running) + self._inbound_jobs

    @property
    def running_jobs(self) -> List[Job]:
        """Snapshot list of the jobs currently running here."""
        self._advance()
        return list(self._running)

    @property
    def total_demand_mb(self) -> float:
        """Sum of current per-job demands (cached; see __init__)."""
        return self._total_demand_cache

    @property
    def idle_memory_mb(self) -> float:
        if not self._alive:
            return 0.0
        return max(0.0, self.user_memory_mb - self._total_demand_cache)

    @property
    def fault_rate_per_s(self) -> float:
        """Aggregate page faults per wall-clock second on this node."""
        return self._fault_rate_cache

    @property
    def has_starving_job(self) -> bool:
        """True when some job spends most of its potential progress
        stalled on page faults — the silently starved large job of the
        paper's §2.2 ("less competitive than jobs with small memory
        allocations")."""
        return self._starving_cache

    @property
    def thrashing(self) -> bool:
        """Overloaded by paging: either the node-aggregate fault rate
        exceeds the detection threshold, or some job is starving."""
        return (self._fault_rate_cache > self.config.fault_rate_threshold
                or self._starving_cache)

    @property
    def has_free_slot(self) -> bool:
        return self.committed_jobs < self.config.cpu_threshold

    @property
    def accepting(self) -> bool:
        """Submission-eligibility per [3]: alive, idle memory present,
        a job slot free, and not blocked by a reservation."""
        return (self._alive
                and not self.reserved
                and self.has_free_slot
                and self.idle_memory_mb >= self.config.min_idle_mb)

    def admits_demand(self, demand_mb: float) -> bool:
        """Live memory-threshold admission check: total demand may
        exceed user memory only up to the configured factor."""
        limit = self.user_memory_mb * self.config.memory_threshold_factor
        return self.total_demand_mb + demand_mb <= limit + _EPS

    def accepts_migration(self, job: Job) -> bool:
        """Qualified migration destination per [3]: enough idle memory
        for the job's current demand and a free job slot."""
        return (self._alive
                and not self.reserved
                and self.has_free_slot
                and self.idle_memory_mb >= job.current_demand_mb - _EPS)

    # ------------------------------------------------------------------
    # state changes
    # ------------------------------------------------------------------
    def add_job(self, job: Job) -> None:
        """Start (or resume) ``job`` on this node."""
        if not self._alive:
            raise ValueError(f"node {self.node_id} is down")
        if job.state is JobState.FINISHED:
            raise ValueError(f"job {job.job_id} already finished")
        if any(j.job_id == job.job_id for j in self._running):
            raise ValueError(f"job {job.job_id} already on node {self.node_id}")
        self._advance()
        job.state = JobState.RUNNING
        job.node_id = self.node_id
        self._running.append(job)
        if self.obs_job.enabled:
            self._emit_job("start", job)
        self._recompute()

    def remove_job(self, job: Job) -> None:
        """Detach ``job`` (for migration or suspension)."""
        self._advance()
        if job not in self._running:
            raise ValueError(f"job {job.job_id} not on node {self.node_id}")
        self._running.remove(job)
        if self.obs_job.enabled:
            self._emit_job("stop", job, reason="detach")
        job.node_id = None
        self._recompute()

    def crash(self) -> List[Job]:
        """Fail-stop this node; returns the jobs it was running.

        Accounting is brought up to the crash instant first, so the
        lost jobs' progress/accounting reflect work done until the
        failure.  The returned jobs are detached (``state=PENDING``,
        ``node_id=None``) and owned by the caller — the fault injector
        applies the crash policy (requeue vs. checkpoint) and hands
        them to the scheduling policy.  In-flight arrivals are *not*
        touched: their network callbacks observe ``alive`` on landing.
        """
        if not self._alive:
            raise ValueError(f"node {self.node_id} is already down")
        self._advance()
        lost = list(self._running)
        self._running.clear()
        for job in lost:
            if self.obs_job.enabled:
                self._emit_job("stop", job, reason="crash")
            job.node_id = None
            job.state = JobState.PENDING
            job.faulting = False
        self._alive = False
        self._recompute()
        return lost

    def recover(self) -> None:
        """Return a crashed node to service (empty, full capacity)."""
        if self._alive:
            raise ValueError(f"node {self.node_id} is not down")
        self._alive = True
        # Dead time belongs to nobody's accounting.
        self._last_update = self._sim.now
        self._recompute()

    def most_memory_intensive_job(self, faulting_only: bool = False
                                  ) -> Optional[Job]:
        """The paper's ``find_most_memory_intensive_job()``: the running
        job with the largest current memory demand (optionally only
        among jobs currently suffering page faults)."""
        self._advance()
        candidates = [job for job in self._running
                      if not faulting_only or job.faulting]
        if not candidates:
            return None
        return max(candidates, key=lambda job: (job.current_demand_mb,
                                                -job.job_id))

    # ------------------------------------------------------------------
    # internal mechanics
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Bring progress and accounting up to the current instant."""
        now = self._sim.now
        if now == self._last_update:
            return
        dt = now - self._last_update
        if dt <= 0:
            return
        self._last_update = now
        speed = self.spec.speed_factor
        for i, job in enumerate(self._running):
            rate = self._rates[i]
            fault_stall = self._fault_stalls[i]
            io_stall = self._io_stalls[i]
            job.progress_s = min(job.cpu_work_s, job.progress_s + rate * dt)
            cpu_part = rate / speed * dt
            page_part = rate * fault_stall * dt
            io_part = rate * io_stall * dt
            job.acct.cpu_s += cpu_part
            job.acct.page_s += page_part
            job.acct.io_s += io_part
            job.acct.queue_s += max(0.0, dt - cpu_part - page_part - io_part)
            self.busy_cpu_s += cpu_part

    def _recompute(self) -> None:
        """Recompute paging state and progress rates; reschedule the
        node's internal event.

        Thrashing has two node-level penalties on top of the per-job
        stalls: kernel CPU burned handling faults (shrinks usable
        capacity for everyone) and paging-disk contention (stall per
        fault inflates as the disk approaches saturation).  Both depend
        on the progress rates, which depend back on them, so a short
        fixed-point iteration resolves the coupling.

        When the recompute inputs match the previous recompute exactly
        (same liveness, same job objects — guaranteed by the key, see
        ``_recompute_key`` — same demands and dedicated flags), only
        obs-invisible state such as job progress has moved: every
        cached aggregate and rate is still exact, so the assessment
        and fixed point are skipped.  The internal event and change
        notification still run — listeners saw the notification
        before this early exit existed, and the next completion
        horizon genuinely moved.
        """
        demands = tuple(job.current_demand_mb for job in self._running)
        key = (self._alive, demands,
               tuple(job.dedicated for job in self._running))
        if key == self._recompute_key:
            self.recompute_skips += 1
            self._schedule_next_event()
            self._notify_changed()
            return
        self._recompute_key = key
        self.recomputes += 1
        self._total_demand_cache = sum(demands)
        self._assessment = self._paging.assess(demands, self.user_memory_mb)
        lambdas = self._assessment.fault_rates_per_cpu_s
        service = self.config.fault_service_s
        overhead_s = self.config.fault_cpu_overhead_ms / 1000.0
        max_inflation = self.config.paging_disk_max_inflation
        speed = self.spec.speed_factor
        tax = self.config.context_switch_tax

        # I/O buffer cache: lives in free memory, reclaimed before
        # anyone pages.  When pressure squeezes it below what the
        # node's I/O-active jobs want, their I/O stalls inflate
        # (uncached I/O costs the configured penalty factor more).
        cache_wanted = sum(job.buffer_cache_mb for job in self._running)
        if cache_wanted > 0:
            free = max(0.0, self.user_memory_mb - self._total_demand_cache)
            cache_hit = min(1.0, free / cache_wanted)
            io_factor = 1.0 + self.config.uncached_io_penalty \
                * (1.0 - cache_hit)
        else:
            io_factor = 1.0
        io_stalls = [job.io_stall_per_cpu_s * io_factor
                     for job in self._running]

        inflation = 1.0
        capacity_factor = 1.0
        rates: list = []
        fault_stalls: list = []
        iterations = 3 if any(lam > 0 for lam in lambdas) else 1
        for _ in range(iterations):
            fault_stalls = [lam * service * inflation for lam in lambdas]
            stalls = [fault + io
                      for fault, io in zip(fault_stalls, io_stalls)]
            rates = self._allocate_rates(speed, tax, stalls,
                                         capacity_factor)
            faults_per_s = sum(r * lam for r, lam in zip(rates, lambdas))
            disk_util = min(0.99, faults_per_s * service)
            new_inflation = min(max_inflation, 1.0 / (1.0 - disk_util))
            new_capacity = max(0.05, 1.0 - faults_per_s * overhead_s)
            if new_inflation == inflation and new_capacity == capacity_factor:
                # Exact fixed point: the next iteration would recompute
                # identical stalls and rates, so the remaining passes
                # are no-ops and the early exit is behavior-identical.
                break
            inflation = new_inflation
            capacity_factor = new_capacity
        self._rates = rates
        self._fault_stalls = fault_stalls
        self._io_stalls = io_stalls
        self._fault_rate_cache = sum(
            rate * lam for rate, lam in zip(rates, lambdas))
        self._starving_cache = any(
            stall >= 1.0 for stall in fault_stalls)
        for job, lam in zip(self._running, lambdas):
            job.faulting = lam > 0.0
        obs = self.obs_fault
        if obs.enabled:
            thrash = self.thrashing
            if thrash != self._was_thrashing:
                self._was_thrashing = thrash
                obs.emit(self._sim.now,
                         "thrash-on" if thrash else "thrash-off",
                         node=self.node_id,
                         fault_rate_per_s=self._fault_rate_cache,
                         jobs=len(self._running))
        if self._state is not None:
            self._sync_row()
        self._schedule_next_event()
        self._notify_changed()

    def _sync_row(self) -> None:
        """Write this node's published state through to its columnar
        row.

        Runs at every externally visible change point (end of a full
        ``_recompute`` and the reserved/inbound setters), immediately
        before listeners are notified, so a batch consumer reading the
        columns sees exactly what the object properties return at the
        same instant.  Float columns hold the property values bit-for-
        bit; the flag bits mirror ``alive``/``reserved``/``thrashing``/
        ``accepting``/``has_starving_job``.
        """
        state = self._state
        i = self.node_id
        alive = self._alive
        idle = (max(0.0, self.user_memory_mb - self._total_demand_cache)
                if alive else 0.0)
        state.total_demand_mb[i] = self._total_demand_cache
        state.idle_memory_mb[i] = idle
        state.fault_rate_per_s[i] = self._fault_rate_cache
        state.num_running[i] = len(self._running)
        state.inbound_jobs[i] = self._inbound_jobs
        bits = 0
        if alive:
            bits = FLAG_ALIVE
            if (self._fault_rate_cache > self.config.fault_rate_threshold
                    or self._starving_cache):
                bits |= FLAG_THRASHING
            if self._starving_cache:
                bits |= FLAG_STARVING
            if (not self._reserved
                    and (len(self._running) + self._inbound_jobs
                         < self.config.cpu_threshold)
                    and idle >= self.config.min_idle_mb):
                bits |= FLAG_ACCEPTING
        if self._reserved:
            bits |= FLAG_RESERVED
        state.flags[i] = bits

    def _allocate_rates(self, speed: float, tax: float, stalls: list,
                        capacity_factor: float) -> list:
        """Water-fill CPU capacity, giving jobs under dedicated service
        (migrated to a reserved workstation) strict priority: they are
        served first, and other jobs share what remains."""
        dedicated = [i for i, job in enumerate(self._running)
                     if job.dedicated]
        if not dedicated:
            return progress_rates(speed, tax, stalls,
                                  capacity_factor=capacity_factor)
        rates = [0.0] * len(self._running)
        others = [i for i in range(len(self._running))
                  if i not in set(dedicated)]
        # Special service, not starvation: while a dedicated job is
        # served, co-resident jobs keep a quarter of the node.
        share = 0.75 if others else 1.0
        priority_rates = progress_rates(
            speed, tax, [stalls[i] for i in dedicated],
            capacity_factor=share * capacity_factor)
        used = 0.0
        for i, rate in zip(dedicated, priority_rates):
            rates[i] = rate
            used += rate / speed
        if others:
            leftover = max(0.05, capacity_factor - used)
            other_rates = progress_rates(
                speed, tax, [stalls[i] for i in others],
                capacity_factor=leftover)
            for i, rate in zip(others, other_rates):
                rates[i] = rate
        return rates

    def _schedule_next_event(self) -> None:
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None
        horizon = None
        for job, rate in zip(self._running, self._rates):
            if rate <= 0:
                continue
            dt_done = job.remaining_work_s / rate
            horizon = dt_done if horizon is None else min(horizon, dt_done)
            boundary = job.memory.next_boundary(job.progress_s)
            if boundary is not None and boundary < job.cpu_work_s:
                dt_phase = (boundary - job.progress_s) / rate
                horizon = min(horizon, dt_phase)
        if horizon is None:
            return
        self._next_event = self._sim.schedule(
            max(0.0, horizon), self._on_internal_event)

    def _on_internal_event(self) -> None:
        self._next_event = None
        self._advance()
        finished = [job for job in self._running
                    if job.remaining_work_s <= _EPS]
        for job in finished:
            self._running.remove(job)
            job.progress_s = job.cpu_work_s
            job.state = JobState.FINISHED
            job.node_id = None
            job.finish_time = self._sim.now
            self.completed_jobs += 1
            if self.obs_job.enabled:
                self._emit_job("finish", job)
        self._recompute()
        if self.on_job_finished is not None:
            for job in finished:
                self.on_job_finished(job, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Workstation {self.node_id} jobs={self.num_running}"
                f" idle={self.idle_memory_mb:.0f}MB"
                f" reserved={self.reserved}>")
