"""Configuration for simulated clusters.

Defaults follow the paper's §3.3.1 simulation parameters:

* 32 homogeneous workstations per cluster;
* cluster 1 (SPEC workloads): 400 MHz CPUs, 384 MB memory, 380 MB swap;
* cluster 2 (application workloads): 233 MHz CPUs, 128 MB memory,
  128 MB swap;
* 4 KB pages, 10 ms page-fault service time, 0.1 ms context switch;
* 10 Mbps Ethernet, 0.1 s remote submission/execution cost ``r``,
  preemptive migration cost ``r + D/B``.

Parameters the paper leaves implicit (CPU threshold, fault detection
threshold, load-exchange period, the paging-competition parameters of
the substituted fault model) are exposed here with documented defaults
and are swept by the ablation benchmarks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.faults.config import FaultConfig


@dataclass(frozen=True)
class WorkstationSpec:
    """Static description of one workstation.

    ``speed_factor`` expresses CPU speed relative to the machine the
    workload traces were profiled on; the paper's clusters are
    homogeneous with nodes identical to the profiling machine, so the
    factor is 1.0 unless a heterogeneous cluster is configured.
    """

    cpu_mhz: int = 400
    memory_mb: float = 384.0
    swap_mb: float = 380.0
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if self.swap_mb < 0:
            raise ValueError("swap_mb must be non-negative")
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")


@dataclass
class ClusterConfig:
    """Full parameter set of a simulated cluster experiment."""

    # --- topology ----------------------------------------------------
    num_nodes: int = 32
    spec: WorkstationSpec = field(default_factory=WorkstationSpec)
    #: Optional per-node overrides for heterogeneous clusters,
    #: mapping node id -> WorkstationSpec.
    node_overrides: dict = field(default_factory=dict)

    # --- OS-level constants (paper §3.3.1) ----------------------------
    page_size_kb: float = 4.0
    page_fault_service_ms: float = 10.0
    context_switch_ms: float = 0.1
    #: Round-robin quantum used to convert the context-switch time into
    #: a capacity tax (Linux 2.2-era default time slice).
    quantum_ms: float = 100.0
    #: Memory reserved for the kernel and daemons; user space is
    #: ``memory_mb - kernel_reserved_mb``.
    kernel_reserved_mb: float = 8.0

    # --- network (paper §3.3.1) ---------------------------------------
    network_bandwidth_mbps: float = 10.0
    remote_submission_cost_s: float = 0.1
    #: When True, migrations contend for the shared link (FIFO);
    #: the paper's additive cost model corresponds to False.
    network_contention: bool = False

    # --- load sharing thresholds ([3]) ---------------------------------
    #: Maximum number of job slots a CPU is willing to take.  Kept
    #: small, as in multiprogrammed workstation clusters of the era:
    #: the CPU threshold "sets a reasonable queuing delay time for
    #: jobs in each workstation" (§1).
    cpu_threshold: int = 4
    #: A node is a submission candidate only while it has idle memory
    #: space ([3]).  Demands are unknown at submission time, so the
    #: floor is a token amount — blind overpacking (and the thrashing
    #: it causes when demands grow) is intrinsic to the problem the
    #: paper studies.
    min_idle_mb: float = 4.0
    #: Total memory demand admitted on a node, as a multiple of user
    #: memory ("memory threshold": oversized only to a certain degree).
    memory_threshold_factor: float = 1.5
    #: Aggregate page-fault rate (faults/s) above which a node is
    #: considered to be thrashing and migration is attempted.  Mild
    #: paging is tolerated; the threshold marks real thrashing.
    fault_rate_threshold: float = 25.0

    # --- substituted paging model (DESIGN.md §4) -----------------------
    #: Competition bias alpha: resident shares go as demand**alpha.
    #: Small alpha reproduces the starvation the paper relies on
    #: (§2.2, citing the authors' TPF study [6]): under global page
    #: replacement, small jobs keep their working sets resident while
    #: the large job is squeezed into whatever memory is left.
    residency_alpha: float = 0.2
    #: Faults per CPU-second for a fully non-resident working set.
    max_fault_rate_per_cpu_s: float = 1000.0
    #: Thrashing-cliff exponent (Denning): fault rate goes as
    #: ``missing_fraction ** exponent`` — mild oversubscription is
    #: nearly free, deep residency loss is catastrophic.
    fault_curve_exponent: float = 1.5
    #: CPU consumed by the kernel per page fault (fault handler, I/O
    #: setup, TLB/cache pollution) — this is what makes a thrashing
    #: node slow down *everyone* on it, the phenomenon behind the
    #: paper's blocking problem.
    fault_cpu_overhead_ms: float = 1.0
    #: The paging disk serves one fault at a time; as its utilization
    #: approaches 1 the effective stall per fault inflates queue-style,
    #: up to this multiplier (co-located thrashing jobs punish each
    #: other).
    paging_disk_max_inflation: float = 10.0
    #: Uncached I/O penalty: when memory pressure reclaims the I/O
    #: buffer cache below what the node's I/O-active jobs want, their
    #: I/O stalls inflate by up to this factor (paper §3.1 monitors
    #: the buffer cache status per workstation).
    uncached_io_penalty: float = 2.0
    #: Optional network-RAM extension: remote-memory fault service time
    #: (ms) used instead of disk when enabled (paper §2.3 mentions [12]).
    network_ram: bool = False
    network_ram_service_ms: float = 1.0

    # --- implementation switches ---------------------------------------
    #: Use the incrementally maintained candidate index (load
    #: directory orders + thrashing-set monitor) on the scheduling hot
    #: path.  ``False`` falls back to the seed snapshot-rebuild-and-
    #: sort selection and the all-nodes monitor scan — behaviorally
    #: identical (pinned by tests) but O(N log N) per decision; kept
    #: for the equivalence suite and the scale benchmark.
    indexed_selection: bool = True
    #: Keep the cluster's hot per-node state additionally in the
    #: columnar :class:`~repro.cluster.state.ClusterState` layer
    #: (struct-of-arrays), which batch consumers — metrics collector,
    #: obs sampler, load directory, cluster-wide queries — read
    #: instead of walking ``Workstation`` objects.  ``False`` builds
    #: no state object and every consumer falls back to the
    #: per-object path; both paths are pinned byte-identical by the
    #: columnar-equivalence tests.
    columnar: bool = True

    # --- domain sharding (DESIGN.md §4) --------------------------------
    #: Number of load-information domains the cluster is partitioned
    #: into (contiguous node-id slices).  ``1`` (the default) keeps the
    #: single flat :class:`~repro.cluster.loadinfo.LoadInfoDirectory`
    #: exactly as before — byte-identical by construction.  ``K > 1``
    #: builds a :class:`~repro.cluster.domains.DomainDirectory`: one
    #: directory shard per domain (exchange rounds over N/K nodes) plus
    #: compact per-domain summaries exchanged on the slower period
    #: below, so scheduling becomes two-level — pick a domain from
    #: summaries, then a node from that domain's shard.
    domains: int = 1
    #: Inter-domain summary exchange period (s); the explicit staleness
    #: knob of the domain layer.  Summaries are refreshed this often
    #: (0 = recomputed fresh on every access), independently of the
    #: faster intra-domain ``load_exchange_interval_s``.
    domain_exchange_interval_s: float = 5.0

    # --- fault injection -----------------------------------------------
    #: Failure model of the run (see :mod:`repro.faults`); ``None``
    #: (the default) runs fault-free and byte-identical to a build
    #: without the fault subsystem — a property pinned by tests.
    faults: Optional[FaultConfig] = None

    # --- periodic activities -------------------------------------------
    #: Load index collection/distribution period (s); 0 = always fresh.
    load_exchange_interval_s: float = 1.0
    #: Scheduler monitoring period for overload/blocking detection (s).
    monitor_interval_s: float = 1.0
    #: Metrics sampling period (s); the paper samples every second.
    sample_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.cpu_threshold <= 0:
            raise ValueError("cpu_threshold must be positive")
        if not 0 < self.residency_alpha <= 1:
            raise ValueError("residency_alpha must be in (0, 1]")
        if self.memory_threshold_factor < 1:
            raise ValueError("memory_threshold_factor must be >= 1")
        if self.domains < 1:
            raise ValueError("domains must be >= 1")
        if self.domains > self.num_nodes:
            raise ValueError(
                f"domains ({self.domains}) cannot exceed num_nodes "
                f"({self.num_nodes})")
        if self.domain_exchange_interval_s < 0:
            raise ValueError("domain_exchange_interval_s must be >= 0")
        if self.domains > 1 and not self.indexed_selection:
            raise ValueError(
                "domains > 1 requires indexed_selection=True: the "
                "domained directory drives the maintained candidate "
                "orders; the seed snapshot-sort path is flat-only")

    # ------------------------------------------------------------------
    def spec_for(self, node_id: int) -> WorkstationSpec:
        """Spec for ``node_id``, honouring heterogeneous overrides."""
        return self.node_overrides.get(node_id, self.spec)

    def user_memory_mb(self, spec: WorkstationSpec) -> float:
        """User-space memory of a node (total minus kernel reserve)."""
        return max(0.0, spec.memory_mb - self.kernel_reserved_mb)

    @property
    def fault_service_s(self) -> float:
        """Effective per-fault service time in seconds."""
        ms = (self.network_ram_service_ms if self.network_ram
              else self.page_fault_service_ms)
        return ms / 1000.0

    @property
    def context_switch_tax(self) -> float:
        """Fraction of CPU capacity lost to context switches when
        more than one job shares the CPU."""
        quantum = self.quantum_ms
        return self.context_switch_ms / (quantum + self.context_switch_ms)

    def replace(self, **changes) -> "ClusterConfig":
        """Return a copy of this config with ``changes`` applied.

        ``node_overrides`` is copied, not shared: mutating the copy's
        overrides (heterogeneous setups) must never leak into the
        original — in particular not into the module-level
        ``SPEC_CLUSTER``/``APP_CLUSTER`` defaults.
        """
        changes.setdefault("node_overrides", dict(self.node_overrides))
        return dataclasses.replace(self, **changes)


#: Paper cluster 1 (runs workload group 1, the SPEC 2000 programs).
#: Note on bandwidth: the paper evaluates with 10 Mbps Ethernet and
#: job lifetimes of minutes to ~45 minutes, so a working-set transfer
#: costs a few percent of a job's life.  Our reconstructed lifetimes
#: are compressed to keep the published job counts feasible on the
#: published trace durations, so the bandwidth is scaled to 100 Mbps
#: to preserve the paper's migration-cost-to-lifetime ratio (the
#: network-speed ablation sweeps this back down).
SPEC_CLUSTER = ClusterConfig(
    spec=WorkstationSpec(cpu_mhz=400, memory_mb=384.0, swap_mb=380.0),
    network_bandwidth_mbps=100.0)

#: Paper cluster 2 (runs workload group 2, the application programs).
APP_CLUSTER = ClusterConfig(
    spec=WorkstationSpec(cpu_mhz=233, memory_mb=128.0, swap_mb=128.0),
    network_bandwidth_mbps=100.0)
