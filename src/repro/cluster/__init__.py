"""Cluster substrate: workstations, memory, network, load information.

This package models the simulated 32-workstation clusters of the paper
(§3.3.1): round-robin CPU scheduling inside each workstation, a paging
model for memory oversubscription, Ethernet migration costs, and the
periodically exchanged global load index.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.config import (
    APP_CLUSTER,
    SPEC_CLUSTER,
    ClusterConfig,
    WorkstationSpec,
)
from repro.cluster.job import Job, JobState, MemoryProfile, Phase
from repro.cluster.loadinfo import LoadInfoDirectory, NodeSnapshot
from repro.cluster.memory import PagingModel
from repro.cluster.network import Network
from repro.cluster.workstation import Workstation

__all__ = [
    "APP_CLUSTER",
    "Cluster",
    "ClusterConfig",
    "Job",
    "JobState",
    "LoadInfoDirectory",
    "MemoryProfile",
    "Network",
    "NodeSnapshot",
    "PagingModel",
    "Phase",
    "SPEC_CLUSTER",
    "Workstation",
    "WorkstationSpec",
]
