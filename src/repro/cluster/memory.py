"""Paging model: competition-biased residency and fault rates.

The paper generates page faults from an "experiment-based model
presented in [3]" which is not available; DESIGN.md §4 documents the
substitution implemented here.

On a node with user memory ``U`` and running jobs with current demands
``d_i``:

* if ``sum(d_i) <= U`` nobody faults (cold misses are ignored, as in
  the paper's dedicated-environment profiling);
* otherwise resident sets are allocated proportionally to
  ``d_i ** alpha`` with ``alpha < 1`` and capped at ``d_i``.  Smaller
  jobs therefore keep a *larger fraction* of their working set
  resident, reproducing the paper's §2.2 observation that jobs with
  large memory demands are less competitive under global page
  replacement in Unix/Linux;
* job *i* faults at ``lambda_i = K * (1 - resident_i / d_i)`` faults
  per CPU-second, each fault stalling for the configured service time
  (10 ms disk, or ~1 ms with the optional network-RAM extension).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class PagingAssessment:
    """Paging state of one node at one instant."""

    resident_mb: List[float]
    fault_rates_per_cpu_s: List[float]   # lambda_i
    stall_per_work_s: List[float]        # lambda_i * fault_service_s
    total_demand_mb: float
    user_memory_mb: float

    @property
    def oversubscribed(self) -> bool:
        return self.total_demand_mb > self.user_memory_mb + 1e-9


class PagingModel:
    """Computes residency and fault rates for a set of job demands."""

    def __init__(self, alpha: float = 0.5,
                 max_fault_rate_per_cpu_s: float = 400.0,
                 fault_service_s: float = 0.010,
                 curve_exponent: float = 1.0):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if max_fault_rate_per_cpu_s < 0:
            raise ValueError("max_fault_rate_per_cpu_s must be >= 0")
        if fault_service_s <= 0:
            raise ValueError("fault_service_s must be positive")
        if curve_exponent < 1:
            raise ValueError("curve_exponent must be >= 1")
        self.alpha = alpha
        self.max_fault_rate = max_fault_rate_per_cpu_s
        self.fault_service_s = fault_service_s
        #: Exact memoization of :meth:`assess` keyed on the demand
        #: vector and memory size: the assessment is a pure function of
        #: its arguments and the (immutable-by-convention) model
        #: parameters, so repeated node states skip the residency
        #: water-filling entirely.  Bounded LRU; see ``assess``.
        self._assess_cache: "OrderedDict[Tuple[Tuple[float, ...], float], PagingAssessment]" = OrderedDict()
        self._assess_cache_max = 4096
        #: Idle-node fast path: every recompute of an empty node asks
        #: for the (no demands, U) assessment, so those skip the LRU
        #: bookkeeping entirely — one dict probe keyed on memory size.
        self._empty_assessments: Dict[float, PagingAssessment] = {}
        self.assess_hits = 0
        self.assess_misses = 0
        #: Thrashing-cliff exponent: the fault rate goes as
        #: ``missing_fraction ** curve_exponent``.  Working-set theory
        #: (Denning) says losing a few percent of the resident set
        #: costs little while deep residency loss is catastrophic —
        #: an exponent above 1 reproduces that knee.
        self.curve_exponent = curve_exponent

    # ------------------------------------------------------------------
    def residency(self, demands: Sequence[float],
                  user_memory_mb: float) -> List[float]:
        """Resident set sizes under biased proportional allocation.

        Shares go as ``demand ** alpha``; a job never holds more than
        its demand, and freed share from capped jobs is redistributed
        to the others (iteratively, like water-filling).
        """
        n = len(demands)
        if n == 0:
            return []
        for d in demands:
            if d < 0:
                raise ValueError("demands must be non-negative")
        total = sum(demands)
        if total <= user_memory_mb:
            return list(demands)
        resident = [0.0] * n
        budget = user_memory_mb
        active = [i for i in range(n) if demands[i] > 0]
        while active and budget > 1e-12:
            weights = [demands[i] ** self.alpha for i in active]
            weight_sum = sum(weights)
            shares = {i: budget * w / weight_sum
                      for i, w in zip(active, weights)}
            capped = [i for i in active
                      if demands[i] - resident[i] <= shares[i]]
            if not capped:
                for i in active:
                    resident[i] += shares[i]
                budget = 0.0
                break
            for i in capped:
                budget -= demands[i] - resident[i]
                resident[i] = demands[i]
            capped_set = set(capped)
            active = [i for i in active if i not in capped_set]
        return resident

    def assess(self, demands: Sequence[float],
               user_memory_mb: float) -> PagingAssessment:
        """Full paging assessment for one node.

        Results are memoized on ``(tuple(demands), user_memory_mb)``
        with a bounded LRU, so a cache hit returns the *same*
        :class:`PagingAssessment` object: callers must treat the
        assessment (including its lists) as immutable.
        """
        if not demands:
            cached = self._empty_assessments.get(user_memory_mb)
            if cached is not None:
                self.assess_hits += 1
                return cached
            self.assess_misses += 1
            assessment = self._assess_uncached((), user_memory_mb)
            self._empty_assessments[user_memory_mb] = assessment
            return assessment
        key = (tuple(demands), user_memory_mb)
        cache = self._assess_cache
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
            self.assess_hits += 1
            return cached
        self.assess_misses += 1
        assessment = self._assess_uncached(key[0], user_memory_mb)
        cache[key] = assessment
        if len(cache) > self._assess_cache_max:
            cache.popitem(last=False)
        return assessment

    def _assess_uncached(self, demands: Sequence[float],
                         user_memory_mb: float) -> PagingAssessment:
        resident = self.residency(demands, user_memory_mb)
        rates: List[float] = []
        stalls: List[float] = []
        for demand, res in zip(demands, resident):
            if demand <= 0:
                rates.append(0.0)
                stalls.append(0.0)
                continue
            missing_fraction = max(0.0, 1.0 - res / demand)
            rate = (self.max_fault_rate
                    * missing_fraction ** self.curve_exponent)
            rates.append(rate)
            stalls.append(rate * self.fault_service_s)
        return PagingAssessment(
            resident_mb=resident,
            fault_rates_per_cpu_s=rates,
            stall_per_work_s=stalls,
            total_demand_mb=float(sum(demands)),
            user_memory_mb=float(user_memory_mb),
        )
