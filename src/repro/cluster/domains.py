"""Sharded load-information domains.

At production scale a single global :class:`LoadInfoDirectory` stops
being realistic: every exchange round is O(cluster) and every
blocking/reservation decision becomes a cluster-wide scan.  Real
systems shard or gossip.  This module partitions the cluster into
``K`` *domains* — contiguous node-id slices — each owning a private
directory shard that runs the existing dirty-node exchange and
candidate indexes over ``N/K`` nodes.

Across domains only a compact :class:`DomainSummary` travels (total
idle memory, accepting count, least-loaded key, thrashing count),
exchanged on a separate, typically *slower* period
(``ClusterConfig.domain_exchange_interval_s``), so inter-domain
staleness is an explicit modeled knob, independent of the fast
intra-domain ``load_exchange_interval_s``.

Placement becomes two-level: schedulers first rank domains from the
summaries (local domain always first), then pick a node inside the
chosen domain's shard.  Blocking detection and reservation work the
same way — per-domain scans with cross-domain escalation when the
local domain is memory-exhausted.

:class:`DomainDirectory` is a drop-in facade over the shards: it
exposes the same surface the scheduling/faults layers consume from
the flat directory (``snapshots``/``snapshot``/``accepting_ids``/
``load_order_ids``/``least_num_jobs``/``order_version``/``evict``/
``readmit``/``fault_hook``), plus the domain-level API
(``summaries``/``domain_of``/``domain_bounds``/
``ranked_remote_domains``).  ``ClusterConfig.domains == 1`` does not
build this class at all — the flat directory is constructed
unchanged, so the default path stays byte-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.cluster.loadinfo import LoadInfoDirectory, NodeSnapshot
from repro.cluster.state import ClusterState
from repro.obs.bus import NULL_CHANNEL, Channel
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.workstation import Workstation


@dataclass(frozen=True)
class DomainSummary:
    """Compact cross-domain view of one domain's *published* state.

    Aggregated from the owning shard's snapshot store, not from live
    nodes — a summary is at best as fresh as the shard's own exchange,
    and between summary rounds remote domains see it staler still.
    """

    domain_id: int
    #: Total idle memory over the shard's live published snapshots.
    idle_memory_mb: float
    #: Nodes currently in the shard's accepting order.
    accepting_count: int
    #: Smallest published job count in the domain.
    least_num_jobs: int
    #: Live nodes whose published view shows them thrashing.
    thrashing_count: int
    #: Instant the summary was computed (== the summary round time).
    timestamp: float

    def _data(self) -> tuple:
        """Comparison key: everything but the timestamp, so unchanged
        domains do not bump the version just by being re-stamped."""
        return (self.idle_memory_mb, self.accepting_count,
                self.least_num_jobs, self.thrashing_count)


class DomainDirectory:
    """K per-domain :class:`LoadInfoDirectory` shards plus summaries.

    The shards are constructed ``managed=True``: this directory drives
    one exchange tick per round for all of them (instead of K
    self-scheduled ticks) and one summary tick on the slower period.
    """

    def __init__(self, sim: Simulator, nodes: List["Workstation"],
                 num_domains: int,
                 exchange_interval_s: float = 1.0,
                 summary_interval_s: float = 5.0,
                 incremental: bool = True,
                 obs: Optional[Channel] = None,
                 obs_domain: Optional[Channel] = None,
                 state: Optional[ClusterState] = None):
        if num_domains < 1:
            raise ValueError("num_domains must be >= 1")
        if num_domains > len(nodes):
            raise ValueError("num_domains cannot exceed the node count")
        if summary_interval_s < 0:
            raise ValueError("summary_interval_s must be >= 0")
        self._sim = sim
        self._nodes = nodes
        self.num_domains = num_domains
        self.exchange_interval_s = exchange_interval_s
        self.summary_interval_s = summary_interval_s
        self.incremental = incremental
        self.obs = obs if obs is not None else NULL_CHANNEL
        #: ``loadinfo.domain`` obs channel (summary rounds).
        self.obs_domain = (obs_domain if obs_domain is not None
                          else NULL_CHANNEL)
        n = len(nodes)
        #: Contiguous slice [lo, hi) of node ids per domain.
        self._bounds: List[Tuple[int, int]] = [
            (d * n // num_domains, (d + 1) * n // num_domains)
            for d in range(num_domains)]
        self._domain_of: List[int] = [0] * n
        for d, (lo, hi) in enumerate(self._bounds):
            for node_id in range(lo, hi):
                self._domain_of[node_id] = d
        self._fault_hook = None
        self._shards: List[LoadInfoDirectory] = [
            LoadInfoDirectory(sim, nodes[lo:hi],
                              exchange_interval_s=exchange_interval_s,
                              incremental=incremental, obs=self.obs,
                              state=state, managed=True)
            for lo, hi in self._bounds]
        #: Summary exchange rounds completed.
        self.summary_rounds = 0
        self._summary_version = 0
        self._summaries: List[DomainSummary] = []
        self._refresh_summaries(emit=False)
        #: Concatenated candidate views keyed by local domain; each
        #: entry is ``(order_version_at_build, ids)``.
        self._accepting_cache: Dict[Optional[int],
                                    Tuple[int, List[int]]] = {}
        self._load_cache: Dict[Optional[int], Tuple[int, List[int]]] = {}
        if exchange_interval_s > 0:
            self._schedule_exchange()
        if summary_interval_s > 0:
            self._schedule_summary()

    # ------------------------------------------------------------------
    # periodic activities
    # ------------------------------------------------------------------
    def _schedule_exchange(self) -> None:
        self._sim.schedule(self.exchange_interval_s, self._exchange_tick,
                           priority=2, daemon=True)

    def _exchange_tick(self) -> None:
        # A shard with no dirty nodes would no-op its refresh; skip
        # the call entirely — K no-op calls per round add up at 10k
        # nodes.  (Unpopulated or non-incremental shards always run.)
        for shard in self._shards:
            if shard._dirty or not shard._snapshots or not shard.incremental:
                shard.refresh()
        self._schedule_exchange()

    def _schedule_summary(self) -> None:
        self._sim.schedule(self.summary_interval_s, self._summary_tick,
                           priority=2, daemon=True)

    def _summary_tick(self) -> None:
        self._refresh_summaries(emit=True)
        self._schedule_summary()

    def _refresh_summaries(self, emit: bool) -> int:
        """Recompute all K summaries from the shards' published
        aggregates (O(1) per shard); bump the version only if any
        domain's data actually changed.

        An unchanged domain keeps its previous summary object — and
        its previous timestamp, which is when its data was really
        computed — so steady-state rounds build nothing.
        """
        now = self._sim.now
        old = self._summaries
        changed = 0
        fresh = []
        for d, shard in enumerate(self._shards):
            data = (shard.published_idle_mb(), shard.accepting_count(),
                    shard.least_num_jobs(), shard.thrashing_count())
            if old and old[d]._data() == data:
                fresh.append(old[d])
                continue
            changed += 1
            fresh.append(DomainSummary(
                domain_id=d,
                idle_memory_mb=data[0],
                accepting_count=data[1],
                least_num_jobs=data[2],
                thrashing_count=data[3],
                timestamp=now))
        self._summaries = fresh
        self.summary_rounds += 1
        if changed:
            self._summary_version += 1
        obs = self.obs_domain
        if emit and obs.enabled:
            obs.emit(now, "summary", round=self.summary_rounds,
                     changed=changed, domains=self.num_domains,
                     idle_mb=sum(s.idle_memory_mb for s in fresh),
                     accepting=sum(s.accepting_count for s in fresh),
                     thrashing=sum(s.thrashing_count for s in fresh))
        return changed

    # ------------------------------------------------------------------
    # domain-level API
    # ------------------------------------------------------------------
    def summaries(self) -> List[DomainSummary]:
        """Current inter-domain summaries, by domain id.  A period of
        0 disables summary staleness: every read recomputes."""
        if self.summary_interval_s == 0:
            self._refresh_summaries(emit=False)
        return self._summaries

    def domain_of(self, node_id: int) -> int:
        """Domain owning ``node_id``."""
        return self._domain_of[node_id]

    def domain_bounds(self, domain: int) -> Tuple[int, int]:
        """Contiguous node-id slice ``[lo, hi)`` of ``domain``."""
        return self._bounds[domain]

    def shard(self, domain: int) -> LoadInfoDirectory:
        """The per-domain directory shard."""
        return self._shards[domain]

    def ranked_remote_domains(self, local_domain: Optional[int]
                              ) -> List[int]:
        """Remote domains ordered most-promising first by summary idle
        memory (ties to the lower id) — the escalation order for
        reservation and blocking-destination searches."""
        summaries = self.summaries()
        remote = [d for d in range(self.num_domains) if d != local_domain]
        remote.sort(key=lambda d: (-summaries[d].idle_memory_mb, d))
        return remote

    # ------------------------------------------------------------------
    # flat-directory facade (scheduling / faults layers)
    # ------------------------------------------------------------------
    @property
    def order_version(self) -> int:
        """Monotone version over every shard order plus the summary
        ranking; schedulers key cached candidate views on it."""
        return (sum(shard.order_version for shard in self._shards)
                + self._summary_version)

    @property
    def refreshes(self) -> int:
        """Total shard exchange refreshes (shards with nothing dirty
        are skipped, so this counts performed rounds, not K x ticks)."""
        return sum(shard.refreshes for shard in self._shards)

    @property
    def fault_hook(self):
        """Lossy-exchange hook, fanned out to every shard."""
        return self._fault_hook

    @fault_hook.setter
    def fault_hook(self, hook) -> None:
        self._fault_hook = hook
        for shard in self._shards:
            shard.fault_hook = hook

    def refresh(self) -> None:
        """One exchange round across all shards (tests/manual use)."""
        for shard in self._shards:
            shard.refresh()

    def accepting_ids(self, local_domain: Optional[int] = None
                      ) -> List[int]:
        """Accepting node ids, two-level ordered: the local domain's
        shard order first, then remote domains ranked by summary
        ``(-idle_memory_mb, -accepting_count, domain_id)`` — each
        remote domain's own shard order inside.

        A remote domain whose (possibly stale) summary advertises zero
        accepting nodes is skipped entirely: that is the modeled cost
        of staleness.  With no local domain every domain is included.
        """
        cached = self._accepting_cache.get(local_domain)
        if cached is not None and cached[0] == self.order_version:
            return cached[1]
        summaries = self.summaries()
        ids: List[int] = []
        if local_domain is not None:
            ids.extend(self._shards[local_domain].accepting_ids())
        remote = [d for d in range(self.num_domains) if d != local_domain]
        remote.sort(key=lambda d: (-summaries[d].idle_memory_mb,
                                   -summaries[d].accepting_count, d))
        for d in remote:
            if local_domain is not None and summaries[d].accepting_count == 0:
                continue
            ids.extend(self._shards[d].accepting_ids())
        self._accepting_cache[local_domain] = (self.order_version, ids)
        return ids

    def load_order_ids(self, local_domain: Optional[int] = None
                       ) -> List[int]:
        """Live node ids, local domain's load order first, then remote
        domains ranked by summary ``(least_num_jobs, domain_id)``."""
        cached = self._load_cache.get(local_domain)
        if cached is not None and cached[0] == self.order_version:
            return cached[1]
        summaries = self.summaries()
        ids: List[int] = []
        if local_domain is not None:
            ids.extend(self._shards[local_domain].load_order_ids())
        remote = [d for d in range(self.num_domains) if d != local_domain]
        remote.sort(key=lambda d: (summaries[d].least_num_jobs, d))
        for d in remote:
            ids.extend(self._shards[d].load_order_ids())
        self._load_cache[local_domain] = (self.order_version, ids)
        return ids

    def least_num_jobs(self, domain: Optional[int] = None) -> int:
        """Smallest published job count — in one domain's shard, or
        across the whole cluster when ``domain`` is None."""
        if domain is not None:
            return self._shards[domain].least_num_jobs()
        best = None
        for shard in self._shards:
            if shard._load_order is None:
                shard.load_order_ids()  # activate the order lazily
            entries = shard._load_order.entries
            if entries and (best is None or entries[0][0] < best):
                best = entries[0][0]
        return 0 if best is None else best

    def evict(self, node_id: int) -> None:
        """Remove a crashed node from its owning shard's orders."""
        self._shards[self._domain_of[node_id]].evict(node_id)

    def readmit(self, node_id: int) -> None:
        """Put a recovered node back into its owning shard's orders."""
        self._shards[self._domain_of[node_id]].readmit(node_id)

    def snapshot(self, node_id: int) -> NodeSnapshot:
        """The owning shard's current view of ``node_id``."""
        return self._shards[self._domain_of[node_id]].snapshot(node_id)

    def snapshots(self) -> List[NodeSnapshot]:
        """Views of all nodes, ordered by node id (shards are
        contiguous ascending slices, so concatenation is sorted)."""
        snaps: List[NodeSnapshot] = []
        for shard in self._shards:
            snaps.extend(shard.snapshots())
        return snaps
