"""Job model: work, time-varying memory demand, lifetime accounting.

A job is described by its total CPU work (its measured lifetime in a
dedicated environment, per the paper's tracing methodology in §3.1) and
a *memory profile*: a piecewise-constant memory demand as a function of
CPU progress.  Tying demand to progress rather than wall time mirrors
program behaviour — a slowed-down job reaches its memory-hungry phase
later.

Accounting follows the paper's §5 decomposition exactly::

    t_exe(i) = t_cpu(i) + t_page(i) + t_que(i) + t_mig(i)

with an extra ``t_io`` bucket for the I/O-active programs of workload
group 2 (folded into ``t_page``-style stalls by the workstation model)
and ``t_pending`` tracking the share of ``t_que`` spent waiting for a
placement (diagnostics only).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


class JobState(enum.Enum):
    """Lifecycle of a job inside the cluster."""

    PENDING = "pending"        # submitted, waiting for a placement
    RUNNING = "running"        # executing on a workstation
    MIGRATING = "migrating"    # frozen, image in transit
    SUSPENDED = "suspended"    # explicitly suspended by a policy
    FINISHED = "finished"


@dataclass(frozen=True)
class Phase:
    """One piecewise-constant segment of a memory profile.

    ``start_progress`` is the CPU progress (in seconds of work) at
    which the segment begins; it ends where the next segment starts.
    """

    start_progress: float
    demand_mb: float

    def __post_init__(self) -> None:
        if self.start_progress < 0:
            raise ValueError("start_progress must be non-negative")
        if self.demand_mb < 0:
            raise ValueError("demand_mb must be non-negative")


class MemoryProfile:
    """Piecewise-constant memory demand as a function of CPU progress."""

    def __init__(self, phases: Sequence[Phase]):
        if not phases:
            raise ValueError("a memory profile needs at least one phase")
        starts = [p.start_progress for p in phases]
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ValueError("phases must have strictly increasing starts")
        if phases[0].start_progress != 0.0:
            raise ValueError("first phase must start at progress 0")
        self._phases: Tuple[Phase, ...] = tuple(phases)

    @classmethod
    def constant(cls, demand_mb: float) -> "MemoryProfile":
        """A profile with a single flat demand."""
        return cls([Phase(0.0, demand_mb)])

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[float, float]]
                   ) -> "MemoryProfile":
        """Build from ``(start_progress, demand_mb)`` pairs."""
        return cls([Phase(s, d) for s, d in pairs])

    @property
    def phases(self) -> Tuple[Phase, ...]:
        return self._phases

    @property
    def peak_demand_mb(self) -> float:
        """Maximum demand over the whole profile (the working set of
        the paper's Tables 1 and 2)."""
        return max(p.demand_mb for p in self._phases)

    #: Progress comparisons tolerate this much float error so that a
    #: job advanced exactly onto a boundary is counted as past it.
    _TOL = 1e-9

    def demand_at(self, progress: float) -> float:
        """Memory demand (MB) at a given CPU progress."""
        demand = self._phases[0].demand_mb
        for phase in self._phases:
            if phase.start_progress > progress + self._TOL:
                break
            demand = phase.demand_mb
        return demand

    def next_boundary(self, progress: float) -> Optional[float]:
        """The next phase start strictly after ``progress``, if any."""
        for phase in self._phases:
            if phase.start_progress > progress + self._TOL:
                return phase.start_progress
        return None


@dataclass
class JobAccounting:
    """Wall-clock decomposition of a job's execution (paper §5)."""

    cpu_s: float = 0.0        # time actually receiving CPU service
    page_s: float = 0.0       # page-fault stall time
    io_s: float = 0.0         # I/O stall time
    queue_s: float = 0.0      # runnable/pending but not served
    migration_s: float = 0.0  # frozen during migration / remote submit
    pending_s: float = 0.0    # subset of queue_s spent unplaced

    @property
    def wall_s(self) -> float:
        """Total accounted wall-clock time."""
        return (self.cpu_s + self.page_s + self.io_s + self.queue_s
                + self.migration_s)


_job_counter = itertools.count()


@dataclass
class Job:
    """One schedulable job instance in a trace."""

    program: str
    cpu_work_s: float
    memory: MemoryProfile
    submit_time: float = 0.0
    home_node: int = 0
    #: Extra wall-clock stall per CPU-second of work due to I/O
    #: (workload group 2 contains I/O-active programs).
    io_stall_per_cpu_s: float = 0.0
    #: Buffer cache the job's I/O wants (MB).  The cache lives in the
    #: node's free memory and is reclaimed before anyone pages, so it
    #: never causes faults — but when memory pressure squeezes it the
    #: job's I/O stalls inflate (uncached I/O).  The paper's tracing
    #: facility monitors exactly this (§3.1: "the status of I/O buffer
    #: cache in each workstation").
    buffer_cache_mb: float = 0.0
    job_id: int = field(default_factory=lambda: next(_job_counter))

    # --- runtime state (owned by the cluster model) --------------------
    state: JobState = JobState.PENDING
    node_id: Optional[int] = None
    progress_s: float = 0.0
    finish_time: Optional[float] = None
    migrations: int = 0
    remote_submissions: int = 0
    #: True while the paging model attributes a non-zero fault rate.
    faulting: bool = False
    #: Receives dedicated service on a reserved workstation: strict
    #: CPU priority over co-resident jobs (paper §2.1: reserved
    #: workstations "provide special services to the jobs demanding
    #: large memory allocations").
    dedicated: bool = False
    acct: JobAccounting = field(default_factory=JobAccounting)

    def __post_init__(self) -> None:
        if self.cpu_work_s <= 0:
            raise ValueError("cpu_work_s must be positive")
        if self.io_stall_per_cpu_s < 0:
            raise ValueError("io_stall_per_cpu_s must be non-negative")

    # ------------------------------------------------------------------
    @property
    def remaining_work_s(self) -> float:
        return max(0.0, self.cpu_work_s - self.progress_s)

    @property
    def finished(self) -> bool:
        return self.state is JobState.FINISHED

    @property
    def current_demand_mb(self) -> float:
        """Memory demand at the current execution point."""
        return self.memory.demand_at(self.progress_s)

    @property
    def peak_demand_mb(self) -> float:
        return self.memory.peak_demand_mb

    def slowdown(self) -> float:
        """Wall-clock execution time over dedicated CPU execution time
        (the paper's primary metric, §4)."""
        if self.finish_time is None:
            raise ValueError(f"job {self.job_id} has not finished")
        wall = self.finish_time - self.submit_time
        return wall / self.cpu_work_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Job {self.job_id} {self.program} state={self.state.value}"
                f" node={self.node_id} progress={self.progress_s:.1f}"
                f"/{self.cpu_work_s:.1f}s demand={self.current_demand_mb:.0f}MB>")


def total_accounting(jobs: List[Job]) -> JobAccounting:
    """Sum per-job accounting into workload totals (T_cpu, T_page, ...)."""
    total = JobAccounting()
    for job in jobs:
        total.cpu_s += job.acct.cpu_s
        total.page_s += job.acct.page_s
        total.io_s += job.acct.io_s
        total.queue_s += job.acct.queue_s
        total.migration_s += job.acct.migration_s
        total.pending_s += job.acct.pending_s
    return total
