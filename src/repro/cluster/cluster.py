"""The Cluster facade: nodes + network + load directory + event hooks.

The cluster is passive infrastructure — scheduling policies
(:mod:`repro.scheduling`) drive submissions and migrations through it.
It owns the simulator, constructs the workstations, wires completion
notifications, and fans out state-change callbacks that policies and
metric collectors subscribe to.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.cluster.config import ClusterConfig
from repro.cluster.job import Job
from repro.cluster.domains import DomainDirectory
from repro.cluster.loadinfo import LoadInfoDirectory
from repro.cluster.memory import PagingModel
from repro.cluster.network import Network
from repro.cluster.state import FLAG_RESERVED, ClusterState
from repro.cluster.workstation import Workstation
from repro.faults.injector import FaultInjector
from repro.obs.bus import EventBus
from repro.sim.engine import Simulator

JobListener = Callable[[Job, Workstation], None]
NodeListener = Callable[[Workstation], None]


class Cluster:
    """A simulated cluster of workstations."""

    def __init__(self, config: Optional[ClusterConfig] = None,
                 sim: Optional[Simulator] = None,
                 obs: Optional[EventBus] = None):
        self.config = config if config is not None else ClusterConfig()
        self.sim = sim if sim is not None else Simulator()
        #: Instrumentation bus for this cluster's run.  All channels
        #: are disabled until someone subscribes (see repro.obs).
        self.obs = obs if obs is not None else EventBus()
        self.sim.obs_channel = self.obs.channel("sim.event")
        self.paging = PagingModel(
            alpha=self.config.residency_alpha,
            max_fault_rate_per_cpu_s=self.config.max_fault_rate_per_cpu_s,
            fault_service_s=self.config.fault_service_s,
            curve_exponent=self.config.fault_curve_exponent,
        )
        #: Columnar (struct-of-arrays) hot state shared by all nodes;
        #: None on the per-object fallback path (``columnar=False``).
        #: Batch consumers (metrics collector, obs sampler, load
        #: directory, the cluster-wide queries below) read these
        #: columns instead of walking node objects.
        self.state: Optional[ClusterState] = (
            ClusterState(self.config.num_nodes)
            if self.config.columnar else None)
        self.nodes: List[Workstation] = [
            Workstation(self.sim, node_id, self.config.spec_for(node_id),
                        self.config, self.paging,
                        on_job_finished=self._job_finished,
                        state=self.state)
            for node_id in range(self.config.num_nodes)
        ]
        self.network = Network(
            self.sim,
            bandwidth_mbps=self.config.network_bandwidth_mbps,
            remote_submission_cost_s=self.config.remote_submission_cost_s,
            contention=self.config.network_contention,
        )
        fault_channel = self.obs.channel("memory.fault")
        job_channel = self.obs.channel("cluster.job")
        for node in self.nodes:
            node.obs_fault = fault_channel
            node.obs_job = job_channel
        if self.config.domains > 1:
            # Two-level load information: K per-domain shards plus
            # slower inter-domain summaries (DESIGN.md §4).  domains=1
            # builds the flat directory below, byte-identical to the
            # pre-domain code path by construction.
            self.directory = DomainDirectory(
                self.sim, self.nodes,
                num_domains=self.config.domains,
                exchange_interval_s=self.config.load_exchange_interval_s,
                summary_interval_s=self.config.domain_exchange_interval_s,
                incremental=self.config.indexed_selection,
                obs=self.obs.channel("loadinfo.exchange"),
                obs_domain=self.obs.channel("loadinfo.domain"),
                state=self.state,
            )
        else:
            self.directory = LoadInfoDirectory(
                self.sim, self.nodes,
                exchange_interval_s=self.config.load_exchange_interval_s,
                incremental=self.config.indexed_selection,
                obs=self.obs.channel("loadinfo.exchange"),
                state=self.state,
            )
        #: Ids of nodes whose cached fault rate / starvation currently
        #: crosses the thrashing threshold, maintained from workstation
        #: change notifications — monitors visit only this set instead
        #: of scanning all N nodes every monitor period.
        self.thrashing_nodes: Set[int] = set()
        for node in self.nodes:
            node.add_change_listener(self._track_thrashing)
        self.finished_jobs: List[Job] = []
        self._job_listeners: List[JobListener] = []
        self._node_listeners: List[NodeListener] = []
        #: Fault injector (None on fault-free runs — the common case;
        #: every fault-aware code path guards on this being set).
        self.faults: Optional[FaultInjector] = None
        if self.config.faults is not None:
            self.faults = FaultInjector(self, self.config.faults)

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def on_job_finished(self, listener: JobListener) -> None:
        """Subscribe to job completions."""
        self._job_listeners.append(listener)

    def on_node_changed(self, listener: NodeListener) -> None:
        """Subscribe to node state changes (currently completions)."""
        self._node_listeners.append(listener)

    def remove_node_changed_listener(self, listener: NodeListener) -> None:
        """Unsubscribe a node-change listener (checkpoint forks retire
        the old policy's listener so it stops reacting); unknown
        listeners are ignored."""
        try:
            self._node_listeners.remove(listener)
        except ValueError:
            pass

    def _job_finished(self, job: Job, node: Workstation) -> None:
        self.finished_jobs.append(job)
        for listener in self._job_listeners:
            listener(job, node)
        self.notify_node_changed(node)

    def notify_node_changed(self, node: Workstation) -> None:
        """Fan a node state change out to subscribers (also called by
        policies after placements/migrations)."""
        for listener in self._node_listeners:
            listener(node)

    def _track_thrashing(self, node: Workstation) -> None:
        if node.thrashing:
            self.thrashing_nodes.add(node.node_id)
        else:
            self.thrashing_nodes.discard(node.node_id)

    # ------------------------------------------------------------------
    # cluster-wide queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def total_idle_memory_mb(self, exclude_reserved: bool = False) -> float:
        """Accumulated idle memory space in the cluster (paper §2.1/2.2).

        The columnar path sums the idle column in the same node order
        the object walk uses, so the float result is bit-identical.
        """
        state = self.state
        if state is not None:
            if not exclude_reserved:
                return sum(state.idle_memory_mb)
            idle = state.idle_memory_mb
            flags = state.flags
            return sum(idle[i] for i in range(state.num_nodes)
                       if not flags[i] & FLAG_RESERVED)
        return sum(node.idle_memory_mb for node in self.nodes
                   if not (exclude_reserved and node.reserved))

    def average_user_memory_mb(self) -> float:
        """Average user memory space of workstations (the paper's
        activation threshold for the reconfiguration routine)."""
        return sum(node.user_memory_mb for node in self.nodes) / len(self.nodes)

    def running_jobs(self) -> List[Job]:
        """All jobs currently running anywhere."""
        jobs: List[Job] = []
        for node in self.nodes:
            jobs.extend(node.running_jobs)
        return jobs

    def reserved_nodes(self) -> List[Workstation]:
        state = self.state
        if state is not None:
            nodes = self.nodes
            return [nodes[node_id] for node_id in state.reserved_ids()]
        return [node for node in self.nodes if node.reserved]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = sum(node.num_running for node in self.nodes)
        return (f"<Cluster n={self.num_nodes} t={self.sim.now:.1f}s"
                f" running={running} finished={len(self.finished_jobs)}>")
