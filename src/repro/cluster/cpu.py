"""CPU sharing model: round-robin as capped processor sharing.

Intra-workstation scheduling in the paper is round-robin (§1).  Between
simulator events all node state is constant, so round-robin is modeled
as egalitarian processor sharing with two corrections:

* a context-switch tax on total capacity when more than one job is
  runnable (0.1 ms per switch, §3.3.1);
* a per-job *progress cap*: a job that stalls on page faults or I/O
  cannot exceed the progress rate it would achieve alone, namely
  ``1 / (1/speed + stall_per_work)``.

Capacity is divided by water-filling: every job gets an equal share,
jobs capped below their share return the excess to the pool, and the
pool is re-divided among the uncapped jobs.
"""

from __future__ import annotations

from typing import List, Sequence


def waterfill(capacity: float, caps: Sequence[float]) -> List[float]:
    """Split ``capacity`` equally among consumers with per-consumer caps.

    Returns the allocation list.  Properties (tested):
    ``0 <= alloc[i] <= caps[i]``, ``sum(alloc) <= capacity`` with
    equality whenever ``sum(caps) >= capacity``, and all consumers not
    at their cap receive equal allocations.
    """
    n = len(caps)
    if n == 0:
        return []
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    alloc = [0.0] * n
    remaining = capacity
    active = [i for i in range(n) if caps[i] > 0]
    # Iteratively saturate consumers whose cap is below the fair share.
    while active and remaining > 1e-15:
        share = remaining / len(active)
        saturated = [i for i in active if caps[i] - alloc[i] <= share]
        if not saturated:
            for i in active:
                alloc[i] += share
            remaining = 0.0
            break
        for i in saturated:
            remaining -= caps[i] - alloc[i]
            alloc[i] = caps[i]
        active = [i for i in active if i not in set(saturated)]
    return alloc


def progress_rates(speed_factor: float,
                   context_switch_tax: float,
                   stalls_per_work: Sequence[float],
                   capacity_factor: float = 1.0) -> List[float]:
    """Per-job progress rates (work-seconds per wall-second).

    ``stalls_per_work[i]`` is job *i*'s stall time (page faults + I/O)
    per second of CPU work.  The CPU constraint is
    ``sum(rate_i) <= speed * (1 - tax) * capacity_factor`` (the tax
    applies only when more than one job shares the node;
    ``capacity_factor`` accounts for CPU burned by kernel fault
    handling); the per-job constraint is
    ``rate_i * (1/speed + stall_i) <= 1``.
    """
    n = len(stalls_per_work)
    if n == 0:
        return []
    if not 0 < capacity_factor <= 1:
        raise ValueError("capacity_factor must be in (0, 1]")
    tax = context_switch_tax if n > 1 else 0.0
    capacity = speed_factor * (1.0 - tax) * capacity_factor
    caps = [1.0 / (1.0 / speed_factor + stall) if stall > 0
            else speed_factor
            for stall in stalls_per_work]
    # A lone unstalled job still cannot exceed taxed capacity.
    caps = [min(cap, capacity) if n == 1 else cap for cap in caps]
    return waterfill(capacity, caps)
