"""Columnar (struct-of-arrays) cluster hot state.

At a few hundred nodes the simulation's wall time is no longer spent
in the event core but in everything that *reads* per-node state in
bulk: the 1 Hz metrics collector, the load-information exchange, the
obs sampler, and candidate filtering all walked N ``Workstation``
objects through Python properties.  :class:`ClusterState` stores the
published per-node quantities as contiguous columns — one
``array('d')``/``array('l')``/``bytearray`` per quantity — so batch
consumers read C-backed buffers instead of making ``O(N)`` attribute
calls per tick (the storage layout the obs sampler already proved).

Ownership contract:

* every :class:`~repro.cluster.workstation.Workstation` *writes
  through* to its row (``sync_row`` / the flag helpers) whenever its
  externally visible state changes — the same instants it notifies its
  change listeners — so a column always equals what the corresponding
  property would return;
* batch readers (collector, sampler, load directory, cluster-wide
  queries) read columns directly and never touch node objects;
* per-object reads (``node.idle_memory_mb`` and friends) keep their
  existing row-local caches, so the object API costs exactly what it
  did before.

The low three flag bits deliberately match
:mod:`repro.obs.sampler`'s ``FLAG_ALIVE``/``FLAG_RESERVED``/
``FLAG_THRASHING`` packing, which lets the sampler copy flag rows with
one ``bytes.translate`` instead of re-deriving bits per node.

``ClusterConfig.columnar = False`` disables the layer entirely (no
state object is built); every consumer then falls back to the
per-object path, which the differential tests pin byte-identical.
"""

from __future__ import annotations

from array import array
from typing import List

#: Flag bits of one node's ``flags`` byte.  The low three bits match
#: the obs sampler's packing (see module docstring).
FLAG_ALIVE = 1
FLAG_RESERVED = 2
FLAG_THRASHING = 4
FLAG_ACCEPTING = 8
FLAG_STARVING = 16

#: ``bytes.translate`` table projecting a flags byte onto the sampler
#: bits (alive | reserved | thrashing).
SAMPLER_FLAG_MASK = bytes((i & 7) for i in range(256))


class ClusterState:
    """Struct-of-arrays view of every node's published hot state.

    Columns are indexed by node id.  Float columns hold exactly the
    value the corresponding :class:`Workstation` property returns at
    the same instant (``idle_memory_mb`` includes the dead-node-is-0
    rule, for example), so summing a column left to right is
    bit-identical to summing the properties left to right.
    """

    __slots__ = ("num_nodes", "user_memory_mb", "total_demand_mb",
                 "idle_memory_mb", "fault_rate_per_s", "num_running",
                 "inbound_jobs", "flags")

    def __init__(self, num_nodes: int):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        zeros = [0.0] * num_nodes
        #: Static user-space memory per node (written once per node).
        self.user_memory_mb = array("d", zeros)
        #: Sum of current per-job demands (``total_demand_mb``).
        self.total_demand_mb = array("d", zeros)
        #: ``idle_memory_mb`` property value (0.0 for a dead node).
        self.idle_memory_mb = array("d", zeros)
        #: Aggregate page faults per second (``fault_rate_per_s``).
        self.fault_rate_per_s = array("d", zeros)
        #: Running-job count per node.
        self.num_running = array("l", [0] * num_nodes)
        #: In-flight arrivals holding a slot (``inbound_jobs``).
        self.inbound_jobs = array("l", [0] * num_nodes)
        #: FLAG_* bits per node; nodes start alive.
        self.flags = bytearray([FLAG_ALIVE]) * num_nodes

    # ------------------------------------------------------------------
    # batch views
    # ------------------------------------------------------------------
    def committed_jobs(self, node_id: int) -> int:
        """Running plus in-flight jobs of one node (slot accounting)."""
        return self.num_running[node_id] + self.inbound_jobs[node_id]

    def reserved_ids(self) -> List[int]:
        """Node ids with the reserved flag set, ascending."""
        return [node_id for node_id, bits in enumerate(self.flags)
                if bits & FLAG_RESERVED]

    def count_flag(self, bit: int) -> int:
        """Number of nodes with ``bit`` set."""
        return sum(1 for bits in self.flags if bits & bit)

    def sampler_flags(self) -> bytes:
        """All flag bytes projected onto the obs-sampler bit packing."""
        return bytes(self.flags).translate(SAMPLER_FLAG_MASK)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        alive = self.count_flag(FLAG_ALIVE)
        return (f"<ClusterState n={self.num_nodes} alive={alive}"
                f" accepting={self.count_flag(FLAG_ACCEPTING)}>")
