"""Network model: remote submission and preemptive migration costs.

The paper's cost model (§3.3.1): remote submission/execution costs
``r = 0.1 s``; a preemptive migration transfers the job's entire
memory image (its working set) and costs ``r + D/B`` where ``D`` is
the image size in bits and ``B`` the Ethernet bandwidth (10 Mbps).

Two modes are provided:

* additive (paper's model, default): transfers do not interact;
* contention: transfers share the single link FIFO, so a migration
  behind another completes later.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Simulator

BITS_PER_MB = 8.0 * 1024.0 * 1024.0


class Network:
    """The cluster interconnect."""

    def __init__(self, sim: Simulator, bandwidth_mbps: float = 10.0,
                 remote_submission_cost_s: float = 0.1,
                 contention: bool = False):
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth_mbps must be positive")
        if remote_submission_cost_s < 0:
            raise ValueError("remote_submission_cost_s must be >= 0")
        self._sim = sim
        self.bandwidth_bps = bandwidth_mbps * 1e6
        self.remote_cost_s = remote_submission_cost_s
        self.contention = contention
        self._link_free_at = 0.0
        # Diagnostics
        self.bytes_transferred = 0.0
        self.transfers = 0
        #: Accumulated wire seconds across all transfers — in
        #: contention mode this is exactly the link's busy time (the
        #: FIFO serializes transfers, so wire times never overlap).
        self.busy_s = 0.0

    # ------------------------------------------------------------------
    def transfer_time_s(self, image_mb: float) -> float:
        """Pure wire time for an image of ``image_mb`` megabytes.

        Unit convention (pinned by tests): the image is measured in
        *binary* megabytes (``1 MB = 8 * 1024 * 1024 bits``, matching
        memory sizes elsewhere in the simulator) while bandwidth uses
        the networking convention of *decimal* megabits
        (``1 Mbps = 1e6 bits/s``).  A 1 MB image on the paper's
        10 Mbps Ethernet therefore takes ``8388608 / 1e7 =
        0.8388608 s``, not 0.8 s.
        """
        if image_mb < 0:
            raise ValueError("image_mb must be non-negative")
        return image_mb * BITS_PER_MB / self.bandwidth_bps

    def migration_cost_s(self, image_mb: float) -> float:
        """Paper's migration cost ``r + D/B`` (additive estimate)."""
        return self.remote_cost_s + self.transfer_time_s(image_mb)

    # ------------------------------------------------------------------
    def submit_remote(self, on_done: Callable[[], None]) -> float:
        """Charge a remote submission; fire ``on_done`` when complete.

        Returns the completion delay.
        """
        delay = self.remote_cost_s
        self._sim.schedule(delay, on_done)
        return delay

    def migrate(self, image_mb: float,
                on_done: Callable[[], None]) -> float:
        """Start a migration transfer; fire ``on_done`` at completion.

        Returns the total delay charged to the migrating job.  In
        contention mode the transfer queues behind in-flight transfers
        on the shared link.
        """
        wire = self.transfer_time_s(image_mb)
        if self.contention:
            start = max(self._sim.now, self._link_free_at)
            self._link_free_at = start + wire
            delay = (start - self._sim.now) + wire + self.remote_cost_s
        else:
            delay = self.remote_cost_s + wire
        self.bytes_transferred += image_mb * 1024 * 1024
        self.transfers += 1
        self.busy_s += wire
        self._sim.schedule(delay, on_done)
        return delay
