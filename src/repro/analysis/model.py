"""The paper's §5 performance model, implemented and checkable.

The model decomposes a workload's total execution time as::

    T_exe = T_cpu + T_page + T_que + T_mig

and compares the same quantity under virtual reconfiguration
(``T̂_exe``).  Its statements, each implemented below:

1. **CPU service time** is invariant: ``T_cpu = T̂_cpu``.
2. **Paging time** reduction is the objective of reconfiguration.
3. **Queuing in reserved workstations** is FIFO-bounded::

       g(Q_r(k)) <= sum_{j=1..Q_r(k)} (Q_r(k) - j) * w_kj

   where ``w_kj`` is the interval between the arrival of job j+1 and
   the completion of job j at reserved workstation k, and it is
   minimized when ``w_k1 < w_k2 < ... `` (shortest first — the SRPT
   principle the method implicitly applies).
4. **Gain condition**: with ``T_mig ≈ T̂_mig`` and paging reduced,

       T_exe - T̂_exe > T_que - T̂ⁿ_que - sum_k g(Q_r(k))

   is positive when queuing in non-reserved workstations is
   sufficiently smaller than total baseline queuing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.metrics.summary import RunSummary


@dataclass(frozen=True)
class ExecutionTimeModel:
    """The four-component execution time of §5 (seconds)."""

    cpu_s: float
    page_s: float
    queue_s: float
    migration_s: float

    @property
    def total_s(self) -> float:
        return self.cpu_s + self.page_s + self.queue_s + self.migration_s

    @classmethod
    def from_summary(cls, summary: RunSummary) -> "ExecutionTimeModel":
        """Extract the model components from a measured run (I/O stalls
        are folded into the paging component, as both are involuntary
        per-job service stalls)."""
        return cls(
            cpu_s=summary.total_cpu_time_s,
            page_s=summary.total_paging_time_s + summary.total_io_time_s,
            queue_s=summary.total_queuing_time_s,
            migration_s=summary.total_migration_time_s,
        )


class ReservedQueueModel:
    """FIFO queuing bound for one reserved workstation (§5, item 3)."""

    def __init__(self, inter_completion_waits: Sequence[float]):
        """``inter_completion_waits[j]`` is w_{k,j+1}: the time between
        the arrival of job j+1 and the completion of job j."""
        if any(w < 0 for w in inter_completion_waits):
            raise ValueError("waits must be non-negative")
        self.waits = list(inter_completion_waits)

    @property
    def num_jobs(self) -> int:
        return len(self.waits)

    def queuing_bound_s(self) -> float:
        """``sum_j (Q - j) * w_kj`` with jobs indexed from 1."""
        q = self.num_jobs
        return sum((q - j) * w for j, w in enumerate(self.waits, start=1))

    def is_minimized_ordering(self) -> bool:
        """The bound is minimized when waits increase with j (§5):
        serving shorter jobs first weights the small ``w`` values by
        the large ``(Q - j)`` coefficients."""
        return all(a <= b for a, b in zip(self.waits, self.waits[1:]))

    @staticmethod
    def minimal_bound_s(waits: Sequence[float]) -> float:
        """The bound achieved by the SRPT-style increasing ordering."""
        return ReservedQueueModel(sorted(waits)).queuing_bound_s()


def gain_condition(baseline: ExecutionTimeModel,
                   reconfigured_nonreserved_queue_s: float,
                   reserved_queue_bounds_s: Sequence[float]) -> float:
    """Lower bound on ``T_exe - T̂_exe`` from §5 (assuming paging does
    not increase and migration-time differences are insignificant).

    Positive return value = the model predicts a net gain.
    """
    return (baseline.queue_s
            - reconfigured_nonreserved_queue_s
            - sum(reserved_queue_bounds_s))


@dataclass(frozen=True)
class ModelCheck:
    """Outcome of checking the §5 model against two measured runs."""

    cpu_invariant_error: float      # |T_cpu - T̂_cpu| / T_cpu
    paging_reduced: bool
    predicted_gain_s: float         # model's lower bound
    measured_gain_s: float          # T_exe - T̂_exe as measured
    consistent: bool


def verify_against_run(baseline: RunSummary,
                       reconfigured: RunSummary,
                       reserved_queue_bounds_s: Sequence[float] = (),
                       cpu_tolerance: float = 0.01) -> ModelCheck:
    """Check the §5 statements against a measured pair of runs.

    ``consistent`` requires (a) CPU-time invariance within tolerance,
    and (b) the measured gain to be at least the model's lower bound
    (the bound ignores second-order effects that only help).
    """
    base = ExecutionTimeModel.from_summary(baseline)
    reco = ExecutionTimeModel.from_summary(reconfigured)
    cpu_err = (abs(base.cpu_s - reco.cpu_s) / base.cpu_s
               if base.cpu_s > 0 else 0.0)
    predicted = gain_condition(
        base,
        reconfigured_nonreserved_queue_s=reco.queue_s,
        reserved_queue_bounds_s=reserved_queue_bounds_s)
    measured = base.total_s - reco.total_s
    return ModelCheck(
        cpu_invariant_error=cpu_err,
        paging_reduced=reco.page_s <= base.page_s,
        predicted_gain_s=predicted,
        measured_gain_s=measured,
        consistent=(cpu_err <= cpu_tolerance
                    and measured >= predicted - 1e-6),
    )


def unsuccessful_conditions(baseline: RunSummary) -> List[str]:
    """The §5 list of conditions under which virtual reconfiguration
    is potentially unsuccessful, evaluated on a baseline run."""
    reasons: List[str] = []
    if baseline.average_slowdown < 1.5:
        reasons.append("cluster lightly loaded; dynamic load sharing "
                       "already absorbs moderate page faults")
    if baseline.total_paging_time_s < 0.01 * baseline.total_execution_time_s:
        reasons.append("jobs nearly equally sized in memory demands; "
                       "little unsuitable resource allocation to fix")
    return reasons
