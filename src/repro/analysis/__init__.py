"""Analysis: the paper's §5 model, queueing-theory validation, and
lifetime-distribution analysis ([5])."""

from repro.analysis.lifetimes import (
    LifetimeStats,
    analyze_lifetimes,
    expected_remaining_life,
)
from repro.analysis.model import (
    ExecutionTimeModel,
    ReservedQueueModel,
    gain_condition,
    verify_against_run,
)
from repro.analysis.queueing import (
    mm1_mean_sojourn,
    ps_mean_slowdown,
    run_single_node,
)

__all__ = [
    "ExecutionTimeModel",
    "LifetimeStats",
    "ReservedQueueModel",
    "analyze_lifetimes",
    "expected_remaining_life",
    "gain_condition",
    "mm1_mean_sojourn",
    "ps_mean_slowdown",
    "run_single_node",
    "verify_against_run",
]
