"""Queueing-theory validation of the simulation substrate.

The reproduction's credibility rests on the simulator behaving like
the system it models.  This module provides closed-form results from
queueing theory and helpers to measure the corresponding quantities in
the simulator, so tests can validate the substrate against theory:

* **M/G/1-PS**: a processor-sharing server with Poisson arrivals has
  mean slowdown ``1 / (1 - rho)`` *independently of the service-time
  distribution* — our round-robin CPU model is PS in the limit, so a
  single workstation with ample memory must reproduce this;
* **M/M/1-FCFS**: with one job slot (CPU threshold 1) the node is an
  FCFS queue; mean sojourn ``1 / (mu - lambda)``;
* utilization law: throughput x mean service = utilization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig, WorkstationSpec
from repro.cluster.job import Job, MemoryProfile
from repro.scheduling.local import LocalPolicy


def ps_mean_slowdown(rho: float) -> float:
    """M/G/1-PS mean slowdown: 1 / (1 - rho)."""
    if not 0 <= rho < 1:
        raise ValueError("rho must be in [0, 1)")
    return 1.0 / (1.0 - rho)


def mm1_mean_sojourn(arrival_rate: float, service_rate: float) -> float:
    """M/M/1 mean time in system: 1 / (mu - lambda)."""
    if service_rate <= arrival_rate:
        raise ValueError("unstable queue: mu must exceed lambda")
    return 1.0 / (service_rate - arrival_rate)


@dataclass
class SingleNodeExperiment:
    """Measured statistics of a single-workstation simulation."""

    rho: float
    num_jobs: int
    mean_slowdown: float
    mean_sojourn_s: float
    utilization: float


def run_single_node(arrival_rate: float,
                    mean_service_s: float,
                    num_jobs: int = 2000,
                    seed: int = 0,
                    cpu_threshold: int = 64,
                    service_sampler: Optional[
                        Callable[[random.Random], float]] = None,
                    warmup_fraction: float = 0.1
                    ) -> SingleNodeExperiment:
    """Drive one workstation with Poisson arrivals and measure it.

    Memory demands are negligible, so the node is a pure PS server
    (or FCFS with ``cpu_threshold=1``).  The context-switch tax is
    zeroed for an exact comparison with theory.
    """
    rng = random.Random(seed)
    if service_sampler is None:
        def service_sampler(r: random.Random) -> float:
            return r.expovariate(1.0 / mean_service_s)

    config = ClusterConfig(
        num_nodes=1,
        spec=WorkstationSpec(memory_mb=100000.0, swap_mb=0.0),
        cpu_threshold=cpu_threshold,
        context_switch_ms=0.0,
        load_exchange_interval_s=0.0,
        monitor_interval_s=1e9,  # effectively off
        sample_interval_s=1e9,
    )
    cluster = Cluster(config)
    policy = LocalPolicy(cluster)

    jobs: List[Job] = []
    t = 0.0
    for _ in range(num_jobs):
        t += rng.expovariate(arrival_rate)
        work = max(1e-3, service_sampler(rng))
        jobs.append(Job(program="mg1", cpu_work_s=work,
                        memory=MemoryProfile.constant(1.0),
                        submit_time=t, home_node=0))
    for job in jobs:
        cluster.sim.schedule_at(job.submit_time,
                                lambda job=job: policy.submit(job))
    cluster.sim.run()

    warmup = int(warmup_fraction * num_jobs)
    measured = jobs[warmup:]
    slowdowns = [job.slowdown() for job in measured]
    sojourns = [job.finish_time - job.submit_time for job in measured]
    makespan = max(job.finish_time for job in jobs)
    busy = cluster.nodes[0].busy_cpu_s
    return SingleNodeExperiment(
        rho=arrival_rate * mean_service_s,
        num_jobs=len(measured),
        mean_slowdown=sum(slowdowns) / len(slowdowns),
        mean_sojourn_s=sum(sojourns) / len(sojourns),
        utilization=busy / makespan,
    )
