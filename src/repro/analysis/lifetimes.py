"""Process-lifetime analysis (the paper's [5], Harchol-Balter & Downey).

The reconfiguration's victim choice leans on two empirical claims the
paper quotes in §2.2:

1. "a job with a large memory demand ... is less competitive than jobs
   with small memory allocations" — modeled by the paging bias;
2. "a job having stayed for a relatively long time is predicted to
   continue to stay for an even longer time" — the heavy-tailed
   process-lifetime observation of [5]: for the measured distribution
   ``P(L > 2t | L > t)`` is roughly constant (~1/2 under the
   1/T-like law), so *age is a predictor of remaining lifetime*.

This module provides the estimator used to check claim 2 on our
workloads and the expected-remaining-lifetime predictor used by the
age-aware victim selection extension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class LifetimeStats:
    """Summary of a lifetime sample."""

    count: int
    mean_s: float
    median_s: float
    p90_s: float
    #: P(L > 2t | L > t) averaged over the sample's t-grid — ~0.5 for
    #: the 1/T-like distributions of [5]; ~0 for light-tailed ones.
    doubling_survival: float

    @property
    def heavy_tailed(self) -> bool:
        """Rule of thumb: age meaningfully predicts remaining life."""
        return self.doubling_survival > 0.3


def _quantile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        raise ValueError("empty sample")
    k = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[k]


def survival_fraction(lifetimes: Sequence[float], t: float) -> float:
    """P(L > t) under the empirical distribution."""
    if not lifetimes:
        raise ValueError("empty sample")
    return sum(1 for life in lifetimes if life > t) / len(lifetimes)


def doubling_survival(lifetimes: Sequence[float],
                      grid_points: int = 16) -> float:
    """Average of P(L > 2t | L > t) over a geometric grid of t.

    The grid spans the central mass of the distribution (25th to 90th
    percentile) so the statistic discriminates: scale-free (Pareto)
    samples score ~0.5 at every t, light-tailed samples decay.
    """
    ordered = sorted(lifetimes)
    lo = max(_quantile(ordered, 0.25), 1e-9)
    hi = max(_quantile(ordered, 0.90), lo)
    ratios: List[float] = []
    for k in range(grid_points):
        if hi > lo:
            t = lo * (hi / lo) ** (k / max(1, grid_points - 1))
        else:
            t = lo
        alive = survival_fraction(ordered, t)
        if alive <= 0:
            continue
        ratios.append(survival_fraction(ordered, 2.0 * t) / alive)
    return sum(ratios) / len(ratios) if ratios else 0.0


def analyze_lifetimes(lifetimes: Sequence[float]) -> LifetimeStats:
    """Compute the [5]-style summary of a lifetime sample."""
    if not lifetimes:
        raise ValueError("empty sample")
    ordered = sorted(lifetimes)
    return LifetimeStats(
        count=len(ordered),
        mean_s=sum(ordered) / len(ordered),
        median_s=_quantile(ordered, 0.5),
        p90_s=_quantile(ordered, 0.9),
        doubling_survival=doubling_survival(ordered),
    )


def expected_remaining_life(age_s: float,
                            doubling_survival_value: float = 0.5) -> float:
    """Predicted remaining lifetime for a job of a given age.

    Under the [5] observation ``P(L > 2t | L > t) = c`` the lifetime
    is Pareto-like with tail exponent ``a = -log2(c)`` and, for a job
    of age t, ``E[L - t | L > t] = t / (a - 1)`` when a > 1 (for the
    measured c ≈ 0.5 this is exactly ``t`` — "expected to run for as
    long again").  For c ≥ 0.5 (a ≤ 1) the conditional mean diverges;
    we return the age itself, the standard practical surrogate.
    """
    if age_s < 0:
        raise ValueError("age must be non-negative")
    c = min(max(doubling_survival_value, 1e-6), 1.0 - 1e-6)
    a = -math.log2(c)
    if a <= 1.0:
        return age_s
    return age_s / (a - 1.0)
