"""Generator-based coroutine processes on top of the event engine.

A process body is a generator that yields either

* a non-negative ``float`` — sleep for that many seconds, or
* another :class:`Process` — wait until that process finishes.

Processes are a convenience layer used by trace replay and periodic
samplers; the performance-critical cluster models schedule raw events
directly on the :class:`~repro.sim.engine.Simulator`.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Union

from repro.sim.engine import EventHandle, SimulationError, Simulator

Yieldable = Union[float, int, "Process"]
ProcessBody = Generator[Yieldable, None, None]


class Interrupt(Exception):
    """Thrown into a process generator by :func:`interrupt`."""

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class Process:
    """A running coroutine bound to a simulator.

    Use :meth:`Simulator` indirectly::

        def body(sim):
            yield 2.0            # sleep
            yield other_process  # join

        proc = Process(sim, body(sim), name="sampler")
    """

    def __init__(self, sim: Simulator, body: ProcessBody,
                 name: str = "process", daemon: bool = False):
        self._sim = sim
        self._body = body
        self.name = name
        self.daemon = daemon
        self.finished = False
        self._waiters: List[Callable[[], None]] = []
        self._pending_event: Optional[EventHandle] = None
        # Start at the current instant (priority 1 so that processes
        # started inside an event fire after plain state updates).
        self._pending_event = sim.schedule(0.0, self._resume, priority=1,
                                           daemon=daemon)

    # ------------------------------------------------------------------
    def _resume(self, payload: object = None,
                exception: Optional[BaseException] = None) -> None:
        self._pending_event = None
        try:
            if exception is not None:
                yielded = self._body.throw(exception)
            else:
                yielded = self._body.send(payload)
        except StopIteration:
            self._finish()
            return
        except Interrupt:
            # Uncaught interrupt terminates the process quietly.
            self._finish()
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Yieldable) -> None:
        if isinstance(yielded, (int, float)):
            delay = float(yielded)
            if delay < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {delay}")
            self._pending_event = self._sim.schedule(
                delay, self._resume, priority=1, daemon=self.daemon)
        elif isinstance(yielded, Process):
            if yielded.finished:
                self._pending_event = self._sim.schedule(
                    0.0, self._resume, priority=1, daemon=self.daemon)
            else:
                yielded._waiters.append(self._resume)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value "
                f"{yielded!r}")

    def _finish(self) -> None:
        self.finished = True
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self._sim.schedule(0.0, waiter, priority=1)

    # ------------------------------------------------------------------
    def interrupt(self, cause: object = None) -> None:
        """Cancel the process's current wait and throw Interrupt into it."""
        if self.finished:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self._sim.schedule(
            0.0, lambda: self._resume(exception=Interrupt(cause)),
            priority=1, daemon=self.daemon)


def interrupt(process: Process, cause: object = None) -> None:
    """Module-level convenience wrapper around :meth:`Process.interrupt`."""
    process.interrupt(cause)
