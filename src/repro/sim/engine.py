"""Event-queue simulation engine.

The engine keeps a binary heap of ``(time, priority, sequence)`` keyed
events.  Events are plain callables; cancellation is *lazy* — a
cancelled :class:`EventHandle` stays in the heap but is skipped when it
surfaces, which keeps cancellation O(1).

Determinism guarantees:

* events at the same timestamp fire in (priority, scheduling-order)
  order;
* the engine never consults wall-clock time or global random state.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from repro.obs.bus import NULL_CHANNEL


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel."""


class EventHandle:
    """A scheduled event that may be cancelled before it fires.

    Instances are returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and compare by heap key.  A *daemon*
    event (periodic samplers, load-info exchanges, monitors) does not
    keep :meth:`Simulator.run` alive: an open-ended run stops once only
    daemon events remain.
    """

    __slots__ = ("time", "priority", "seq", "sort_key", "callback",
                 "cancelled", "daemon", "_owner")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[[], None], daemon: bool = False,
                 owner: "Optional[Simulator]" = None):
        self.time = time
        self.priority = priority
        self.seq = seq
        #: Precomputed heap key: built once at schedule time instead of
        #: twice per comparison (heap sift paths compare O(log n) times
        #: per push/pop).
        self.sort_key = (time, priority, seq)
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self.daemon = daemon
        self._owner = owner

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        if self.cancelled or self.callback is None:
            return
        self.cancelled = True
        self.callback = None  # break reference cycles early
        if self._owner is not None:
            if self.daemon:
                self._owner._daemon_pending -= 1
            else:
                self._owner._non_daemon_pending -= 1

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled/fired."""
        return not self.cancelled and self.callback is not None

    def __lt__(self, other: "EventHandle") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} prio={self.priority} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run()
    """

    #: Heap sizes below this are never compacted (rebuild overhead
    #: would dwarf the memory saved).
    _COMPACT_MIN_HEAP = 64

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._event_count = 0
        self._non_daemon_pending = 0
        self._daemon_pending = 0
        #: Number of lazy-cancellation heap rebuilds (diagnostics).
        self.compactions = 0
        #: ``sim.event`` obs channel; the owning cluster points this at
        #: its bus.  Disabled (the shared null channel) by default, so
        #: the per-event cost is one attribute load and bool test.
        self.obs_channel = NULL_CHANNEL

    # ------------------------------------------------------------------
    # clock and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._event_count

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still in the queue.

        O(1): maintained as a pair of counters (non-daemon + daemon)
        updated on schedule, cancel, and fire.
        """
        return self._non_daemon_pending + self._daemon_pending

    @property
    def has_non_daemon_work(self) -> bool:
        """True while live non-daemon events remain — the condition an
        external pacer loops on when driving the engine in bounded
        ``run(until=...)`` slices (daemon ticks alone never keep a run
        alive, so they must not keep a pacer alive either)."""
        return self._non_daemon_pending > 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None],
                 priority: int = 0, daemon: bool = False) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.schedule_at(self._now + delay, callback, priority, daemon)

    def schedule_at(self, time: float, callback: Callable[[], None],
                    priority: int = 0, daemon: bool = False) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} before now={self._now!r}")
        handle = EventHandle(float(time), priority, next(self._seq),
                             callback, daemon=daemon, owner=self)
        heapq.heappush(self._heap, handle)
        if daemon:
            self._daemon_pending += 1
        else:
            self._non_daemon_pending += 1
        self._maybe_compact()
        return handle

    def _maybe_compact(self) -> None:
        """Rebuild the heap once lazily-cancelled events outnumber the
        pending ones.

        Lazy cancellation keeps :meth:`EventHandle.cancel` O(1), but a
        workload that cancels far-future events faster than the clock
        reaches them (migration-heavy runs rescheduling node wakeups)
        would otherwise grow the heap without bound.  Dropping the dead
        entries when they exceed half the heap keeps total compaction
        work amortized O(1) per cancellation.
        """
        heap = self._heap
        if len(heap) < self._COMPACT_MIN_HEAP:
            return
        if 2 * (self._non_daemon_pending + self._daemon_pending) >= len(heap):
            return
        self._heap = [ev for ev in heap if ev.pending]
        heapq.heapify(self._heap)
        self.compactions += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns False when the queue is exhausted.
        """
        while self._heap:
            handle = heapq.heappop(self._heap)
            if not handle.pending:
                continue
            self._now = handle.time
            callback, handle.callback = handle.callback, None
            if handle.daemon:
                self._daemon_pending -= 1
            else:
                self._non_daemon_pending -= 1
            self._event_count += 1
            obs = self.obs_channel
            if obs.enabled:
                obs.emit(self._now, "fire", priority=handle.priority,
                         daemon=handle.daemon)
            callback()
            return True
        return False

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and not self._heap[0].pending:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been executed.

        An open-ended run (``until=None``) additionally stops once only
        *daemon* events remain, so periodic services (samplers,
        load-info exchanges) do not keep an idle simulation alive.

        Returns the simulation time when the run stopped.  When
        ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        pop = heapq.heappop
        try:
            # Inlined peek+step: the heap top is scanned once per
            # event instead of once in peek() and again in step().
            # self._heap is re-read each iteration because callbacks
            # can rebind it (lazy-cancellation compaction).
            while True:
                if until is None and self._non_daemon_pending <= 0:
                    break
                heap = self._heap
                while heap and not heap[0].pending:
                    pop(heap)
                if not heap:
                    break
                handle = heap[0]
                if until is not None and handle.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                pop(heap)
                self._now = handle.time
                callback, handle.callback = handle.callback, None
                if handle.daemon:
                    self._daemon_pending -= 1
                else:
                    self._non_daemon_pending -= 1
                self._event_count += 1
                obs = self.obs_channel
                if obs.enabled:
                    obs.emit(self._now, "fire", priority=handle.priority,
                             daemon=handle.daemon)
                callback()
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = float(until)
        return self._now
