"""Discrete-event simulation kernel.

The kernel is a minimal, dependency-free event-queue simulator designed
for the cluster models in :mod:`repro.cluster`.  It provides:

* :class:`~repro.sim.engine.Simulator` — the event loop, with exact
  (heap-ordered) event scheduling and cancellable event handles;
* :class:`~repro.sim.process.Process` — optional generator-based
  coroutine processes (``yield delay`` / ``yield event``) for
  trace replay and periodic samplers;
* :class:`~repro.sim.rng.RandomStreams` — named, independently seeded
  random streams so that every stochastic component of an experiment is
  reproducible and independently perturbable;
* :mod:`~repro.sim.checkpoint` — whole-world checkpoint/restore: a
  paused run serializes to a schema-versioned snapshot that resumes
  byte-identically, and ``fork`` replays the remainder under an
  alternative policy.

All model code schedules *state-recomputation* events rather than
time-stepping: between events every rate in the system is constant, so
completions and phase boundaries are computed exactly.
"""

from repro.sim.checkpoint import (CheckpointError, RestoredRun,
                                  load_checkpoint, restore_bytes,
                                  save_checkpoint, snapshot_bytes)
from repro.sim.engine import EventHandle, Simulator, SimulationError
from repro.sim.process import Process, interrupt
from repro.sim.rng import RandomStreams

__all__ = [
    "CheckpointError",
    "EventHandle",
    "Process",
    "RandomStreams",
    "RestoredRun",
    "SimulationError",
    "Simulator",
    "interrupt",
    "load_checkpoint",
    "restore_bytes",
    "save_checkpoint",
    "snapshot_bytes",
]
