"""Named, independently seeded random streams.

Every stochastic component of an experiment (arrivals, program choice,
home-node choice, profile jitter, ...) draws from its own stream so
that changing one component's consumption pattern does not perturb the
others.  Streams are derived deterministically from a root seed and a
string label via SHA-256, so results are stable across Python versions
and platforms.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and ``label``."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of named :class:`random.Random` streams.

    >>> streams = RandomStreams(seed=42)
    >>> arrivals = streams.stream("arrivals")
    >>> again = streams.stream("arrivals")
    >>> arrivals is again
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, label: str) -> random.Random:
        """Return the (cached) stream for ``label``."""
        if label not in self._streams:
            self._streams[label] = random.Random(derive_seed(self.seed, label))
        return self._streams[label]

    def spawn(self, label: str) -> "RandomStreams":
        """Derive a child stream-factory (for nested components)."""
        return RandomStreams(derive_seed(self.seed, f"spawn:{label}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, labels={sorted(self._streams)})"
