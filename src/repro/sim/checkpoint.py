"""Checkpoint/restore of a running simulation world.

A checkpoint captures the *entire* dynamic state of a run — engine
clock, pending-event heap (with sequence counter, so same-timestamp
tie-breaks replay identically), cluster, columnar state, load
directory/domain shards, policy (pending queue, cooldowns, reservation
machinery), fault-injector RNG streams, and the metrics collector —
into one schema-versioned, compressed file.  ``restore`` reconstructs
a world that continues **byte-identically** to an uninterrupted run:
same ``RunSummary``, same event counts (pinned by
``tests/test_checkpoint_equivalence.py`` across policies x faults x
domains x columnar modes).

Implementation: the scheduling/fault/load-info layers only ever place
*picklable* callables on the event heap (bound methods,
``functools.partial``, small ``__slots__`` callable classes — never
closures), so the whole object graph serializes with :mod:`pickle`,
which preserves dict order, float bits, RNG state, shared-object
identity and cycles.  Two process-global id counters
(``repro.cluster.job._job_counter``,
``repro.core.reservation._res_counter``) live outside the graph; their
current values are stored alongside and merged (``max``) back on
restore so jobs created *after* a restore (streamed ingest) cannot
collide with checkpointed ids.

File format: gzip over a pickled *envelope* dict holding only
primitives — ``format`` magic, ``schema`` version, a ``meta`` summary,
and the inner world pickle as opaque bytes.  The envelope is decoded
and validated *before* the world bytes are unpickled, so an unknown or
newer schema fails with a clear :class:`CheckpointError` instead of an
arbitrary unpickling error.

Observers are deliberately **not** part of a checkpoint: obs channels
restore disabled and subscriber-free; a restored run attaches a fresh
:class:`~repro.obs.session.ObsSession` if it wants telemetry.

``fork`` is the what-if entry point: restore a snapshot, retire the
checkpointed policy and hand its pending queue to a freshly
constructed one (possibly a different policy class or different
thresholds), then :func:`resume` — replaying the identical remainder
of the workload under an alternative regime (the ``whatif`` experiment
target compares G vs. V this way).
"""

from __future__ import annotations

import copy
import gzip
import itertools
import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: File-format magic; rejects arbitrary pickles early.
MAGIC = "repro-checkpoint"

#: Bump on any incompatible change to the envelope or world layout.
SCHEMA_VERSION = 1


class CheckpointError(RuntimeError):
    """Raised for unwritable worlds and unreadable/incompatible files."""


@dataclass
class RestoredRun:
    """A world reconstructed from a checkpoint, ready to resume."""

    cluster: Any
    policy: Any
    collector: Any
    jobs: List[Any]
    trace_name: str
    meta: Dict[str, Any]


def _counter_value(counter) -> int:
    """Current value of an ``itertools.count`` without advancing it."""
    return next(copy.copy(counter))


def _build_meta(cluster, policy, jobs, trace_name) -> Dict[str, Any]:
    """Primitive-only summary readable without unpickling the world."""
    return {
        "sim_now": cluster.sim.now,
        "event_count": cluster.sim.event_count,
        "policy": policy.name,
        "trace": trace_name,
        "num_nodes": cluster.num_nodes,
        "num_jobs": len(jobs),
        "finished_jobs": len(cluster.finished_jobs),
        "domains": cluster.config.domains,
        "columnar": cluster.config.columnar,
        "faults": cluster.faults is not None,
    }


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def snapshot_bytes(*, cluster, policy, collector, jobs,
                   trace_name: str) -> bytes:
    """Serialize a paused run to checkpoint bytes (see module doc)."""
    import repro.cluster.job as job_mod
    import repro.core.reservation as reservation_mod

    world = {
        "cluster": cluster,
        "policy": policy,
        "collector": collector,
        "jobs": jobs,
        "trace_name": trace_name,
        "job_counter": _counter_value(job_mod._job_counter),
        "reservation_counter": _counter_value(reservation_mod._res_counter),
    }
    try:
        world_bytes = pickle.dumps(world, protocol=4)
    except Exception as exc:
        raise CheckpointError(
            f"simulation state is not picklable: {exc!r}; a scheduled "
            f"callback is probably a closure (see repro.sim.checkpoint)"
        ) from exc
    envelope = {
        "format": MAGIC,
        "schema": SCHEMA_VERSION,
        "meta": _build_meta(cluster, policy, jobs, trace_name),
        "world": world_bytes,
    }
    return gzip.compress(pickle.dumps(envelope, protocol=4), compresslevel=6)


def save_checkpoint(path: str, *, cluster, policy, collector, jobs,
                    trace_name: str) -> Dict[str, Any]:
    """Write a checkpoint file; returns its ``meta`` dict."""
    data = snapshot_bytes(cluster=cluster, policy=policy,
                          collector=collector, jobs=jobs,
                          trace_name=trace_name)
    with open(path, "wb") as stream:
        stream.write(data)
    return _build_meta(cluster, policy, jobs, trace_name)


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
def _decode_envelope(data: bytes) -> Dict[str, Any]:
    """Decompress and validate the outer envelope (world untouched)."""
    try:
        raw = gzip.decompress(data)
    except OSError as exc:
        raise CheckpointError(
            f"not a checkpoint file (gzip layer failed: {exc})") from exc
    try:
        envelope = pickle.loads(raw)
    except Exception as exc:
        raise CheckpointError(
            f"not a checkpoint file (envelope undecodable: {exc!r})"
        ) from exc
    if not isinstance(envelope, dict) or envelope.get("format") != MAGIC:
        raise CheckpointError(
            "not a checkpoint file (missing the "
            f"{MAGIC!r} format marker)")
    schema = envelope.get("schema")
    if schema != SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint schema {schema!r} is not supported by this "
            f"build (reads schema {SCHEMA_VERSION}); it was written by "
            f"a different version of repro — re-create the checkpoint "
            f"with this build or restore it with the matching one")
    return envelope


def peek_meta(path: str) -> Dict[str, Any]:
    """Read a checkpoint's ``meta`` summary without restoring it."""
    with open(path, "rb") as stream:
        return _decode_envelope(stream.read())["meta"]


def restore_bytes(data: bytes,
                  advance_counters: bool = True) -> RestoredRun:
    """Reconstruct a world from checkpoint bytes.

    ``advance_counters`` merges the checkpoint's global id counters
    into this process (``max`` of saved and current), so jobs and
    reservations created after the restore get collision-free ids.
    Pass ``False`` when restoring a throwaway side-world (the live
    server's ``/fork`` endpoint) that must not disturb the id space of
    the run still executing in this process.
    """
    envelope = _decode_envelope(data)
    world = pickle.loads(envelope["world"])
    if advance_counters:
        _advance_global_counters(world)
    return RestoredRun(cluster=world["cluster"], policy=world["policy"],
                       collector=world["collector"], jobs=world["jobs"],
                       trace_name=world["trace_name"],
                       meta=dict(envelope["meta"]))


def load_checkpoint(path: str,
                    advance_counters: bool = True) -> RestoredRun:
    """Read and reconstruct a checkpoint file."""
    with open(path, "rb") as stream:
        return restore_bytes(stream.read(),
                             advance_counters=advance_counters)


def _advance_global_counters(world: Dict[str, Any]) -> None:
    import repro.cluster.job as job_mod
    import repro.core.reservation as reservation_mod

    job_floor = max(world.get("job_counter", 0),
                    _counter_value(job_mod._job_counter))
    job_mod._job_counter = itertools.count(job_floor)
    res_floor = max(world.get("reservation_counter", 0),
                    _counter_value(reservation_mod._res_counter))
    reservation_mod._res_counter = itertools.count(res_floor)


# ----------------------------------------------------------------------
# fork + resume
# ----------------------------------------------------------------------
def fork(restored: RestoredRun, policy: Optional[str] = None,
         policy_kwargs: Optional[dict] = None) -> RestoredRun:
    """Swap a restored run's policy for a what-if replay.

    The checkpointed policy is retired (monitor cancelled, listener
    removed, reserving periods cancelled); the successor — a different
    policy name from the runner registry, or the same one under
    different ``policy_kwargs`` — adopts the pending queue *by
    reference* so the retiree's in-flight transfer callbacks still
    land in it.  With ``policy=None`` the restored run is returned
    unchanged.

    Known limitations, by design: the successor's counters
    (``PolicyStats``) start at zero — job-level metrics (slowdowns,
    makespan) still cover the whole run; the cluster topology cannot
    be resized (the trace's home nodes are fixed); and a retired
    V-Reconfiguration's SERVING reservations drain normally before
    their nodes return to the pool.
    """
    if policy is None:
        return restored
    from repro.experiments.runner import POLICIES
    from repro.metrics.collector import PolicyPendingProbe

    if policy not in POLICIES:
        raise CheckpointError(f"unknown fork policy {policy!r}; "
                              f"choose from {sorted(POLICIES)}")
    old = restored.policy
    old.retire()
    successor = POLICIES[policy](restored.cluster, **(policy_kwargs or {}))
    successor.adopt_pending_from(old)
    collector = restored.collector
    if (collector is not None
            and isinstance(collector.pending_probe, PolicyPendingProbe)):
        collector.pending_probe.policy = successor
    restored.policy = successor
    restored.meta = dict(restored.meta, policy=successor.name,
                         forked_from=old.name)
    return restored


def resume(restored: RestoredRun, obs=None):
    """Run a restored world to completion and summarize it.

    Mirrors the tail of :func:`repro.experiments.runner.run_trace`
    exactly (that is what makes restore-equivalence a byte-identity
    claim).  ``obs`` optionally attaches a *fresh* observability
    session for the remainder of the run.  Returns an
    :class:`~repro.experiments.runner.ExperimentResult` whose ``trace``
    is None (the original trace object is not part of a checkpoint;
    its name survives in ``summary.trace``).
    """
    from repro.experiments.runner import ExperimentResult
    from repro.metrics.summary import summarize_run

    cluster = restored.cluster
    if obs is not None:
        obs.attach(cluster, policy=restored.policy)
        obs.bind_run(collector=restored.collector, jobs=restored.jobs,
                     trace_name=restored.trace_name)
        obs.run_engine(cluster.sim)
    else:
        cluster.sim.run()
    summary = summarize_run(restored.policy, restored.jobs,
                            restored.collector, restored.trace_name)
    if cluster.faults is not None:
        summary.extra.update(cluster.faults.extra_metrics())
    if obs is not None:
        obs.finalize(summary)
    return ExperimentResult(summary=summary, cluster=cluster,
                            policy=restored.policy,
                            collector=restored.collector, trace=None)


__all__ = [
    "MAGIC", "SCHEMA_VERSION", "CheckpointError", "RestoredRun",
    "snapshot_bytes", "save_checkpoint", "restore_bytes",
    "load_checkpoint", "peek_meta", "fork", "resume",
]
