"""Quantitative detection of the job blocking problem.

The paper's first contribution is stating *when* blocking occurs
(§1-2): a workstation experiences page faults beyond a threshold, but
the scheduler cannot find a qualified destination (enough idle memory
for the candidate job's current demand, plus a free job slot) to
migrate jobs away from it.  The reconfiguration routine additionally
activates only when the *accumulated* idle memory in the cluster
exceeds the average user memory space of a workstation — otherwise
memory is genuinely exhausted and reserving cannot help (§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job
from repro.cluster.workstation import Workstation


@dataclass(frozen=True)
class BlockingReport:
    """Snapshot of the blocking state of a cluster at one instant."""

    time: float
    blocked_nodes: Tuple[int, ...]
    #: The migration candidate on each blocked node (job ids).
    stuck_jobs: Tuple[int, ...]
    total_idle_memory_mb: float
    average_user_memory_mb: float

    @property
    def blocking(self) -> bool:
        """True when at least one node is blocked."""
        return bool(self.blocked_nodes)

    @property
    def reconfiguration_worthwhile(self) -> bool:
        """The paper's activation condition: accumulated idle memory
        larger than the average user memory of a workstation."""
        return (self.blocking
                and self.total_idle_memory_mb > self.average_user_memory_mb)


class BlockingDetector:
    """Evaluates the blocking condition against live cluster state."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        #: Load-information domains (1 = flat cluster-wide scans).
        self._num_domains = cluster.config.domains

    # ------------------------------------------------------------------
    def destination_for(self, job: Job,
                        exclude: Optional[int] = None
                        ) -> Optional[Workstation]:
        """A qualified migration destination for ``job``, or None.

        With domains the scan is two-level: the blocked node's own
        domain first, and only if it has no qualified node do we
        escalate to remote domains in summary-ranked order, taking the
        best node of the first domain that qualifies."""
        if self._num_domains > 1:
            return self._destination_domained(job, exclude)
        return self._best_in_slice(job, 0, len(self.cluster.nodes), exclude)

    def _best_in_slice(self, job: Job, lo: int, hi: int,
                       exclude: Optional[int]) -> Optional[Workstation]:
        """Largest-idle-memory qualified destination in nodes[lo:hi]."""
        best: Optional[Workstation] = None
        for node in self.cluster.nodes[lo:hi]:
            if node.node_id == exclude or node.reserved:
                continue
            if not node.accepts_migration(job):
                continue
            if best is None or node.idle_memory_mb > best.idle_memory_mb:
                best = node
        return best

    def _destination_domained(self, job: Job,
                              exclude: Optional[int]
                              ) -> Optional[Workstation]:
        directory = self.cluster.directory
        local = (directory.domain_of(exclude)
                 if exclude is not None else None)
        if local is not None:
            lo, hi = directory.domain_bounds(local)
            best = self._best_in_slice(job, lo, hi, exclude)
            if best is not None:
                return best
        for d in directory.ranked_remote_domains(local):
            lo, hi = directory.domain_bounds(d)
            best = self._best_in_slice(job, lo, hi, exclude)
            if best is not None:
                return best
        return None

    def node_blocked(self, node: Workstation) -> Optional[Job]:
        """If ``node`` is blocked, return the stuck migration candidate."""
        if node.reserved or not node.thrashing:
            return None
        job = node.most_memory_intensive_job(faulting_only=True)
        if job is None:
            return None
        if self.destination_for(job, exclude=node.node_id) is not None:
            return None
        return job

    def assess(self) -> BlockingReport:
        """Evaluate every node and produce a report."""
        blocked: List[int] = []
        stuck: List[int] = []
        for node in self.cluster.nodes:
            job = self.node_blocked(node)
            if job is not None:
                blocked.append(node.node_id)
                stuck.append(job.job_id)
        return BlockingReport(
            time=self.cluster.sim.now,
            blocked_nodes=tuple(blocked),
            stuck_jobs=tuple(stuck),
            total_idle_memory_mb=self.cluster.total_idle_memory_mb(
                exclude_reserved=True),
            average_user_memory_mb=self.cluster.average_user_memory_mb(),
        )

    def blocking_exists(self) -> bool:
        """Fast check used during reserving periods."""
        return any(self.node_blocked(node) is not None
                   for node in self.cluster.nodes)

    def most_memory_intensive_stuck_job(self
                                        ) -> Optional[Tuple[Job, Workstation]]:
        """The cluster-wide migration victim: the stuck job with the
        largest current memory demand, with its node."""
        best: Optional[Tuple[Job, Workstation]] = None
        for node in self.cluster.nodes:
            job = self.node_blocked(node)
            if job is None:
                continue
            if best is None or (job.current_demand_mb
                                > best[0].current_demand_mb):
                best = (job, node)
        return best
