"""The paper's contribution: adaptive and virtual reconfiguration.

* :mod:`repro.core.blocking` — quantitative detection of the job
  blocking problem (contribution 1, §1/§2.1);
* :mod:`repro.core.reservation` — reservation lifecycle: reserving
  period, serving period, adaptive release (§2.1);
* :mod:`repro.core.reconfiguration` — the reconfiguration routine
  embedded in dynamic load sharing (the ``V-Reconfiguration`` policy
  evaluated in §4).
"""

from repro.core.blocking import BlockingDetector, BlockingReport
from repro.core.reconfiguration import VReconfiguration
from repro.core.reservation import (
    Reservation,
    ReservationManager,
    ReservationMode,
    ReservationState,
)

__all__ = [
    "BlockingDetector",
    "BlockingReport",
    "Reservation",
    "ReservationManager",
    "ReservationMode",
    "ReservationState",
    "VReconfiguration",
]
