"""V-Reconfiguration: the paper's adaptive and virtual reconfiguration.

Extends :class:`~repro.scheduling.g_loadsharing.GLoadSharing` with the
reconfiguration routine of §2.1::

    While the load sharing system is on
        if job submissions or/and migrations are allowed
            general_dynamic_load_sharing();
        else  # start reconfiguration
            if exists reservation_flag(reserved_ID) == 1
               and the workstation has enough available resources:
                node_ID = reserved_ID
            else:
                node_ID = reserve_a_workstation()
                reservation_flag(node_ID) = 1
            job_ID = find_most_memory_intensive_job()
            migrate_job(job_ID, node_ID)

Mapping to this event-driven implementation:

* "job submissions or/and migrations are allowed" — the negative case
  is the blocking problem, detected by the base policy's overload path
  and delivered through :meth:`on_blocking`;
* ``reserve_a_workstation()`` — picks the most lightly loaded
  non-reserved workstation with the largest idle memory, blocks
  submissions to it, and waits for the reserving period to end (the
  manager fires :attr:`ReservationManager.on_ready`);
* the routine activates only when accumulated idle memory in the
  cluster exceeds the average user memory of a workstation, and it
  adaptively cancels the reservation if the blocking problem
  disappears during the reserving period;
* the reservation is released when the reserved workstation completes
  all migrated jobs, at which point the scheduler views it as a
  regular workstation again.
"""

from __future__ import annotations

import functools
from typing import Optional

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job, JobState
from repro.cluster.workstation import Workstation
from repro.core.blocking import BlockingDetector
from repro.core.reservation import (
    Reservation,
    ReservationManager,
    ReservationMode,
    ReservationState,
)
from repro.scheduling.g_loadsharing import GLoadSharing


class VReconfiguration(GLoadSharing):
    """Dynamic load sharing supported by virtual reconfiguration.

    The default reserving-period rule is the paper's parenthetical
    alternative ("end the reserving period as soon as the available
    memory space in the reserved workstation is sufficiently large for
    a job migration with large memory demand"): with our compressed
    job lifetimes, waiting for a full drain leaves reservations stuck
    behind multiprogrammed nodes for several job lifetimes.  The
    drain-all rule is available via ``mode`` and measured by the
    reservation-mode ablation.
    """

    name = "V-Reconfiguration"

    def __init__(self, cluster: Cluster,
                 mode: ReservationMode = ReservationMode.FIRST_FIT,
                 max_reserved: int = 4,
                 reserve_timeout_s: float = 600.0,
                 blocking_persistence: int = 2,
                 reservation_backoff_s: float = 30.0,
                 max_concurrent_reserving: int = 3,
                 age_weighted_victims: bool = False,
                 **kwargs):
        super().__init__(cluster, **kwargs)
        self.detector = BlockingDetector(cluster)
        self.reservations = ReservationManager(
            cluster, mode=mode,
            max_reserved=min(max_reserved, cluster.num_nodes - 1),
            reserve_timeout_s=reserve_timeout_s)
        self.reservations.on_ready = self._reservation_ready
        #: Blocking must be observed this many times in a row on a node
        #: before a reserving period starts ("a certain amount of page
        #: faults", §2.1).
        self.blocking_persistence = max(1, blocking_persistence)
        #: Hysteresis after a cancelled/timed-out reservation.
        self.reservation_backoff_s = reservation_backoff_s
        #: How many reserving periods may run at once (several blocked
        #: hot spots can be relieved in parallel).
        self.max_concurrent_reserving = max(1, max_concurrent_reserving)
        #: When True, victims are ranked by demand x predicted
        #: remaining lifetime (§2.2 cites [5]: a job that has stayed
        #: long is predicted to stay even longer) instead of demand
        #: alone — an extension ablated in the benchmarks.
        self.age_weighted_victims = age_weighted_victims
        self._blocked_streak: dict = {}
        self._last_blocked_at: dict = {}
        self._backoff_until = 0.0
        self._obs_reserve = cluster.obs.channel("reconfig.reservation")

    # ------------------------------------------------------------------
    # the reconfiguration routine
    # ------------------------------------------------------------------
    def on_blocking(self, node: Workstation, job: Optional[Job]) -> None:
        """Blocking detected: reuse a reserved workstation or start a
        reserving period."""
        super().on_blocking(node, job)
        if job is None or not self._migratable_to_reservation(job):
            return
        # Reuse path: an existing reserved workstation with enough
        # available resources.
        reservation = self.reservations.serving_reservation_with_capacity(job)
        if reservation is not None:
            self._migrate_to_reservation(job, node, reservation)
            return
        if not self._blocking_persisted(node):
            return
        # Bounded parallelism: a few reserving periods may overlap, but
        # don't hoard nodes for one episode.
        reserving = sum(1 for r in self.reservations.active_reservations
                        if r.state is ReservationState.RESERVING)
        if reserving >= self.max_concurrent_reserving:
            return
        if not self.reservations.can_reserve():
            return
        if self.sim.now < self._backoff_until:
            return
        # Activation condition: accumulated idle memory must exceed the
        # average user memory of a workstation (§2.1, §2.3).
        idle = self.cluster.total_idle_memory_mb(exclude_reserved=True)
        threshold = self.cluster.average_user_memory_mb()
        if idle <= threshold:
            self.stats.extra["activation_skipped"] = (
                self.stats.extra.get("activation_skipped", 0) + 1)
            obs = self._obs_block
            if obs.enabled:
                obs.emit(self.sim.now, "activation-skipped",
                         node=node.node_id, idle_memory_mb=idle,
                         threshold_mb=threshold)
            return
        candidate = self._reserve_a_workstation(
            exclude=node.node_id, needed_mb=job.current_demand_mb)
        if candidate is None:
            return
        self.stats.extra["reservations"] = (
            self.stats.extra.get("reservations", 0) + 1)
        self.reservations.reserve(candidate, needed_mb=job.current_demand_mb)

    def _blocking_persisted(self, node: Workstation) -> bool:
        """Track consecutive blocking observations per node; a streak
        that lapses for more than two monitor periods resets."""
        now = self.sim.now
        last = self._last_blocked_at.get(node.node_id)
        gap_limit = 2.5 * self.config.monitor_interval_s
        if last is None or now - last > gap_limit:
            self._blocked_streak[node.node_id] = 0
        self._blocked_streak[node.node_id] = (
            self._blocked_streak.get(node.node_id, 0) + 1)
        self._last_blocked_at[node.node_id] = now
        return self._blocked_streak[node.node_id] >= self.blocking_persistence

    def _migratable_to_reservation(self, job: Job) -> bool:
        """Like :meth:`_migratable` but with a softer payoff bound: a
        reserved workstation removes the job's page faults entirely, so
        the transfer pays for itself sooner."""
        if job.state is not JobState.RUNNING:
            return False
        cost = self.cluster.network.migration_cost_s(job.current_demand_mb)
        return job.remaining_work_s > max(
            self.min_remaining_for_migration_s, cost)

    def _reserve_a_workstation(self, exclude: int,
                               needed_mb: float) -> Optional[Workstation]:
        """The most lightly loaded workstation with the largest idle
        memory (§2.1).  "Most lightly loaded" is operationalized as the
        node whose reserving period will end soonest: the estimated
        time until, with submissions blocked, enough memory has been
        freed for the candidate job."""
        if self._num_domains > 1:
            return self._reserve_in_domains(exclude, needed_mb)
        candidates = self._reserve_candidates(0, self.cluster.num_nodes,
                                              exclude)
        if not candidates:
            return None
        # Prefer nodes that are already not accepting submissions
        # (slot-capped): blocking those costs the cluster no admission
        # capacity during the reserving period.
        return min(candidates, key=self._reserve_key(needed_mb))

    def _reserve_key(self, needed_mb: float):
        return lambda n: (n.accepting, self._time_to_fit(n, needed_mb),
                          -n.idle_memory_mb, n.node_id)

    def _reserve_candidates(self, lo: int, hi: int, exclude: int) -> list:
        return [n for n in self.cluster.nodes[lo:hi]
                if n.alive and not n.reserved
                and n.node_id != exclude and not n.thrashing]

    def _reserve_in_domains(self, exclude: int,
                            needed_mb: float) -> Optional[Workstation]:
        """Per-domain reservation with cross-domain escalation: pick
        from the blocked node's own domain; when that domain has no
        reservable node, fall back to the summary-ranked remote domain
        that first offers one (the migration then crosses the domain
        boundary over the ordinary network model)."""
        directory = self.cluster.directory
        local = directory.domain_of(exclude)
        key = self._reserve_key(needed_mb)
        lo, hi = directory.domain_bounds(local)
        candidates = self._reserve_candidates(lo, hi, exclude)
        if candidates:
            return min(candidates, key=key)
        for d in directory.ranked_remote_domains(local):
            lo, hi = directory.domain_bounds(d)
            candidates = self._reserve_candidates(lo, hi, exclude)
            if not candidates:
                continue
            chosen = min(candidates, key=key)
            self.stats.extra["cross_domain_reservations"] = (
                self.stats.extra.get("cross_domain_reservations", 0) + 1)
            obs = self._obs_reserve
            if obs.enabled:
                obs.emit(self.sim.now, "cross-domain-reserve",
                         node=chosen.node_id, domain=d,
                         from_domain=local, blocked_node=exclude)
            return chosen
        return None

    @staticmethod
    def _time_to_fit(node: Workstation, needed_mb: float) -> float:
        """Estimated seconds until ``node`` (blocked from new
        submissions) has ``needed_mb`` idle: walk its jobs shortest-
        remaining-first, accumulating freed memory."""
        idle = node.idle_memory_mb
        if idle >= needed_mb:
            return 0.0
        horizon = 0.0
        jobs = sorted(node.running_jobs, key=lambda j: j.remaining_work_s)
        for job in jobs:
            horizon = job.remaining_work_s  # rates are <= 1, so this is
            idle += job.current_demand_mb   # an optimistic lower bound
            if idle >= needed_mb:
                return horizon
        return horizon

    # ------------------------------------------------------------------
    def _reservation_ready(self, reservation: Reservation) -> None:
        """The reserving period ended: adaptively either migrate the
        most memory-intensive faulting job in, or cancel."""
        victim = self.detector.most_memory_intensive_stuck_job()
        if victim is None:
            # No strictly *stuck* job; still serve the largest faulting
            # job if one exists (it was large enough to trigger the
            # reservation and remains the cluster's paging hot spot).
            victim = self._largest_faulting_job()
        if victim is None:
            # Blocking disappeared: back to normal load sharing.
            self._cancel_with_backoff(reservation)
            return
        job, node = victim
        if not self._migratable_to_reservation(job):
            self._cancel_with_backoff(reservation)
            return
        self._migrate_to_reservation(job, node, reservation)

    def _victim_score(self, job: Job) -> float:
        """Rank migration victims: by memory demand (the paper's
        rule), optionally weighted by the job's age as a predictor of
        remaining lifetime (§2.2, citing [5])."""
        if not self.age_weighted_victims:
            return job.current_demand_mb
        age = max(0.0, self.sim.now - job.submit_time)
        return job.current_demand_mb * (1.0 + age)

    def _largest_faulting_job(self):
        best = None
        for node in self.cluster.nodes:
            if node.reserved:
                continue
            job = node.most_memory_intensive_job(faulting_only=True)
            if job is None or not self._migratable_to_reservation(job):
                continue
            if best is None or (self._victim_score(job)
                                > self._victim_score(best[0])):
                best = (job, node)
        return best

    def _cancel_with_backoff(self, reservation: Reservation) -> None:
        """Adaptive cancellation: blocking disappeared during the
        reserving period, so release the node and hold off on new
        reservations for the backoff window."""
        self.stats.extra["backoff_cancellations"] = (
            self.stats.extra.get("backoff_cancellations", 0) + 1)
        obs = self._obs_reserve
        if obs.enabled:
            obs.emit(self.sim.now, "backoff-cancel",
                     node=reservation.node.node_id,
                     reservation=reservation.reservation_id,
                     backoff_until=self.sim.now + self.reservation_backoff_s)
        self.reservations.cancel(reservation)
        self._backoff_until = self.sim.now + self.reservation_backoff_s

    def _migrate_to_reservation(self, job: Job, source: Workstation,
                                reservation: Reservation) -> None:
        job.dedicated = True
        self.reservations.assign(reservation, job)
        self.stats.extra["reconfiguration_migrations"] = (
            self.stats.extra.get("reconfiguration_migrations", 0) + 1)
        self.migrate(
            job, source, reservation.node,
            on_arrival=functools.partial(
                self.reservations.job_arrived, reservation),
            on_abandoned=functools.partial(
                self.reservations.migration_abandoned, reservation))

    # ------------------------------------------------------------------
    # checkpoint fork support
    # ------------------------------------------------------------------
    def retire(self) -> None:
        """On top of the base retirement, wind the reservation machinery
        down: reserving periods that have not served yet are cancelled
        (their nodes return to normal load sharing for the successor),
        and the ready hook is detached so a drain completing later
        cannot trigger a migration by the retired policy.  SERVING
        reservations keep draining their already-migrated jobs — that
        work is physically on the reserved node — and release normally
        through the manager's job-finished listener."""
        super().retire()
        self.reservations.on_ready = None
        for reservation in list(self.reservations.active_reservations):
            if reservation.state is ReservationState.RESERVING:
                self.reservations.cancel(reservation)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @property
    def reservation_timeline(self):
        return self.reservations.timeline
