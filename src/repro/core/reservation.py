"""Reservation lifecycle for virtual cluster reconfiguration (§2.1).

A reservation goes through:

``RESERVING``
    The chosen workstation stops accepting submissions/migrations and
    drains.  The *reserving period* ends when its running jobs have
    completed (``ReservationMode.DRAIN_ALL``, the paper's primary
    rule) or as soon as its idle memory fits the candidate job
    (``ReservationMode.FIRST_FIT``, the alternative the paper mentions
    parenthetically).  If blocking disappears meanwhile, the
    reservation is cancelled and the node returns to normal load
    sharing — the *adaptive* part.

``SERVING``
    Large jobs are migrated in.  The reservation is *released* (flag
    turned off, normal submissions resume) when the workstation
    completes all migrated jobs.

The manager enforces an upper bound on simultaneously reserved
workstations (§2.2: reserving too many would starve normal jobs) and a
reserving-period timeout (§2.3: if a workstation cannot be reserved
within a predetermined interval the cluster is truly heavily loaded).
"""

from __future__ import annotations

import enum
import functools
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job
from repro.cluster.workstation import Workstation


class ReservationMode(enum.Enum):
    """When does the reserving period end?"""

    DRAIN_ALL = "drain-all"    # all running jobs complete (paper default)
    FIRST_FIT = "first-fit"    # idle memory fits the candidate job


class ReservationState(enum.Enum):
    RESERVING = "reserving"
    SERVING = "serving"
    RELEASED = "released"
    CANCELLED = "cancelled"


_res_counter = itertools.count()


@dataclass
class Reservation:
    """One reserved workstation and its special-service bookkeeping."""

    node: Workstation
    mode: ReservationMode
    needed_mb: float
    created_at: float
    reservation_id: int = field(default_factory=lambda: next(_res_counter))
    state: ReservationState = ReservationState.RESERVING
    serving_since: Optional[float] = None
    closed_at: Optional[float] = None
    migrated_job_ids: Set[int] = field(default_factory=set)
    #: Jobs currently in flight towards this reservation.
    inbound: int = 0

    @property
    def active(self) -> bool:
        return self.state in (ReservationState.RESERVING,
                              ReservationState.SERVING)

    def ready(self) -> bool:
        """Has the reserving period ended?"""
        if self.state is not ReservationState.RESERVING:
            return False
        if self.node.num_running == 0:
            return True
        if self.mode is ReservationMode.FIRST_FIT:
            return self.node.idle_memory_mb >= self.needed_mb
        return False

    def has_capacity_for(self, job: Job) -> bool:
        """Can this (serving) reservation take another large job?"""
        if not self.active:
            return False
        node = self.node
        return (node.has_free_slot
                and node.idle_memory_mb >= job.current_demand_mb - 1e-9)


@dataclass(frozen=True)
class ReservationEvent:
    """Timeline entry (reserve / ready / assign / release / ...)."""

    time: float
    kind: str
    node_id: int
    reservation_id: int
    job_id: Optional[int] = None


class ReservationManager:
    """Tracks reservations and drives their lifecycle."""

    def __init__(self, cluster: Cluster,
                 mode: ReservationMode = ReservationMode.DRAIN_ALL,
                 max_reserved: int = 4,
                 reserve_timeout_s: float = 300.0):
        if max_reserved < 1:
            raise ValueError("max_reserved must be at least 1")
        if max_reserved >= cluster.num_nodes:
            raise ValueError("cannot allow reserving every node")
        self.cluster = cluster
        self.mode = mode
        self.max_reserved = max_reserved
        self.reserve_timeout_s = reserve_timeout_s
        self._by_node: Dict[int, Reservation] = {}
        self.history: List[Reservation] = []
        self.timeline: List[ReservationEvent] = []
        self._obs = cluster.obs.channel("reconfig.reservation")
        #: Fired when a reserving period completes: callback(reservation).
        self.on_ready: Optional[Callable[[Reservation], None]] = None
        cluster.on_job_finished(self._job_finished)
        if cluster.faults is not None:
            cluster.faults.reservation_manager = self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def active_reservations(self) -> List[Reservation]:
        return [r for r in self._by_node.values() if r.active]

    @property
    def num_reserved(self) -> int:
        return len(self.active_reservations)

    def can_reserve(self) -> bool:
        return self.num_reserved < self.max_reserved

    def reservation_for_node(self, node_id: int) -> Optional[Reservation]:
        reservation = self._by_node.get(node_id)
        return reservation if reservation is not None and reservation.active \
            else None

    def serving_reservation_with_capacity(self, job: Job
                                          ) -> Optional[Reservation]:
        """The paper's reuse path: an existing reserved workstation
        with enough available resources for ``job``."""
        candidates = [r for r in self.active_reservations
                      if r.state is ReservationState.SERVING
                      and r.has_capacity_for(job)]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.node.idle_memory_mb)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reserve(self, node: Workstation, needed_mb: float) -> Reservation:
        """Start a reserving period on ``node``."""
        if node.reserved:
            raise ValueError(f"node {node.node_id} is already reserved")
        if not self.can_reserve():
            raise ValueError("reservation limit reached")
        node.reserved = True
        reservation = Reservation(node=node, mode=self.mode,
                                  needed_mb=needed_mb,
                                  created_at=self.cluster.sim.now)
        self._by_node[node.node_id] = reservation
        self.history.append(reservation)
        self._log("reserve", reservation)
        if self.reserve_timeout_s > 0:
            self.cluster.sim.schedule(
                self.reserve_timeout_s,
                functools.partial(self._timeout, reservation), daemon=True)
        # An idle node is ready immediately (zero-length reserving period).
        if reservation.ready():
            self._mark_ready(reservation)
        return reservation

    def assign(self, reservation: Reservation, job: Job) -> None:
        """Record that ``job`` is being migrated into ``reservation``
        (call before the transfer starts)."""
        if not reservation.active:
            raise ValueError("reservation is not active")
        reservation.state = ReservationState.SERVING
        if reservation.serving_since is None:
            reservation.serving_since = self.cluster.sim.now
        reservation.migrated_job_ids.add(job.job_id)
        reservation.inbound += 1
        self._log("assign", reservation, job.job_id)

    def job_arrived(self, reservation: Reservation, job: Job) -> None:
        """Record that an inbound migration landed."""
        reservation.inbound = max(0, reservation.inbound - 1)
        self._log("arrive", reservation, job.job_id)

    def cancel(self, reservation: Reservation) -> None:
        """Blocking disappeared during the reserving period: return the
        node to normal load sharing."""
        if reservation.state is not ReservationState.RESERVING:
            return
        reservation.state = ReservationState.CANCELLED
        reservation.closed_at = self.cluster.sim.now
        self._close(reservation, "cancel")

    def release(self, reservation: Reservation) -> None:
        """All migrated jobs completed: turn the reservation flag off."""
        if not reservation.active:
            return
        reservation.state = ReservationState.RELEASED
        reservation.closed_at = self.cluster.sim.now
        self._close(reservation, "release")

    def _close(self, reservation: Reservation, kind: str) -> None:
        node = reservation.node
        node.reserved = False
        self._by_node.pop(node.node_id, None)
        self._log(kind, reservation)
        self.cluster.notify_node_changed(node)

    def _timeout(self, reservation: Reservation) -> None:
        if reservation.state is ReservationState.RESERVING:
            self._log("timeout", reservation)
            self.cancel(reservation)

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    def node_crashed(self, node_id: int) -> Optional[Reservation]:
        """A reserved workstation failed: abort its reservation so the
        reconfiguration routine can re-trigger elsewhere.  Returns the
        aborted reservation, or None if the node held none."""
        reservation = self._by_node.get(node_id)
        if reservation is None or not reservation.active:
            return None
        reservation.state = ReservationState.CANCELLED
        reservation.closed_at = self.cluster.sim.now
        self._close(reservation, "crash-abort")
        return reservation

    def migration_abandoned(self, reservation: Reservation,
                            job: Job) -> None:
        """An inbound migration never landed (transfer retries
        exhausted): undo its assignment so the reservation does not
        wait forever for a job that fell back to its source."""
        job.dedicated = False
        if not reservation.active:
            return
        reservation.inbound = max(0, reservation.inbound - 1)
        reservation.migrated_job_ids.discard(job.job_id)
        self._log("abandon", reservation, job.job_id)
        if (reservation.state is ReservationState.SERVING
                and not reservation.migrated_job_ids
                and reservation.inbound == 0):
            self.release(reservation)

    # ------------------------------------------------------------------
    # event wiring
    # ------------------------------------------------------------------
    def _job_finished(self, job: Job, node: Workstation) -> None:
        reservation = self._by_node.get(node.node_id)
        if reservation is None or not reservation.active:
            return
        if reservation.state is ReservationState.SERVING:
            reservation.migrated_job_ids.discard(job.job_id)
            # The paper releases "when the reserved workstation
            # completes executions of all the migrated jobs"; leftover
            # local jobs (FIRST_FIT mode) do not extend the reservation.
            if not reservation.migrated_job_ids and reservation.inbound == 0:
                self.release(reservation)
            return
        if reservation.ready():
            self._mark_ready(reservation)

    def _mark_ready(self, reservation: Reservation) -> None:
        self._log("ready", reservation)
        if self.on_ready is not None:
            self.on_ready(reservation)

    def _log(self, kind: str, reservation: Reservation,
             job_id: Optional[int] = None) -> None:
        now = self.cluster.sim.now
        self.timeline.append(ReservationEvent(
            time=now, kind=kind,
            node_id=reservation.node.node_id,
            reservation_id=reservation.reservation_id, job_id=job_id))
        obs = self._obs
        if obs.enabled:
            obs.emit(now, kind, node=reservation.node.node_id,
                     reservation=reservation.reservation_id, job=job_id,
                     needed_mb=reservation.needed_mb,
                     mode=reservation.mode.value)
