"""Parallel execution of independent experiment runs.

Every figure/table/ablation in the paper is a sweep of mutually
independent trace-driven simulations (clusters x traces x policies),
which makes the reproduction embarrassingly parallel: each run is
described by a picklable :class:`RunSpec`, executed in a worker
process, and reduced to its :class:`~repro.metrics.summary.RunSummary`
before crossing the process boundary (the live ``Cluster`` /
``Simulator`` objects are full of scheduled closures and are neither
picklable nor needed by any report).

Determinism is the invariant: a worker runs exactly the same
``run_experiment`` call the serial path would, from the same seeds, so
``run_specs(specs, jobs=N)`` returns summaries identical to
``jobs=1`` for every ``N`` — a property asserted by the test suite and
the perf harness.

Sweep telemetry: every worker measures its run (wall seconds, executed
simulator events) and reports the timing back to the parent alongside
the summary.  With progress enabled (``enable_progress`` or the
``progress`` argument) the parent renders a live one-line progress
display as runs complete, and the per-spec timings accumulate in a
module buffer that callers drain with ``pop_sweep_timings`` /
``render_sweep_timings`` — the post-sweep timing table of the
``--obs`` CLI mode.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from repro.cluster.config import ClusterConfig
from repro.faults.config import FaultConfig
from repro.metrics.summary import RunSummary
from repro.workload.programs import WorkloadGroup


@dataclass(frozen=True)
class RunSpec:
    """One independent experiment run, fully described by value.

    The spec mirrors :func:`repro.experiments.runner.run_experiment`'s
    signature; ``label`` is a free-form tag callers may use to map
    results back to sweep variants (it does not affect execution).
    """

    group: WorkloadGroup
    trace_index: int
    policy: str = "g-loadsharing"
    seed: int = 0
    scale: float = 1.0
    config: Optional[ClusterConfig] = None
    policy_kwargs: Optional[Dict[str, object]] = None
    #: Failure model of the run (overrides ``config.faults``); crosses
    #: the process boundary by value like everything else in the spec,
    #: so serial and parallel sweeps replay identical fault schedules.
    faults: Optional[FaultConfig] = None
    label: Optional[str] = None
    #: Attach a metrics-only ObsSession to the run; the snapshot lands
    #: in ``summary.extra`` under ``obs.`` and crosses the process
    #: boundary with the summary (see repro.obs).
    obs: bool = False
    #: Trace job lifecycles (slowdown attribution); the aggregates land
    #: in ``summary.extra`` as ``obs.lifecycle_*`` and feed the sweep
    #: comparison reports.  Implies an ObsSession.
    lifecycle: bool = False
    #: Sample per-node cluster state every N simulated seconds; the
    #: aggregates land in ``summary.extra`` as ``obs.sampler_*``.
    #: Implies an ObsSession.
    sample_period: Optional[float] = None

    def describe(self) -> str:
        extras = f" kwargs={self.policy_kwargs}" if self.policy_kwargs else ""
        if self.faults is not None:
            extras += (f" faults(mtbf={self.faults.mtbf_s}, "
                       f"fault_seed={self.faults.fault_seed})")
        return (f"{self.group.value}-trace-{self.trace_index} "
                f"policy={self.policy} seed={self.seed} "
                f"scale={self.scale}{extras}")


class SweepError(RuntimeError):
    """A worker run failed; carries the failing :class:`RunSpec`."""

    def __init__(self, spec: RunSpec, detail: str):
        super().__init__(f"run failed for spec [{spec.describe()}]:\n{detail}")
        self.spec = spec
        self.detail = detail


@dataclass(frozen=True)
class SpecTiming:
    """Per-run telemetry a worker reports back to the parent."""

    label: str
    wall_s: float
    events: int

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


#: When True every executed spec gets a metrics-only ObsSession even if
#: ``spec.obs`` is False — the ``--obs`` switch of the sweep CLIs.
#: Module state is inherited by fork-start workers, so setting it
#: before ``run_specs`` covers the parallel path too.
_OBS_ALL_SPECS = False

#: Live progress stream (None = off); see :func:`enable_progress`.
_PROGRESS_STREAM: Optional[TextIO] = None

#: Telemetry of completed sweeps, in submission order, drained by
#: :func:`pop_sweep_timings`.
_SWEEP_TIMINGS: List[SpecTiming] = []


def set_obs_default(enabled: bool) -> None:
    """Instrument every subsequent spec run with obs metrics."""
    global _OBS_ALL_SPECS
    _OBS_ALL_SPECS = bool(enabled)


def enable_progress(stream: Optional[TextIO] = None) -> None:
    """Render a live progress line for subsequent ``run_specs`` calls."""
    global _PROGRESS_STREAM
    _PROGRESS_STREAM = stream if stream is not None else sys.stderr


def disable_progress() -> None:
    global _PROGRESS_STREAM
    _PROGRESS_STREAM = None


def pop_sweep_timings() -> List[SpecTiming]:
    """Drain the accumulated per-spec timings (submission order)."""
    timings = list(_SWEEP_TIMINGS)
    _SWEEP_TIMINGS.clear()
    return timings


def render_sweep_timings(timings: Sequence[SpecTiming]) -> str:
    """The post-sweep timing table (slowest runs surface regressions)."""
    from repro.metrics.report import render_table

    rows = [{
        "run": t.label,
        "wall (s)": t.wall_s,
        "events": float(t.events),
        "ev/s": t.events_per_s,
    } for t in timings]
    total = sum(t.wall_s for t in timings)
    rows.append({"run": "TOTAL", "wall (s)": total,
                 "events": float(sum(t.events for t in timings)),
                 "ev/s": (sum(t.events for t in timings) / total
                          if total > 0 else 0.0)})
    return render_table(rows, ("run", "wall (s)", "events", "ev/s"),
                        title="Sweep timing")


def _execute_timed(spec: RunSpec) -> Tuple[RunSummary, SpecTiming]:
    """Run one spec in-process; summary plus worker-side telemetry."""
    # Imported lazily: runner imports the policy registry (and through
    # it most of the package), while RunSpec itself stays importable
    # from anywhere without cycles.
    from repro.experiments.runner import run_experiment

    obs = None
    if (spec.obs or spec.lifecycle or spec.sample_period is not None
            or _OBS_ALL_SPECS):
        from repro.obs.session import ObsSession

        obs = ObsSession(record_events=False, run_label=spec.describe(),
                         lifecycle=spec.lifecycle,
                         sample_period=spec.sample_period)
    kwargs = dict(spec.policy_kwargs) if spec.policy_kwargs else None
    started = time.perf_counter()
    result = run_experiment(spec.group, spec.trace_index, policy=spec.policy,
                            seed=spec.seed, config=spec.config,
                            scale=spec.scale, policy_kwargs=kwargs, obs=obs,
                            faults=spec.faults)
    wall_s = time.perf_counter() - started
    timing = SpecTiming(label=spec.label or spec.describe(), wall_s=wall_s,
                        events=result.cluster.sim.event_count)
    return result.summary, timing


def execute_spec(spec: RunSpec) -> RunSummary:
    """Run one spec in-process and return its summary."""
    return _execute_timed(spec)[0]


def _worker(spec: RunSpec) -> Tuple[str, object, Optional[SpecTiming]]:
    """Process-pool entry point.

    Failures are returned as formatted tracebacks rather than raised:
    arbitrary exception objects may not survive pickling back to the
    parent, a traceback string always does.
    """
    try:
        summary, timing = _execute_timed(spec)
        return ("ok", summary, timing)
    except Exception:  # noqa: BLE001 - reported with full traceback
        return ("error", traceback.format_exc(), None)


def default_jobs() -> int:
    """Worker count used for ``jobs=0`` / ``jobs=None``.

    Uses the CPU affinity mask — the cores this process may actually
    run on — rather than the machine-wide count: on an affinity-
    restricted box (containers, ``taskset``) ``os.cpu_count()`` would
    oversubscribe the few available cores and make the "parallel" leg
    slower than serial.  Falls back to ``os.cpu_count()`` where
    affinity is unsupported.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform quirk
            pass
    return os.cpu_count() or 1


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _progress_tick(done: int, total: int, label: str,
                   stream: Optional[TextIO]) -> None:
    if stream is None:
        return
    line = f"\r[{done}/{total}] {label}"
    # Overwrite the previous line; pad so a shorter label clears it.
    stream.write(line.ljust(79)[:200])
    if done == total:
        stream.write("\n")
    stream.flush()


def run_specs(specs: Sequence[RunSpec], jobs: int = 1,
              progress: Optional[bool] = None) -> List[RunSummary]:
    """Execute ``specs`` and return their summaries in input order.

    ``jobs`` is the number of worker processes; ``0``/``None`` means
    one per core.  With ``jobs=1`` — or on platforms without the
    ``fork`` start method, where spawning workers would re-import the
    world per process — the specs run serially in-process, so callers
    can pass a user-supplied ``--jobs`` value straight through without
    platform checks.  Results are byte-identical either way.

    ``progress`` overrides the module-level :func:`enable_progress`
    setting for this call (True renders to stderr, False disables).
    Per-spec timings are appended to the module buffer in submission
    order either way; drain them with :func:`pop_sweep_timings`.

    A failing run raises :class:`SweepError` with the offending
    :class:`RunSpec` attached as ``.spec``; remaining workers are not
    waited on beyond pool shutdown.
    """
    specs = list(specs)
    if jobs is None or jobs == 0:
        jobs = default_jobs()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if progress is None:
        stream = _PROGRESS_STREAM
    else:
        stream = sys.stderr if progress else None
    total = len(specs)
    if jobs == 1 or len(specs) <= 1 or not _fork_available():
        results = []
        timings = []
        for done, spec in enumerate(specs, start=1):
            try:
                summary, timing = _execute_timed(spec)
            except Exception:  # noqa: BLE001 - uniform error surface
                raise SweepError(spec, traceback.format_exc()) from None
            results.append(summary)
            timings.append(timing)
            _progress_tick(done, total, f"{timing.label} "
                           f"({timing.wall_s:.1f}s)", stream)
        _SWEEP_TIMINGS.extend(timings)
        return results

    context = multiprocessing.get_context("fork")
    workers = min(jobs, len(specs))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=context) as pool:
        futures = {pool.submit(_worker, spec): index
                   for index, spec in enumerate(specs)}
        outcomes: List[Optional[Tuple[str, object, Optional[SpecTiming]]]] \
            = [None] * total
        # Consume completions as they land so the progress line is
        # live; errors are *raised* afterwards in submission order so
        # SweepError deterministically names the first failing spec.
        done = 0
        for future in as_completed(futures):
            index = futures[future]
            outcomes[index] = future.result()
            done += 1
            timing = outcomes[index][2]
            label = (f"{timing.label} ({timing.wall_s:.1f}s)"
                     if timing is not None
                     else f"{specs[index].describe()} FAILED")
            _progress_tick(done, total, label, stream)
    results = []
    timings = []
    for spec, outcome in zip(specs, outcomes):
        status, payload, timing = outcome
        if status == "error":
            raise SweepError(spec, str(payload))
        results.append(payload)
        timings.append(timing)
    _SWEEP_TIMINGS.extend(timings)
    return results
