"""Parallel execution of independent experiment runs.

Every figure/table/ablation in the paper is a sweep of mutually
independent trace-driven simulations (clusters x traces x policies),
which makes the reproduction embarrassingly parallel: each run is
described by a picklable :class:`RunSpec`, executed in a worker
process, and reduced to its :class:`~repro.metrics.summary.RunSummary`
before crossing the process boundary (the live ``Cluster`` /
``Simulator`` objects are full of scheduled closures and are neither
picklable nor needed by any report).

Determinism is the invariant: a worker runs exactly the same
``run_experiment`` call the serial path would, from the same seeds, so
``run_specs(specs, jobs=N)`` returns summaries identical to
``jobs=1`` for every ``N`` — a property asserted by the test suite and
the perf harness.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.metrics.summary import RunSummary
from repro.workload.programs import WorkloadGroup


@dataclass(frozen=True)
class RunSpec:
    """One independent experiment run, fully described by value.

    The spec mirrors :func:`repro.experiments.runner.run_experiment`'s
    signature; ``label`` is a free-form tag callers may use to map
    results back to sweep variants (it does not affect execution).
    """

    group: WorkloadGroup
    trace_index: int
    policy: str = "g-loadsharing"
    seed: int = 0
    scale: float = 1.0
    config: Optional[ClusterConfig] = None
    policy_kwargs: Optional[Dict[str, object]] = None
    label: Optional[str] = None

    def describe(self) -> str:
        extras = f" kwargs={self.policy_kwargs}" if self.policy_kwargs else ""
        return (f"{self.group.value}-trace-{self.trace_index} "
                f"policy={self.policy} seed={self.seed} "
                f"scale={self.scale}{extras}")


class SweepError(RuntimeError):
    """A worker run failed; carries the failing :class:`RunSpec`."""

    def __init__(self, spec: RunSpec, detail: str):
        super().__init__(f"run failed for spec [{spec.describe()}]:\n{detail}")
        self.spec = spec
        self.detail = detail


def execute_spec(spec: RunSpec) -> RunSummary:
    """Run one spec in-process and return its summary."""
    # Imported lazily: runner imports the policy registry (and through
    # it most of the package), while RunSpec itself stays importable
    # from anywhere without cycles.
    from repro.experiments.runner import run_experiment

    kwargs = dict(spec.policy_kwargs) if spec.policy_kwargs else None
    return run_experiment(spec.group, spec.trace_index, policy=spec.policy,
                          seed=spec.seed, config=spec.config,
                          scale=spec.scale, policy_kwargs=kwargs).summary


def _worker(spec: RunSpec) -> Tuple[str, object]:
    """Process-pool entry point.

    Failures are returned as formatted tracebacks rather than raised:
    arbitrary exception objects may not survive pickling back to the
    parent, a traceback string always does.
    """
    try:
        return ("ok", execute_spec(spec))
    except Exception:  # noqa: BLE001 - reported with full traceback
        return ("error", traceback.format_exc())


def default_jobs() -> int:
    """Worker count used for ``jobs=0`` / ``jobs=None``.

    Uses the CPU affinity mask — the cores this process may actually
    run on — rather than the machine-wide count: on an affinity-
    restricted box (containers, ``taskset``) ``os.cpu_count()`` would
    oversubscribe the few available cores and make the "parallel" leg
    slower than serial.  Falls back to ``os.cpu_count()`` where
    affinity is unsupported.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform quirk
            pass
    return os.cpu_count() or 1


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def run_specs(specs: Sequence[RunSpec], jobs: int = 1) -> List[RunSummary]:
    """Execute ``specs`` and return their summaries in input order.

    ``jobs`` is the number of worker processes; ``0``/``None`` means
    one per core.  With ``jobs=1`` — or on platforms without the
    ``fork`` start method, where spawning workers would re-import the
    world per process — the specs run serially in-process, so callers
    can pass a user-supplied ``--jobs`` value straight through without
    platform checks.  Results are byte-identical either way.

    A failing run raises :class:`SweepError` with the offending
    :class:`RunSpec` attached as ``.spec``; remaining workers are not
    waited on beyond pool shutdown.
    """
    specs = list(specs)
    if jobs is None or jobs == 0:
        jobs = default_jobs()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 1 or len(specs) <= 1 or not _fork_available():
        results = []
        for spec in specs:
            try:
                results.append(execute_spec(spec))
            except Exception:  # noqa: BLE001 - uniform error surface
                raise SweepError(spec, traceback.format_exc()) from None
        return results

    context = multiprocessing.get_context("fork")
    workers = min(jobs, len(specs))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=context) as pool:
        futures = [pool.submit(_worker, spec) for spec in specs]
        results = []
        for spec, future in zip(specs, futures):
            status, payload = future.result()
            if status == "error":
                raise SweepError(spec, str(payload))
            results.append(payload)
    return results
