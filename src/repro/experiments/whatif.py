"""What-if replay: branch one run into competing policy universes.

The checkpoint layer (:mod:`repro.sim.checkpoint`) makes a mid-run
snapshot a first-class artifact; this experiment uses it the way an
operator would: run the constructed blocking scenario under a base
policy to a decision instant, snapshot, then replay the *identical*
remainder — same pending queue, same in-flight transfers, same RNG
futures — once per candidate policy.  Because every branch starts
from the same serialized world, the comparison isolates the policy
decision itself: no re-randomized workload, no divergent warm-up.

The control branch (the base policy continued) is restored *without*
forking, so it is byte-identical to the uninterrupted baseline run —
a built-in self-check that the branching harness adds nothing.
Forked branches swap the policy at the snapshot instant and inherit
the pending queue by reference (see
:func:`repro.sim.checkpoint.fork`).
"""

from __future__ import annotations

import html
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentResult
from repro.experiments.scenario import run_blocking_scenario
from repro.sim.checkpoint import fork, load_checkpoint, resume

#: Decision instant (simulated seconds): the scenario's wedges are
#: detected and starving by now, but most work is still ahead, so the
#: branch policies genuinely compete for the remainder.
DEFAULT_BRANCH_AT = 300.0

#: Branches compared by default: the paper's two contenders.
DEFAULT_POLICIES = ("g-loadsharing", "v-reconfiguration")


@dataclass
class WhatifBranch:
    """One policy universe replayed from the shared snapshot."""

    policy_key: str
    forked: bool
    result: ExperimentResult

    @property
    def label(self) -> str:
        suffix = "" if self.forked else " (continued)"
        return f"{self.result.summary.policy}{suffix}"


@dataclass
class WhatifReport:
    """Baseline run plus the branches grown from its snapshot."""

    base_policy: str
    branch_at: float
    seed: int
    baseline: ExperimentResult
    branches: List[WhatifBranch] = field(default_factory=list)

    _METRICS = (
        ("average slowdown", "average_slowdown", "{:.2f}"),
        ("makespan (s)", "makespan_s", "{:.1f}"),
        ("total paging time (s)", "total_paging_time_s", "{:.1f}"),
        ("migrations", "migrations", "{:d}"),
    )

    def rows(self) -> List[Dict[str, object]]:
        """One row per metric, one column per branch."""
        out = []
        for name, attr, fmt in self._METRICS:
            row: Dict[str, object] = {"metric": name}
            for branch in self.branches:
                row[branch.label] = getattr(branch.result.summary, attr)
            out.append(row)
        return out

    def render(self) -> str:
        labels = [branch.label for branch in self.branches]
        width = max(len(label) for label in labels) + 2
        lines = [
            f"What-if replay — {self.base_policy} run branched at "
            f"t={self.branch_at:g}s (seed {self.seed}, "
            f"{self.baseline.cluster.num_nodes} nodes):"
        ]
        for name, attr, fmt in self._METRICS:
            cells = "".join(
                f"{fmt.format(getattr(b.result.summary, attr)):>{width}}"
                for b in self.branches)
            lines.append(f"  {name:26s}{cells}")
        header = "".join(f"{label:>{width}}" for label in labels)
        lines.insert(1, f"  {'':26s}{header}")
        return "\n".join(lines)

    def write_report(self, target: str) -> str:
        """Write a self-contained HTML comparison of the branches."""
        from repro.obs.report import write_report

        head = "".join(f"<th>{html.escape(b.label)}</th>"
                       for b in self.branches)
        body_rows = []
        for name, attr, fmt in self._METRICS:
            values = [getattr(b.result.summary, attr)
                      for b in self.branches]
            best = min(values)
            cells = "".join(
                f"<td class={'best' if v == best else 'v'}>"
                f"{fmt.format(v)}</td>" for v in values)
            body_rows.append(
                f"<tr><td class=m>{html.escape(name)}</td>{cells}</tr>")
        doc = f"""<!doctype html>
<html><head><meta charset="utf-8">
<title>What-if replay — branched at t={self.branch_at:g}s</title>
<style>
 body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem; }}
 table {{ border-collapse: collapse; }}
 th, td {{ border: 1px solid #ccc; padding: .4rem .8rem;
           text-align: right; }}
 td.m {{ text-align: left; }}
 td.best {{ background: #e6f4e6; font-weight: 600; }}
 .note {{ color: #555; max-width: 60ch; }}
</style></head><body>
<h1>What-if replay</h1>
<p class=note>A {html.escape(self.base_policy)} run of the blocking
scenario (seed {self.seed}, {self.baseline.cluster.num_nodes} nodes)
was checkpointed at t={self.branch_at:g}s and the identical remainder
replayed under each policy below.  Every branch starts from the same
serialized world — pending queue, in-flight transfers and RNG futures
included — so the columns differ only by the policy decision.  The
continued branch is byte-identical to the uninterrupted baseline.</p>
<table><tr><th></th>{head}</tr>
{os.linesep.join(body_rows)}
</table></body></html>
"""
        return write_report(target, doc)


def run_whatif_experiment(seed: int = 0,
                          branch_at: float = DEFAULT_BRANCH_AT,
                          base_policy: str = "g-loadsharing",
                          policies: Sequence[str] = DEFAULT_POLICIES,
                          num_nodes: int = 32,
                          faults=None,
                          checkpoint_path: Optional[str] = None
                          ) -> WhatifReport:
    """Branch a scenario run at ``branch_at`` into one universe per
    policy in ``policies`` (see module docstring).

    ``checkpoint_path`` keeps the snapshot file for later inspection
    (``--restore-from``, the golden-fixture tooling); by default it
    lives in a temporary file deleted before returning.
    """
    own_path = checkpoint_path is None
    if own_path:
        handle, checkpoint_path = tempfile.mkstemp(suffix=".ckpt",
                                                   prefix="repro-whatif-")
        os.close(handle)
    try:
        baseline = run_blocking_scenario(
            base_policy, seed=seed, num_nodes=num_nodes, faults=faults,
            checkpoint_at=branch_at, checkpoint_to=checkpoint_path)
        report = WhatifReport(base_policy=base_policy,
                              branch_at=branch_at, seed=seed,
                              baseline=baseline)
        for policy_key in policies:
            restored = load_checkpoint(checkpoint_path)
            forked = policy_key != base_policy
            if forked:
                restored = fork(restored, policy=policy_key)
            report.branches.append(WhatifBranch(
                policy_key=policy_key, forked=forked,
                result=resume(restored)))
        return report
    finally:
        if own_path:
            os.unlink(checkpoint_path)


__all__ = ["DEFAULT_BRANCH_AT", "DEFAULT_POLICIES", "WhatifBranch",
           "WhatifReport", "run_whatif_experiment"]
