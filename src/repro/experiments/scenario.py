"""Constructed blocking scenario: the paper's geometry, by design.

The published traces leave the blocking problem's frequency to chance
(it depends on which nodes big jobs happen to land on), and under a
work-conserving simulator the surrounding queue dynamics dominate any
trace-level construction.  This module therefore demonstrates the
mechanism's envelope on a *deterministic batch*: a 32-node cluster is
driven into the paper's §2 blocking state, and the two policies race
to resolve it.

The constructed state (all submissions in the first second, placed by
the policies themselves through normal home-node submission):

* **wedge nodes** (4 of 32): a large job whose working set grows
  quickly to 240 MB — more than any node's idle memory while other
  jobs run ("could not fit in any single workstation with other
  running jobs") — co-located with two long I/O-active medium jobs.
  Once grown, the large job starves under the biased residency model
  (§2.2: large jobs are less competitive);
* **filler nodes** (28 of 32): four short I/O-active fillers each,
  occupying every CPU-threshold slot while using little memory — the
  paper's "workstations reaching their CPU thresholds may still have
  idle memory space".

G-Loadsharing finds no qualified migration destination for a starving
240 MB job (no node has both a free slot and a big-enough idle slab):
the blocking problem.  The large jobs crawl until their companions
drain.  V-Reconfiguration reserves a filler workstation — whose idle
memory already fits the job, so the first-fit reserving period ends
immediately — and migrates the starving job there, resolving each
wedge within a couple of monitor periods.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.config import ClusterConfig, WorkstationSpec
from repro.experiments.runner import ExperimentResult, run_trace
from repro.sim.rng import RandomStreams
from repro.workload.programs import WorkloadGroup
from repro.workload.trace import Trace, TraceJob

#: Cluster used by the scenario (the paper's cluster 1 dimensions,
#: with the paper's original 10 Mbps Ethernet: scenario job lifetimes
#: are long enough that a working-set transfer pays for itself).
SCENARIO_CLUSTER = ClusterConfig(
    spec=WorkstationSpec(cpu_mhz=400, memory_mb=384.0, swap_mb=380.0),
    cpu_threshold=4,
    network_bandwidth_mbps=10.0,
)


def build_blocking_trace(num_nodes: int = 32,
                         seed: int = 0,
                         num_wedges: Optional[int] = None,
                         large_work_s: float = 900.0,
                         medium_work_s: float = 300.0,
                         filler_work_s: float = 150.0) -> Trace:
    """Construct the blocking batch described in the module docstring.

    All jobs are submitted within the first second to empty nodes, so
    home-first placement reproduces the designed layout exactly.
    """
    if num_wedges is None:
        num_wedges = max(1, num_nodes // 8)
    if num_wedges >= num_nodes:
        raise ValueError("need at least one filler node")
    jitter = RandomStreams(seed).spawn("blocking-batch").stream("jitter")
    jobs: List[TraceJob] = []
    index = 0

    def add(t: float, work: float, peak: float, home: int,
            phases=None, io: float = 0.0) -> None:
        nonlocal index
        jobs.append(TraceJob(
            job_index=index, submit_time=t, program="scenario",
            lifetime_s=work, home_node=home, peak_demand_mb=peak,
            io_stall_per_cpu_s=io,
            memory_phases=phases or [(0.0, peak)]))
        index += 1

    # Wedge nodes: large job + two medium companions.
    for w in range(num_wedges):
        home = num_nodes - 1 - w
        work = large_work_s * (1.0 + 0.2 * jitter.random())
        add(0.10 + 0.01 * w, work, peak=240.0, home=home,
            phases=[(0.0, 130.0), (20.0, 190.0), (40.0, 240.0)])
        for k in range(2):
            peak = 112.0 + 10.0 * jitter.random()
            add(0.30 + 0.01 * w + 0.1 * k,
                medium_work_s * (1.0 + 0.2 * jitter.random()),
                peak=peak, home=home, io=2.0,
                phases=[(0.0, 0.5 * peak), (8.0, peak)])

    # Filler nodes: four I/O-active small jobs each (slots full).
    for node in range(num_nodes - num_wedges):
        for k in range(4):
            add(0.50 + 0.001 * (4 * node + k),
                filler_work_s * (1.0 + 0.3 * jitter.random()),
                peak=12.0 + 6.0 * jitter.random(), home=node, io=1.0)

    jobs.sort(key=lambda job: job.submit_time)
    for new_index, job in enumerate(jobs):
        job.job_index = new_index
    duration = max(job.submit_time for job in jobs) + 1.0
    return Trace(name=f"Blocking-Scenario-{seed}", group=WorkloadGroup.SPEC,
                 trace_index=0, duration_s=duration, jobs=jobs)


def run_blocking_scenario(policy: str, seed: int = 0,
                          num_nodes: int = 32,
                          config: Optional[ClusterConfig] = None,
                          obs=None,
                          faults=None,
                          checkpoint_at: Optional[float] = None,
                          checkpoint_to: Optional[str] = None,
                          **trace_kwargs) -> ExperimentResult:
    """Run the constructed scenario batch under ``policy``.

    ``obs`` is an optional :class:`~repro.obs.session.ObsSession`; the
    scenario is the canonical source of a reservation-bearing Perfetto
    trace because its V-Reconfiguration run deterministically reserves
    and rescues (see module docstring).  ``faults`` overrides the
    config's failure model (see :mod:`repro.faults`).  ``num_nodes``
    sizes the cluster when no explicit ``config`` is given (a given
    ``config`` wins outright — its own ``num_nodes`` sizes both the
    cluster and the trace).  ``checkpoint_at``/``checkpoint_to`` are
    forwarded to :func:`~repro.experiments.runner.run_trace`.
    """
    cfg = (config if config is not None
           else SCENARIO_CLUSTER.replace(num_nodes=num_nodes))
    if faults is not None:
        cfg = cfg.replace(faults=faults)
    trace = build_blocking_trace(num_nodes=cfg.num_nodes, seed=seed,
                                 **trace_kwargs)
    return run_trace(trace, policy, cfg, obs=obs,
                     checkpoint_at=checkpoint_at,
                     checkpoint_to=checkpoint_to)


def large_job_slowdowns(result: ExperimentResult) -> List[float]:
    """Slowdowns of the scenario's large jobs (the rescued class)."""
    return [job.slowdown() for job in result.cluster.finished_jobs
            if job.peak_demand_mb > 200.0]
