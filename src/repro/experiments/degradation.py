"""Degradation experiment: scheduling quality vs. node reliability.

The paper evaluates a fault-free cluster; this experiment asks how
gracefully each policy degrades when workstations actually fail.  A
grid of MTBF values (mean time between crashes per node, plus a
fault-free baseline) is swept for G-Loadsharing and V-Reconfiguration
under identical workloads and identical fault schedules (the fault
streams are seeded independently of the workload, so both policies
see the same outage pattern).

Reported per cell:

* **goodput** — useful CPU-seconds delivered per second of makespan,
  where work discarded by ``requeue`` crashes does not count:
  ``(T_cpu - wasted_work) / makespan``;
* **average slowdown** — the paper's primary per-job metric;
* **crashes / lost jobs** — the injected fault volume (identical
  across policies at a given MTBF, a useful sanity column).

V-Reconfiguration's reservations are the interesting stressor: a
reserved workstation that crashes must release its reservation (and
re-trigger reconfiguration elsewhere) or the policy would wedge.  The
acceptance property — V-Reconfiguration goodput >= G-Loadsharing at
every tested MTBF — is pinned by the test suite at a reduced scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.experiments.parallel import RunSpec, run_specs
from repro.faults.config import FaultConfig
from repro.metrics.report import render_table
from repro.metrics.summary import RunSummary
from repro.workload.programs import WorkloadGroup

#: MTBF grid (s per node); None is the fault-free baseline.  With 32
#: nodes and an MTBF of 1500 s the cluster as a whole sees a crash
#: about every 47 s — a harsh regime on traces a few thousand
#: seconds long.
DEFAULT_MTBFS: Tuple[Optional[float], ...] = (None, 6000.0, 3000.0, 1500.0)

DEFAULT_POLICIES = ("g-loadsharing", "v-reconfiguration")


def goodput(summary: RunSummary) -> float:
    """Useful CPU-seconds per makespan second.

    CPU time spent on progress that a crash later discarded
    (``fault.wasted_work_s``) is subtracted: re-done work inflates
    ``T_cpu`` without delivering anything.
    """
    if summary.makespan_s <= 0:
        return 0.0
    wasted = summary.extra.get("fault.wasted_work_s", 0.0)
    return max(0.0, summary.total_cpu_time_s - wasted) / summary.makespan_s


@dataclass
class DegradationReport:
    """One sweep's summaries, indexed by (mtbf, policy)."""

    group: WorkloadGroup
    trace_index: int
    seed: int
    fault_seed: int
    mtbfs: Tuple[Optional[float], ...]
    policies: Tuple[str, ...]
    summaries: Dict[Tuple[Optional[float], str], RunSummary]

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for mtbf in self.mtbfs:
            row: Dict[str, object] = {
                "mtbf (s)": "inf" if mtbf is None else f"{mtbf:g}"}
            for policy in self.policies:
                summary = self.summaries[(mtbf, policy)]
                short = "G" if policy.startswith("g") else "V"
                row[f"{short} goodput"] = goodput(summary)
                row[f"{short} slowdown"] = summary.average_slowdown
            reference = self.summaries[(mtbf, self.policies[0])]
            row["crashes"] = reference.extra.get("fault.crashes", 0.0)
            row["lost jobs"] = reference.extra.get("fault.lost_jobs", 0.0)
            rows.append(row)
        return rows

    def render(self) -> str:
        columns = ["mtbf (s)"]
        for policy in self.policies:
            short = "G" if policy.startswith("g") else "V"
            columns += [f"{short} goodput", f"{short} slowdown"]
        columns += ["crashes", "lost jobs"]
        title = (f"Degradation vs. MTBF — {self.group.value} trace "
                 f"{self.trace_index}, seed {self.seed}, fault seed "
                 f"{self.fault_seed}")
        return render_table(self.rows(), columns, title=title)

    def comparison_rows(self) -> List[Dict[str, object]]:
        """Flatten the sweep into :mod:`repro.obs.report` comparison
        rows — one per (mtbf, policy) cell, ordered by increasing
        crash rate.  The x axis is crashes per 10k node-seconds
        (0 for the fault-free baseline), so "more broken" reads
        left-to-right."""
        from repro.obs.report import comparison_row

        rows: List[Dict[str, object]] = []
        for mtbf in self.mtbfs:
            x = 0.0 if mtbf is None else 1e4 / mtbf
            mtbf_text = "inf" if mtbf is None else f"{mtbf:g}"
            for policy in self.policies:
                summary = self.summaries[(mtbf, policy)]
                short = "G" if policy.startswith("g") else "V"
                row = comparison_row(f"{short} @ mtbf={mtbf_text}",
                                     short, x, summary)
                row["goodput"] = goodput(summary)
                rows.append(row)
        return rows

    def write_report(self, target: str) -> str:
        """Write the G-vs-V comparison HTML report for this sweep."""
        from repro.obs.report import (render_comparison_report,
                                      write_report)

        title = (f"Degradation sweep — {self.group.value} trace "
                 f"{self.trace_index}")
        html = render_comparison_report(
            title, self.comparison_rows(),
            x_label="crashes per 10k node-seconds",
            subtitle=f"seed {self.seed} · fault seed {self.fault_seed} "
                     f"· MTBF grid "
                     f"{', '.join('inf' if m is None else f'{m:g}' for m in self.mtbfs)}")
        return write_report(target, html)


def run_degradation_experiment(
        group: WorkloadGroup = WorkloadGroup.SPEC,
        trace_index: int = 3,
        seed: int = 0,
        fault_seed: int = 0,
        scale: float = 1.0,
        mtbfs: Sequence[Optional[float]] = DEFAULT_MTBFS,
        mttr_s: float = 60.0,
        policies: Sequence[str] = DEFAULT_POLICIES,
        config: Optional[ClusterConfig] = None,
        jobs: int = 1,
        lifecycle: bool = False,
        sample_period: Optional[float] = None) -> DegradationReport:
    """Sweep goodput and slowdown over the MTBF grid.

    Each (mtbf, policy) cell is one independent run; ``jobs`` fans
    them out to worker processes with summaries identical to serial.
    ``lifecycle=True`` traces every cell's job lifecycles so the
    comparison report can attribute the slowdown; ``sample_period``
    additionally samples cluster state (both land in
    ``summary.extra`` and survive the process boundary).
    """
    specs: List[RunSpec] = []
    cells: List[Tuple[Optional[float], str]] = []
    for mtbf in mtbfs:
        faults = (None if mtbf is None else
                  FaultConfig(mtbf_s=mtbf, mttr_s=mttr_s,
                              fault_seed=fault_seed))
        mtbf_text = "inf" if mtbf is None else f"{mtbf:g}"
        for policy in policies:
            specs.append(RunSpec(
                group=group, trace_index=trace_index, policy=policy,
                seed=seed, scale=scale, config=config, faults=faults,
                label=f"mtbf={mtbf_text} {policy}",
                lifecycle=lifecycle, sample_period=sample_period))
            cells.append((mtbf, policy))
    summaries = run_specs(specs, jobs=jobs)
    return DegradationReport(
        group=group, trace_index=trace_index, seed=seed,
        fault_seed=fault_seed, mtbfs=tuple(mtbfs),
        policies=tuple(policies),
        summaries=dict(zip(cells, summaries)))
