"""Heterogeneous-cluster experiments (paper §2.3 and §6).

§2.3: "In a heterogeneous cluster system, a reserved workstation will
be the one with relatively large physical memory space."  §6 lists
heterogeneity (CPU speed, memory capacity, network interfaces) as one
of the two issues an implementation must address.

This module builds heterogeneous variants of the paper's clusters and
measures (a) whether the policies still drain the workloads, (b) how
the headline metrics move relative to the homogeneous baseline of the
same aggregate capacity, and (c) where V-Reconfiguration places its
reservations — the §2.3 prediction is that big-memory nodes attract
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.config import ClusterConfig, WorkstationSpec
from repro.experiments.parallel import RunSpec, run_specs
from repro.experiments.runner import default_config
from repro.metrics.report import render_table
from repro.metrics.summary import RunSummary
from repro.workload.programs import WorkloadGroup


def heterogeneous_config(group: WorkloadGroup,
                         big_fraction: float = 0.25,
                         memory_ratio: float = 2.0,
                         speed_ratio: float = 1.5) -> ClusterConfig:
    """A heterogeneous variant of the paper's cluster for ``group``.

    A ``big_fraction`` of the nodes get ``memory_ratio`` times the
    memory and ``speed_ratio`` times the CPU speed; the remaining
    nodes shrink proportionally so the cluster's aggregate memory and
    CPU capacity match the homogeneous original (a capacity-neutral
    redistribution, so differences are attributable to heterogeneity
    itself).
    """
    if not 0 < big_fraction < 1:
        raise ValueError("big_fraction must be in (0, 1)")
    base = default_config(group)
    n = base.num_nodes
    num_big = max(1, round(big_fraction * n))
    num_small = n - num_big
    base_mem = base.spec.memory_mb
    base_speed = base.spec.speed_factor
    # capacity-neutral small-node values
    small_mem = base_mem * (n - num_big * memory_ratio) / num_small
    small_speed = base_speed * (n - num_big * speed_ratio) / num_small
    if small_mem <= base.kernel_reserved_mb or small_speed <= 0:
        raise ValueError("ratios too extreme for capacity neutrality")
    config = base.replace(
        spec=WorkstationSpec(
            cpu_mhz=base.spec.cpu_mhz,
            memory_mb=small_mem,
            swap_mb=base.spec.swap_mb,
            speed_factor=small_speed,
        ))
    for node_id in range(n - num_big, n):
        config.node_overrides[node_id] = WorkstationSpec(
            cpu_mhz=int(base.spec.cpu_mhz * speed_ratio),
            memory_mb=base_mem * memory_ratio,
            swap_mb=base.spec.swap_mb,
            speed_factor=base_speed * speed_ratio,
        )
    return config


@dataclass
class HeterogeneityReport:
    """Comparison of homogeneous vs heterogeneous runs."""

    group: WorkloadGroup
    trace_index: int
    rows: List[dict]
    #: node id -> number of reservation assignments it served
    reservation_placement: Dict[int, int]
    big_node_ids: List[int]

    @property
    def reservations_prefer_big_nodes(self) -> Optional[bool]:
        """§2.3's prediction; None when no reservations happened."""
        if not self.reservation_placement:
            return None
        on_big = sum(count for node, count in
                     self.reservation_placement.items()
                     if node in set(self.big_node_ids))
        total = sum(self.reservation_placement.values())
        return on_big / total >= 0.5

    def render(self) -> str:
        columns = list(self.rows[0].keys()) if self.rows else []
        table = render_table(
            self.rows, columns,
            title=(f"Heterogeneity: {self.group.value}-trace-"
                   f"{self.trace_index}"))
        placement = (f"reservation placements: "
                     f"{dict(sorted(self.reservation_placement.items()))} "
                     f"(big nodes: {self.big_node_ids})")
        return table + "\n" + placement


def _row(label: str, summary: RunSummary) -> dict:
    return {
        "cluster": label,
        "policy": summary.policy,
        "exec (s)": summary.total_execution_time_s,
        "queue (s)": summary.total_queuing_time_s,
        "page (s)": summary.total_paging_time_s,
        "slowdown": summary.average_slowdown,
        "reservations": float(summary.extra.get("reservations", 0)),
    }


def run_heterogeneity_experiment(group: WorkloadGroup = WorkloadGroup.APP,
                                 trace_index: int = 3, seed: int = 0,
                                 scale: float = 1.0,
                                 big_fraction: float = 0.25,
                                 memory_ratio: float = 2.0,
                                 speed_ratio: float = 1.5,
                                 jobs: int = 1) -> HeterogeneityReport:
    """Homogeneous vs heterogeneous, both policies, one trace.

    The four (cluster, policy) runs are independent, so ``jobs`` fans
    them out to worker processes; the placement analysis reads the
    reservation counts carried back on each run's summary.
    """
    hetero = heterogeneous_config(group, big_fraction=big_fraction,
                                  memory_ratio=memory_ratio,
                                  speed_ratio=speed_ratio)
    specs = [RunSpec(group=group, trace_index=trace_index, policy=policy,
                     seed=seed, scale=scale, config=config, label=label)
             for label, config in (("homogeneous", default_config(group)),
                                   ("heterogeneous", hetero))
             for policy in ("g-loadsharing", "v-reconfiguration")]
    summaries = run_specs(specs, jobs=jobs)
    rows: List[dict] = []
    placement: Dict[int, int] = {}
    for spec, summary in zip(specs, summaries):
        rows.append(_row(spec.label, summary))
        if spec.label == "heterogeneous":
            for node_id, count in summary.reservation_placements.items():
                placement[node_id] = placement.get(node_id, 0) + count
    return HeterogeneityReport(
        group=group, trace_index=trace_index, rows=rows,
        reservation_placement=placement,
        big_node_ids=sorted(hetero.node_overrides),
    )
