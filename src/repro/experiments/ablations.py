"""Ablation studies for the design choices DESIGN.md calls out.

Each ablation runs one trace (default: trace 3 of a group) under a
sweep of one design parameter and reports the headline metrics, so the
sensitivity of the reproduction to every reconstructed knob is
measurable:

* ``reservation_mode`` — the paper's drain-all reserving period vs the
  parenthetical first-fit alternative (§2.1);
* ``max_reserved`` — how many workstations may be reserved (§2.2
  fairness concern);
* ``residency_alpha`` — competition bias of the substituted paging
  model;
* ``fault_cost`` — K, the peak fault rate of the substituted model;
* ``network_speed`` — migration cost sensitivity (§5: "the migration
  time is workload and network speed dependent");
* ``load_info_staleness`` — load-exchange period (§6 mentions timely
  and consistent dissemination as an open issue);
* ``cpu_threshold`` — job slots per workstation;
* ``baselines`` — every policy in the registry on the same trace.

Every ablation accepts ``jobs``: the sweep variants are independent
runs, so they fan out through :mod:`repro.experiments.parallel` and
the rows come back in variant order regardless of worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.config import ClusterConfig
from repro.core.reservation import ReservationMode
from repro.experiments.parallel import RunSpec, run_specs
from repro.experiments.runner import POLICIES, default_config
from repro.metrics.report import render_table
from repro.metrics.summary import RunSummary
from repro.workload.programs import WorkloadGroup


@dataclass
class AblationResult:
    name: str
    rows: List[dict]

    def render(self) -> str:
        columns = list(self.rows[0].keys()) if self.rows else []
        return render_table(self.rows, columns,
                            title=f"Ablation: {self.name}")


def _row(label: str, summary: RunSummary) -> dict:
    return {
        "variant": label,
        "policy": summary.policy,
        "exec (s)": summary.total_execution_time_s,
        "queue (s)": summary.total_queuing_time_s,
        "page (s)": summary.total_paging_time_s,
        "slowdown": summary.average_slowdown,
        "idle (MB)": summary.average_idle_memory_mb,
        "migrations": float(summary.migrations),
        "reservations": float(summary.extra.get("reservations", 0)),
    }


def _sweep_rows(name: str, specs: Sequence[RunSpec],
                jobs: int = 1) -> AblationResult:
    """Run labelled specs (possibly in parallel) and tabulate them."""
    summaries = run_specs(specs, jobs=jobs)
    rows = [_row(spec.label, summary)
            for spec, summary in zip(specs, summaries)]
    return AblationResult(name, rows)


def reservation_mode_ablation(group: WorkloadGroup = WorkloadGroup.SPEC,
                              trace_index: int = 3, seed: int = 0,
                              scale: float = 1.0,
                              config: Optional[ClusterConfig] = None,
                              jobs: int = 1) -> AblationResult:
    """Drain-all vs first-fit reserving periods (§2.1 alternative)."""
    cfg = config if config is not None else default_config(group)
    specs = [RunSpec(group=group, trace_index=trace_index,
                     policy="v-reconfiguration", seed=seed, scale=scale,
                     config=cfg, policy_kwargs={"mode": mode},
                     label=mode.value)
             for mode in (ReservationMode.DRAIN_ALL,
                          ReservationMode.FIRST_FIT)]
    return _sweep_rows("reserving-period termination rule", specs, jobs)


def _config_sweep(name: str, values: Sequence, apply: Callable,
                  group: WorkloadGroup, trace_index: int, seed: int,
                  scale: float, policy: str = "v-reconfiguration",
                  config: Optional[ClusterConfig] = None,
                  jobs: int = 1) -> AblationResult:
    specs = []
    for value in values:
        cfg = apply(config if config is not None else default_config(group),
                    value)
        specs.append(RunSpec(group=group, trace_index=trace_index,
                             policy=policy, seed=seed, scale=scale,
                             config=cfg, label=f"{name}={value}"))
    return _sweep_rows(name, specs, jobs)


def residency_alpha_ablation(group: WorkloadGroup = WorkloadGroup.SPEC,
                             trace_index: int = 3, seed: int = 0,
                             scale: float = 1.0,
                             values: Sequence[float] = (0.5, 0.7, 0.85, 1.0),
                             jobs: int = 1) -> AblationResult:
    return _config_sweep(
        "residency_alpha", values,
        lambda cfg, v: cfg.replace(residency_alpha=v),
        group, trace_index, seed, scale, jobs=jobs)


def fault_cost_ablation(group: WorkloadGroup = WorkloadGroup.SPEC,
                        trace_index: int = 3, seed: int = 0,
                        scale: float = 1.0,
                        values: Sequence[float] = (100.0, 400.0, 800.0),
                        jobs: int = 1) -> AblationResult:
    return _config_sweep(
        "max_fault_rate", values,
        lambda cfg, v: cfg.replace(max_fault_rate_per_cpu_s=v),
        group, trace_index, seed, scale, jobs=jobs)


def network_speed_ablation(group: WorkloadGroup = WorkloadGroup.SPEC,
                           trace_index: int = 3, seed: int = 0,
                           scale: float = 1.0,
                           values: Sequence[float] = (10.0, 100.0, 1000.0),
                           jobs: int = 1) -> AblationResult:
    """§5: faster networks shrink migration cost towards irrelevance."""
    return _config_sweep(
        "bandwidth_mbps", values,
        lambda cfg, v: cfg.replace(network_bandwidth_mbps=v),
        group, trace_index, seed, scale, jobs=jobs)


def load_info_staleness_ablation(group: WorkloadGroup = WorkloadGroup.SPEC,
                                 trace_index: int = 3, seed: int = 0,
                                 scale: float = 1.0,
                                 values: Sequence[float] = (0.0, 1.0, 5.0,
                                                            15.0),
                                 jobs: int = 1) -> AblationResult:
    return _config_sweep(
        "exchange_interval_s", values,
        lambda cfg, v: cfg.replace(load_exchange_interval_s=v),
        group, trace_index, seed, scale, jobs=jobs)


def cpu_threshold_ablation(group: WorkloadGroup = WorkloadGroup.SPEC,
                           trace_index: int = 3, seed: int = 0,
                           scale: float = 1.0,
                           values: Sequence[int] = (2, 4, 6, 8),
                           jobs: int = 1) -> AblationResult:
    return _config_sweep(
        "cpu_threshold", values,
        lambda cfg, v: cfg.replace(cpu_threshold=v),
        group, trace_index, seed, scale, jobs=jobs)


def max_reserved_ablation(group: WorkloadGroup = WorkloadGroup.SPEC,
                          trace_index: int = 3, seed: int = 0,
                          scale: float = 1.0,
                          values: Sequence[int] = (1, 2, 4, 8),
                          jobs: int = 1) -> AblationResult:
    cfg = default_config(group)
    specs = [RunSpec(group=group, trace_index=trace_index,
                     policy="v-reconfiguration", seed=seed, scale=scale,
                     config=cfg, policy_kwargs={"max_reserved": value},
                     label=f"max_reserved={value}")
             for value in values]
    return _sweep_rows("max reserved workstations", specs, jobs)


def baseline_sweep(group: WorkloadGroup = WorkloadGroup.SPEC,
                   trace_index: int = 3, seed: int = 0,
                   scale: float = 1.0,
                   policies: Optional[Sequence[str]] = None,
                   jobs: int = 1) -> AblationResult:
    """Every policy in the registry on the same trace (§1-2 discussion:
    no sharing, CPU-only, memory-only, suspension, G-LS, V-Reconf)."""
    names = list(policies) if policies else list(POLICIES)
    specs = [RunSpec(group=group, trace_index=trace_index, policy=name,
                     seed=seed, scale=scale, label=name)
             for name in names]
    return _sweep_rows("policy comparison", specs, jobs)


def victim_ranking_ablation(group: WorkloadGroup = WorkloadGroup.SPEC,
                            trace_index: int = 3, seed: int = 0,
                            scale: float = 1.0,
                            jobs: int = 1) -> AblationResult:
    """§2.2 extension: rank rescue victims by demand alone (paper) vs
    demand x age (using [5]'s lifetime prediction)."""
    specs = [RunSpec(group=group, trace_index=trace_index,
                     policy="v-reconfiguration", seed=seed, scale=scale,
                     policy_kwargs={"age_weighted_victims": age_weighted},
                     label="demand-x-age" if age_weighted else "demand-only")
             for age_weighted in (False, True)]
    return _sweep_rows("victim ranking rule", specs, jobs)


def network_ram_ablation(group: WorkloadGroup = WorkloadGroup.APP,
                         trace_index: int = 3, seed: int = 0,
                         scale: float = 1.0,
                         jobs: int = 1) -> AblationResult:
    """§2.3 extension: serve faults from remote memory ([12])."""
    specs = [RunSpec(group=group, trace_index=trace_index,
                     policy="v-reconfiguration", seed=seed, scale=scale,
                     config=default_config(group).replace(network_ram=enabled),
                     label=f"network_ram={enabled}")
             for enabled in (False, True)]
    return _sweep_rows("network RAM fault service", specs, jobs)


ALL_ABLATIONS: Dict[str, Callable[..., AblationResult]] = {
    "reservation_mode": reservation_mode_ablation,
    "residency_alpha": residency_alpha_ablation,
    "fault_cost": fault_cost_ablation,
    "network_speed": network_speed_ablation,
    "load_info_staleness": load_info_staleness_ablation,
    "cpu_threshold": cpu_threshold_ablation,
    "max_reserved": max_reserved_ablation,
    "baselines": baseline_sweep,
    "network_ram": network_ram_ablation,
    "victim_ranking": victim_ranking_ablation,
}
