"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments all            # everything, full scale
    python -m repro.experiments all --jobs 8   # ... with 8 worker processes
    python -m repro.experiments table1 table2
    python -m repro.experiments figure1 --scale 0.25
    python -m repro.experiments figure1 --export-csv fig1.csv
    python -m repro.experiments figure1 --nodes 256 --scale 0.1
    python -m repro.experiments scenario       # constructed blocking demo
    python -m repro.experiments heterogeneity  # §2.3/§6 extension
    python -m repro.experiments ablations --scale 0.25 --jobs 0
    python -m repro.experiments figure3 --seed 7 --chart
    python -m repro.experiments figure1 --obs --jobs 4   # sweep telemetry
    python -m repro.experiments scenario --trace-out scenario.trace.json
    python -m repro.experiments degradation --scale 0.25 --jobs 0
    python -m repro.experiments scenario --faults --mtbf 600
    python -m repro.experiments whatif --whatif-at 300 --report whatif.html
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments import parallel
from repro.experiments.ablations import ALL_ABLATIONS
from repro.experiments.degradation import run_degradation_experiment
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.heterogeneity import run_heterogeneity_experiment
from repro.experiments.runner import build_fault_config
from repro.experiments.scenario import (
    large_job_slowdowns,
    run_blocking_scenario,
)
from repro.experiments.tables import render_table1, render_table2
from repro.experiments.topology import (
    DEFAULT_DOMAINS,
    DEFAULT_STALENESS,
    run_topology_experiment,
)
from repro.metrics.export import figure_to_csv
from repro.metrics.report import percentage_reduction, render_bar_chart
from repro.obs.session import ObsSession
from repro.workload.programs import WorkloadGroup

TARGETS = (["table1", "table2"] + sorted(ALL_FIGURES)
           + ["scenario", "heterogeneity", "ablations", "degradation",
              "topology", "whatif"])

#: Targets that accept the shared fault-injection flags.
FAULT_TARGETS = ("scenario", "degradation", "whatif")


def _run_scenario(obs_session=None, trace_out=None, log_json=None,
                  obs_metrics=None, faults=None, report=None) -> None:
    base = run_blocking_scenario("g-loadsharing", faults=faults)
    reco = run_blocking_scenario("v-reconfiguration", obs=obs_session,
                                 faults=faults)
    big_base = large_job_slowdowns(base)
    big_reco = large_job_slowdowns(reco)
    print("Constructed blocking scenario (32 nodes):")
    rows = [
        ("total paging time (s)", base.summary.total_paging_time_s,
         reco.summary.total_paging_time_s),
        ("mean large-job slowdown", sum(big_base) / len(big_base),
         sum(big_reco) / len(big_reco)),
        ("average slowdown (all)", base.summary.average_slowdown,
         reco.summary.average_slowdown),
    ]
    for name, g, v in rows:
        print(f"  {name:28s} G={g:12.2f} V={v:12.2f} "
              f"reduction={percentage_reduction(g, v):6.1f}%")
    print(f"  reservations={reco.summary.extra.get('reservations', 0)} "
          f"rescues="
          f"{reco.summary.extra.get('reconfiguration_migrations', 0)}")
    fault_keys = sorted(k for k in reco.summary.extra
                        if k.startswith("fault."))
    if fault_keys:
        print("  faults: " + ", ".join(
            f"{key[len('fault.'):]}={reco.summary.extra[key]:g}"
            for key in fault_keys))
    if obs_session is not None:
        if trace_out:
            obs_session.write_trace(trace_out)
            print(f"[wrote Perfetto trace {trace_out}]")
        if log_json:
            count = obs_session.write_log(log_json)
            print(f"[wrote {count} JSONL events to {log_json}]")
        if obs_metrics:
            obs_session.write_metrics(obs_metrics)
            print(f"[wrote metrics snapshot {obs_metrics}]")
        if report:
            obs_session.write_report(
                report, title="Run report — blocking scenario, "
                              "V-Reconfiguration")
            print(f"[wrote HTML report {report}]")


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's tables and figures.")
    parser.add_argument("targets", nargs="+",
                        help=f"targets: all, {', '.join(TARGETS)}")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="trace subsampling factor in (0, 1]")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload generation seed")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep targets "
                             "(1 = serial, 0 = one per core); results "
                             "are identical at any N")
    parser.add_argument("--nodes", type=int, default=None, metavar="N",
                        help="override the cluster size for figure "
                             "targets (traces are regenerated for the "
                             "new topology)")
    parser.add_argument("--export-csv", metavar="PATH", default=None,
                        help="write figure comparison rows to CSV "
                             "(single figure target only)")
    parser.add_argument("--chart", action="store_true",
                        help="also render ASCII bar charts for figures")
    parser.add_argument("--obs", action="store_true",
                        help="instrument runs: per-run obs metrics, a "
                             "live sweep progress line, and a post-"
                             "sweep timing table")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON of the "
                             "scenario's V-Reconfiguration run (open "
                             "in https://ui.perfetto.dev; scenario "
                             "target only)")
    parser.add_argument("--log-json", metavar="PATH", default=None,
                        help="write the scenario run's structured "
                             "JSONL event log (scenario target only)")
    parser.add_argument("--obs-metrics", metavar="PATH", default=None,
                        help="write the scenario run's metrics "
                             "snapshot as JSON (scenario target only)")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="write a self-contained HTML report: a "
                             "lifecycle run report for the scenario "
                             "target, a G-vs-V comparison report for "
                             "the degradation target")
    parser.add_argument("--sample-period", type=float, default=None,
                        metavar="S",
                        help="sample per-node cluster state every S "
                             "simulated seconds (feeds the report "
                             "timelines; scenario and degradation "
                             "targets)")
    parser.add_argument("--serve", type=int, default=None, metavar="PORT",
                        nargs="?", const=0,
                        help="serve live telemetry over HTTP while the "
                             "scenario's V-Reconfiguration run executes "
                             "(omit or 0 for an ephemeral port; "
                             "scenario target only)")
    parser.add_argument("--serve-port-file", metavar="PATH", default=None,
                        help="write the bound --serve port to PATH")
    parser.add_argument("--pace", type=float, default=0.0, metavar="X",
                        help="advance at most X simulated seconds per "
                             "wall second while serving (0 = unpaced)")
    parser.add_argument("--window", type=float, default=None, metavar="S",
                        help="windowed-aggregation width in simulated "
                             "seconds for the scenario run (default 50 "
                             "when serving or health rules are active)")
    parser.add_argument("--health-rule", action="append", default=None,
                        metavar="RULE",
                        help="declarative health rule evaluated over "
                             "the scenario run's windowed metrics; "
                             "repeatable (scenario target only)")
    parser.add_argument("--self-profile", action="store_true",
                        help="time engine phases of the scenario's "
                             "V-Reconfiguration run and fold "
                             "obs.profile_* into its summary")
    parser.add_argument("--domains", default=None, metavar="K1,K2,...",
                        help="comma-separated domain-count grid for the "
                             "topology target (default "
                             f"{','.join(str(k) for k in DEFAULT_DOMAINS)})")
    parser.add_argument("--domain-exchange-interval", default=None,
                        metavar="S1,S2,...",
                        help="comma-separated summary-staleness grid in "
                             "seconds for the topology target (default "
                             f"{','.join(f'{s:g}' for s in DEFAULT_STALENESS)})")
    parser.add_argument("--topology-policy", default=None,
                        metavar="POLICY",
                        help="policy swept by the topology target "
                             "(default v-reconfiguration)")
    parser.add_argument("--topology-blocking", action="store_true",
                        help="sweep the constructed blocking scenario "
                             "instead of a published trace (topology "
                             "target; the memory-pressured regime where "
                             "small domains force cross-domain "
                             "reservations)")
    parser.add_argument("--faults", action="store_true",
                        help="enable fault injection with default "
                             "parameters for the scenario target "
                             "(implied by the fault options below)")
    parser.add_argument("--mtbf", type=float, default=None, metavar="S",
                        help="mean time between node crashes in seconds "
                             "(scenario target; the degradation target "
                             "sweeps its own MTBF grid)")
    parser.add_argument("--mttr", type=float, default=None, metavar="S",
                        help="mean time to repair a crashed node in "
                             "seconds (default 60)")
    parser.add_argument("--fault-seed", type=int, default=None,
                        metavar="N",
                        help="seed of the fault streams, independent of "
                             "the workload seed (default 0)")
    parser.add_argument("--crash-policy", default=None,
                        choices=["requeue", "checkpoint"],
                        help="fate of jobs on a crashed node "
                             "(default requeue)")
    parser.add_argument("--whatif-at", type=float, default=None,
                        metavar="T",
                        help="simulated time at which the whatif "
                             "target snapshots its base run and "
                             "branches (default 300)")
    parser.add_argument("--whatif-base", default=None, metavar="POLICY",
                        help="policy of the whatif target's base run "
                             "(default g-loadsharing)")
    parser.add_argument("--whatif-checkpoint", default=None,
                        metavar="PATH",
                        help="keep the whatif target's snapshot file "
                             "at PATH (restorable with the runner's "
                             "--restore-from)")
    args = parser.parse_args(argv)

    targets = list(args.targets)
    if "all" in targets:
        targets = list(TARGETS)

    unknown = [t for t in targets if t not in TARGETS]
    if unknown:
        parser.error(f"unknown targets: {unknown}; choose from {TARGETS}")

    figure_targets = [t for t in targets if t in ALL_FIGURES]
    if args.export_csv and len(figure_targets) != 1:
        parser.error("--export-csv needs exactly one figure target")
    nodes_targets = figure_targets + [t for t in targets
                                      if t == "topology"]
    if args.nodes is not None and len(nodes_targets) != len(targets):
        parser.error("--nodes applies to figure and topology targets "
                     "only")
    if (args.domains or args.domain_exchange_interval
            or args.topology_policy or args.topology_blocking) \
            and "topology" not in targets:
        parser.error("--domains/--domain-exchange-interval/"
                     "--topology-policy/--topology-blocking apply to "
                     "the topology target; add 'topology' to the "
                     "targets")
    try:
        domains_grid = (tuple(int(v) for v in args.domains.split(","))
                        if args.domains else DEFAULT_DOMAINS)
        staleness_grid = (tuple(float(v) for v in
                                args.domain_exchange_interval.split(","))
                          if args.domain_exchange_interval
                          else DEFAULT_STALENESS)
    except ValueError:
        parser.error("--domains/--domain-exchange-interval take "
                     "comma-separated numbers")
    if (args.trace_out or args.log_json or args.obs_metrics) \
            and "scenario" not in targets:
        parser.error("--trace-out/--log-json/--obs-metrics record the "
                     "scenario target; add 'scenario' to the targets")
    if (args.serve is not None or args.window is not None
            or args.health_rule is not None or args.self_profile) \
            and "scenario" not in targets:
        parser.error("--serve/--window/--health-rule/--self-profile "
                     "instrument the scenario target; add 'scenario' "
                     "to the targets")
    if args.serve is None:
        if args.pace:
            parser.error("--pace requires --serve")
        if args.serve_port_file:
            parser.error("--serve-port-file requires --serve")
    if args.pace < 0:
        parser.error("--pace must be >= 0")
    report_targets = [t for t in targets if t in ("scenario",
                                                  "degradation",
                                                  "topology",
                                                  "whatif")]
    if args.report and len(report_targets) != 1:
        parser.error("--report needs exactly one of the scenario, "
                     "degradation, topology, or whatif targets")
    sample_targets = [t for t in targets if t in ("scenario",
                                                  "degradation",
                                                  "topology")]
    if args.sample_period is not None and not sample_targets:
        parser.error("--sample-period applies to the scenario, "
                     "degradation, and topology targets; add one of "
                     "them")
    if (args.whatif_at is not None or args.whatif_base
            or args.whatif_checkpoint) and "whatif" not in targets:
        parser.error("--whatif-at/--whatif-base/--whatif-checkpoint "
                     "apply to the whatif target; add 'whatif' to the "
                     "targets")
    faults = build_fault_config(args)
    if faults is not None and not any(t in FAULT_TARGETS for t in targets):
        parser.error("fault flags apply to the scenario and degradation "
                     f"targets only; add one of {list(FAULT_TARGETS)}")

    if args.obs:
        parallel.set_obs_default(True)
        parallel.enable_progress()
        parallel.pop_sweep_timings()  # start the buffer clean

    for target in targets:
        started = time.time()
        if target == "table1":
            print(render_table1())
        elif target == "table2":
            print(render_table2())
        elif target in ALL_FIGURES:
            result = ALL_FIGURES[target](seed=args.seed, scale=args.scale,
                                         jobs=args.jobs, nodes=args.nodes)
            print(result.render())
            if args.chart:
                for panel, rows in result.panels.items():
                    keys = [result.baseline[0].policy,
                            result.improved[0].policy]
                    print()
                    print(render_bar_chart(rows, "trace", keys,
                                           title=f"{target} — {panel}"))
            if args.export_csv:
                figure_to_csv(result, target=args.export_csv)
                print(f"[wrote {args.export_csv}]")
        elif target == "scenario":
            obs_session = None
            if args.obs or args.trace_out or args.log_json \
                    or args.obs_metrics or args.report \
                    or args.sample_period is not None \
                    or args.serve is not None \
                    or args.window is not None \
                    or args.health_rule is not None \
                    or args.self_profile:
                obs_session = ObsSession(
                    record_events=bool(args.trace_out or args.log_json),
                    run_label="scenario v-reconfiguration",
                    lifecycle=bool(args.report),
                    sample_period=args.sample_period,
                    window_s=args.window,
                    health_rules=args.health_rule,
                    serve=args.serve,
                    serve_port_file=args.serve_port_file,
                    pace=args.pace,
                    profile=args.self_profile)
            _run_scenario(obs_session=obs_session,
                          trace_out=args.trace_out,
                          log_json=args.log_json,
                          obs_metrics=args.obs_metrics,
                          faults=faults,
                          report=args.report)
            if obs_session is not None:
                obs_session.close()
        elif target == "degradation":
            report = run_degradation_experiment(
                seed=args.seed, scale=args.scale, jobs=args.jobs,
                fault_seed=(faults.fault_seed if faults is not None else 0),
                mttr_s=(faults.mttr_s if faults is not None else 60.0),
                lifecycle=bool(args.report),
                sample_period=args.sample_period)
            print(report.render())
            if args.report:
                report.write_report(args.report)
                print(f"[wrote HTML comparison report {args.report}]")
        elif target == "topology":
            report = run_topology_experiment(
                seed=args.seed, scale=args.scale, jobs=args.jobs,
                nodes=args.nodes,
                policy=(args.topology_policy or "v-reconfiguration"),
                domains_grid=domains_grid,
                staleness_grid=staleness_grid,
                blocking=args.topology_blocking,
                lifecycle=bool(args.report),
                sample_period=args.sample_period)
            print(report.render())
            if args.report:
                report.write_report(args.report)
                print(f"[wrote HTML comparison report {args.report}]")
        elif target == "whatif":
            from repro.experiments.whatif import (DEFAULT_BRANCH_AT,
                                                  run_whatif_experiment)
            report = run_whatif_experiment(
                seed=args.seed,
                branch_at=(args.whatif_at if args.whatif_at is not None
                           else DEFAULT_BRANCH_AT),
                base_policy=args.whatif_base or "g-loadsharing",
                faults=faults,
                checkpoint_path=args.whatif_checkpoint)
            print(report.render())
            if args.whatif_checkpoint:
                print(f"[kept snapshot {args.whatif_checkpoint}]")
            if args.report:
                report.write_report(args.report)
                print(f"[wrote HTML comparison report {args.report}]")
        elif target == "heterogeneity":
            report = run_heterogeneity_experiment(
                group=WorkloadGroup.APP, trace_index=3,
                seed=args.seed, scale=args.scale, jobs=args.jobs)
            print(report.render())
        elif target == "ablations":
            for name, fn in ALL_ABLATIONS.items():
                print(fn(seed=args.seed, scale=args.scale,
                         jobs=args.jobs).render())
                print()
        if args.obs:
            timings = parallel.pop_sweep_timings()
            if timings:
                print(parallel.render_sweep_timings(timings))
                print()
        print(f"[{target} done in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
