"""Figures 1-4: G-Loadsharing vs V-Reconfiguration across the traces.

Each ``figureN`` function runs the corresponding experiment and
returns a :class:`FigureResult` holding the two data series of the
paper's figure (left and right panels) plus paper-reported reduction
percentages for side-by-side comparison.  ``scale`` subsamples the
traces for quick runs; the full-scale defaults reproduce the paper's
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.config import ClusterConfig
from repro.experiments.parallel import RunSpec, run_specs
from repro.experiments.runner import default_config
from repro.metrics.report import comparison_table, render_table
from repro.metrics.summary import RunSummary
from repro.workload.programs import WorkloadGroup

#: Paper-reported percentage reductions (V-Reconfiguration relative to
#: G-Loadsharing), indexed by trace 1..5.  ``None`` marks values the
#: paper describes only qualitatively ("modest"/"small").
PAPER_REDUCTIONS: Dict[str, Sequence[Optional[float]]] = {
    # Figure 1 (workload group 1)
    "spec_execution_time": (29.3, 32.4, 32.4, 30.3, 27.4),
    "spec_queuing_time": (24.8, 35.8, 36.7, 34.0, 38.2),
    # Figure 2
    "spec_slowdown": (23.4, 27.7, 22.6, 24.6, 28.46),
    "spec_idle_memory": (12.9, 24.2, 29.7, 40.9, 50.8),
    # Figure 3 (workload group 2)
    "app_execution_time": (None, 13.4, 14.0, None, None),
    "app_queuing_time": (None, 16.3, 16.8, None, None),
    # Figure 4
    "app_slowdown": (None, 16.3, 16.8, 6.8, None),
    "app_balance_skew": (None, 10.3, 16.5, 6.3, None),
}


@dataclass
class FigureResult:
    """One reproduced figure: two panels over the five traces."""

    figure: str
    group: WorkloadGroup
    baseline: List[RunSummary]
    improved: List[RunSummary]
    panels: Dict[str, List[dict]] = field(default_factory=dict)

    def render(self) -> str:
        blocks = []
        for name, rows in self.panels.items():
            columns = list(rows[0].keys()) if rows else []
            blocks.append(render_table(rows, columns,
                                       title=f"{self.figure} — {name}"))
        return "\n\n".join(blocks)


def _run_figure(figure: str, group: WorkloadGroup,
                panel_metrics: Dict[str, Callable[[RunSummary], float]],
                paper_keys: Dict[str, str],
                seed: int = 0, scale: float = 1.0,
                config: Optional[ClusterConfig] = None,
                trace_indices: Optional[Sequence[int]] = None,
                jobs: int = 1, nodes: Optional[int] = None) -> FigureResult:
    indices = list(trace_indices) if trace_indices else [1, 2, 3, 4, 5]
    cfg = config if config is not None else default_config(group)
    if nodes is not None:
        cfg = cfg.replace(num_nodes=nodes)
    specs = [RunSpec(group=group, trace_index=index, policy=policy,
                     seed=seed, scale=scale, config=cfg)
             for index in indices
             for policy in ("g-loadsharing", "v-reconfiguration")]
    summaries = run_specs(specs, jobs=jobs)
    baseline = summaries[0::2]
    improved = summaries[1::2]
    result = FigureResult(figure=figure, group=group,
                          baseline=baseline, improved=improved)
    for panel, metric in panel_metrics.items():
        rows = comparison_table(baseline, improved, metric, panel)
        paper = PAPER_REDUCTIONS.get(paper_keys[panel], ())
        for row, index in zip(rows, indices):
            value = paper[index - 1] if index - 1 < len(paper) else None
            row["paper_reduction_pct"] = ("n/a" if value is None
                                          else f"{value:.1f}")
        result.panels[panel] = rows
    return result


def figure1(seed: int = 0, scale: float = 1.0,
            config: Optional[ClusterConfig] = None,
            trace_indices: Optional[Sequence[int]] = None,
            jobs: int = 1, nodes: Optional[int] = None) -> FigureResult:
    """Figure 1: total execution times and queuing times, group 1."""
    return _run_figure(
        "Figure 1", WorkloadGroup.SPEC,
        {"total execution time (s)": lambda s: s.total_execution_time_s,
         "total queuing time (s)": lambda s: s.total_queuing_time_s},
        {"total execution time (s)": "spec_execution_time",
         "total queuing time (s)": "spec_queuing_time"},
        seed=seed, scale=scale, config=config, trace_indices=trace_indices,
        jobs=jobs, nodes=nodes)


def figure2(seed: int = 0, scale: float = 1.0,
            config: Optional[ClusterConfig] = None,
            trace_indices: Optional[Sequence[int]] = None,
            jobs: int = 1, nodes: Optional[int] = None) -> FigureResult:
    """Figure 2: average slowdowns and average idle memory volumes,
    group 1."""
    return _run_figure(
        "Figure 2", WorkloadGroup.SPEC,
        {"average slowdown": lambda s: s.average_slowdown,
         "average idle memory (MB)": lambda s: s.average_idle_memory_mb},
        {"average slowdown": "spec_slowdown",
         "average idle memory (MB)": "spec_idle_memory"},
        seed=seed, scale=scale, config=config, trace_indices=trace_indices,
        jobs=jobs, nodes=nodes)


def figure3(seed: int = 0, scale: float = 1.0,
            config: Optional[ClusterConfig] = None,
            trace_indices: Optional[Sequence[int]] = None,
            jobs: int = 1, nodes: Optional[int] = None) -> FigureResult:
    """Figure 3: total execution times and queuing times, group 2."""
    return _run_figure(
        "Figure 3", WorkloadGroup.APP,
        {"total execution time (s)": lambda s: s.total_execution_time_s,
         "total queuing time (s)": lambda s: s.total_queuing_time_s},
        {"total execution time (s)": "app_execution_time",
         "total queuing time (s)": "app_queuing_time"},
        seed=seed, scale=scale, config=config, trace_indices=trace_indices,
        jobs=jobs, nodes=nodes)


def figure4(seed: int = 0, scale: float = 1.0,
            config: Optional[ClusterConfig] = None,
            trace_indices: Optional[Sequence[int]] = None,
            jobs: int = 1, nodes: Optional[int] = None) -> FigureResult:
    """Figure 4: average slowdowns and average job balance skews,
    group 2."""
    return _run_figure(
        "Figure 4", WorkloadGroup.APP,
        {"average slowdown": lambda s: s.average_slowdown,
         "average job balance skew": lambda s: s.average_job_balance_skew},
        {"average slowdown": "app_slowdown",
         "average job balance skew": "app_balance_skew"},
        seed=seed, scale=scale, config=config, trace_indices=trace_indices,
        jobs=jobs, nodes=nodes)


ALL_FIGURES = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
}
