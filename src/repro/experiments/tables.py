"""Tables 1 and 2: the program catalogs, printed paper-style.

Unlike the figures/ablations, these targets run no simulations — they
render the static program catalogs — so the CLI's ``--jobs`` sweep
parallelism (see :mod:`repro.experiments.parallel`) does not apply
here and the renderers intentionally take no ``jobs`` argument.
"""

from __future__ import annotations

from typing import List

from repro.metrics.report import render_table
from repro.workload.programs import WorkloadGroup, programs_for_group

TABLE1_COLUMNS = ("Programs", "description", "input file",
                  "working set (MB)", "lifetime (s)")
TABLE2_COLUMNS = ("Programs", "data size", "working set (MB)",
                  "lifetime (s)")


def table1_rows() -> List[dict]:
    """Table 1: the 6 SPEC 2000 benchmark programs."""
    rows = []
    for p in programs_for_group(WorkloadGroup.SPEC):
        rows.append({
            "Programs": p.name,
            "description": p.description,
            "input file": p.input_name,
            "working set (MB)": f"{p.working_set_mb:.1f}",
            "lifetime (s)": f"{p.lifetime_s:,.1f}",
        })
    return rows


def table2_rows() -> List[dict]:
    """Table 2: the 7 scientific/system application programs."""
    rows = []
    for p in programs_for_group(WorkloadGroup.APP):
        if p.working_set_min_mb > 0:
            working_set = f"{p.working_set_min_mb:.0f}-{p.working_set_mb:.0f}"
        else:
            working_set = f"{p.working_set_mb:.1f}"
        rows.append({
            "Programs": p.name,
            "data size": p.input_name,
            "working set (MB)": working_set,
            "lifetime (s)": f"{p.lifetime_s:,.1f}",
        })
    return rows


def render_table1() -> str:
    return render_table(
        table1_rows(), TABLE1_COLUMNS,
        title=("Table 1: Execution performance and memory related data of "
               "the 6 SPEC 2000 benchmark programs (reconstructed)"))


def render_table2() -> str:
    return render_table(
        table2_rows(), TABLE2_COLUMNS,
        title=("Table 2: Execution performance and memory related data of "
               "the seven application programs (reconstructed)"))
