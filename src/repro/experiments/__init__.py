"""Experiment harness: reproduce every table and figure of the paper.

* :mod:`repro.experiments.runner` — run one (trace, policy) pair;
* :mod:`repro.experiments.tables` — Tables 1 and 2;
* :mod:`repro.experiments.figures` — Figures 1-4;
* :mod:`repro.experiments.ablations` — design-choice sweeps
  (reservation mode, paging-model parameters, network speed,
  baselines);
* ``python -m repro.experiments`` — CLI to run everything.
"""

from repro.experiments.heterogeneity import run_heterogeneity_experiment
from repro.experiments.runner import (
    POLICIES,
    ExperimentResult,
    default_config,
    run_experiment,
    run_group,
    run_trace,
)
from repro.experiments.scenario import (
    build_blocking_trace,
    run_blocking_scenario,
)

__all__ = [
    "POLICIES",
    "ExperimentResult",
    "build_blocking_trace",
    "default_config",
    "run_blocking_scenario",
    "run_experiment",
    "run_group",
    "run_heterogeneity_experiment",
    "run_trace",
]
