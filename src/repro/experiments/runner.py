"""Run one workload trace under one scheduling policy.

``run_experiment`` wires together the whole stack: trace generation,
cluster construction, policy, metrics collection, trace replay, and
summary extraction.  ``scale`` subsamples the trace (every k-th job)
so the benchmark suite can exercise every figure quickly while the
full-scale runs reproduce the paper's configuration exactly.
"""

from __future__ import annotations

import functools
import warnings
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Type

from repro.cluster.cluster import Cluster
from repro.cluster.config import APP_CLUSTER, SPEC_CLUSTER, ClusterConfig
from repro.core.reconfiguration import VReconfiguration
from repro.faults.config import FaultConfig
from repro.metrics.collector import MetricsCollector, PolicyPendingProbe
from repro.metrics.summary import RunSummary, summarize_run
from repro.obs.session import ObsSession
from repro.scheduling import (
    CpuBasedPolicy,
    GLoadSharing,
    LoadSharingPolicy,
    LocalPolicy,
    MemoryBasedPolicy,
    SrptOracle,
    SuspensionPolicy,
)
from repro.workload.generator import build_trace
from repro.workload.programs import WorkloadGroup
from repro.workload.trace import Trace

#: Registry of runnable policies, keyed by CLI-friendly names.
POLICIES: Dict[str, Type[LoadSharingPolicy]] = {
    "local": LocalPolicy,
    "cpu": CpuBasedPolicy,
    "memory": MemoryBasedPolicy,
    "g-loadsharing": GLoadSharing,
    "suspension": SuspensionPolicy,
    "srpt-oracle": SrptOracle,
    "v-reconfiguration": VReconfiguration,
}


def default_config(group: WorkloadGroup) -> ClusterConfig:
    """The paper's cluster for a workload group (fresh copy)."""
    base = SPEC_CLUSTER if group is WorkloadGroup.SPEC else APP_CLUSTER
    return base.replace()


def build_fault_config(args) -> Optional[FaultConfig]:
    """Fold the shared ``--faults``/``--mtbf``/``--mttr``/
    ``--fault-seed``/``--crash-policy`` CLI flags into a
    :class:`FaultConfig` (None when none of them was given)."""
    given = {}
    if getattr(args, "mtbf", None) is not None:
        given["mtbf_s"] = args.mtbf
    if getattr(args, "mttr", None) is not None:
        given["mttr_s"] = args.mttr
    if getattr(args, "fault_seed", None) is not None:
        given["fault_seed"] = args.fault_seed
    if getattr(args, "crash_policy", None) is not None:
        given["crash_policy"] = args.crash_policy
    if not given and not getattr(args, "faults", False):
        return None
    return FaultConfig(**given)


@dataclass
class ExperimentResult:
    """A run summary plus the artifacts needed for deeper inspection."""

    summary: RunSummary
    cluster: Cluster
    policy: LoadSharingPolicy
    collector: MetricsCollector
    trace: Trace


def subsample_trace(trace: Trace, scale: float) -> Trace:
    """Keep roughly ``scale`` of the jobs, preserving the arrival shape
    by taking every k-th job rather than a prefix.

    ``duration_s`` is deliberately *not* scaled: thinning keeps every
    k-th arrival at its original instant, so the subsampled trace still
    spans the full trace duration — only the arrival rate drops.
    Scaling the metadata would misstate the span and skew any rate
    (jobs/duration) derived from it.

    Stride-based thinning cannot realize scales just below 1.0:
    ``round(1/scale)`` rounds to stride 1 for ``scale > 2/3``, which
    would silently return the full trace, so those scales raise.
    Realizable-but-coarse scales (e.g. 0.51 -> stride 2, an actual 0.5)
    warn when the realized fraction is off by more than 25%.
    """
    if not 0 < scale <= 1:
        raise ValueError("scale must be in (0, 1]")
    if scale == 1.0:
        return trace
    stride = round(1.0 / scale)
    if stride < 2:
        raise ValueError(
            f"scale={scale} cannot be realized by stride subsampling "
            f"(stride would be {max(1, stride)}, i.e. the full trace); "
            f"use scale <= 0.5 or scale == 1.0")
    jobs = [job for i, job in enumerate(trace.jobs) if i % stride == 0]
    actual = len(jobs) / max(1, len(trace.jobs))
    if abs(actual - scale) > 0.25 * scale:
        warnings.warn(
            f"subsample_trace(scale={scale}) realized {actual:.3f} "
            f"via stride {stride}", stacklevel=2)
    return Trace(name=trace.name, group=trace.group,
                 trace_index=trace.trace_index,
                 duration_s=trace.duration_s, jobs=jobs)


def run_trace(trace: Trace, policy_name: str,
              config: ClusterConfig,
              policy_kwargs: Optional[dict] = None,
              obs: Optional[ObsSession] = None,
              checkpoint_at: Optional[float] = None,
              checkpoint_to: Optional[str] = None) -> ExperimentResult:
    """Replay ``trace`` on a fresh cluster under ``policy_name``.

    ``obs`` attaches an observability session to the run: structured
    events, metrics (merged into ``summary.extra`` under ``obs.``),
    and per-phase wall times.  With ``obs=None`` (the default) every
    emit site stays a single disabled-bool check.

    ``checkpoint_at`` pauses the engine at that simulated time, writes
    a restorable snapshot to ``checkpoint_to`` (see
    :mod:`repro.sim.checkpoint`), and continues the run to completion —
    the written snapshot resumes byte-identically to the uninterrupted
    remainder.
    """
    if policy_name not in POLICIES:
        raise KeyError(f"unknown policy {policy_name!r}; "
                       f"choose from {sorted(POLICIES)}")
    if (checkpoint_at is None) != (checkpoint_to is None):
        raise ValueError("checkpoint_at and checkpoint_to go together")
    phase = obs.phase if obs is not None else (lambda name: nullcontext())
    cluster = Cluster(config)
    policy = POLICIES[policy_name](cluster, **(policy_kwargs or {}))
    collector = MetricsCollector(
        cluster, pending_probe=PolicyPendingProbe(policy))
    if obs is not None:
        obs.attach(cluster, policy=policy)
    with phase("build_jobs"):
        jobs = trace.build_jobs()
    for job in jobs:
        cluster.sim.schedule_at(job.submit_time,
                                functools.partial(policy.submit, job))
    if obs is not None:
        obs.bind_run(collector=collector, jobs=jobs, trace_name=trace.name)
    if checkpoint_at is not None:
        from repro.sim.checkpoint import save_checkpoint

        with phase("checkpoint"):
            cluster.sim.run(until=checkpoint_at)
            save_checkpoint(checkpoint_to, cluster=cluster, policy=policy,
                            collector=collector, jobs=jobs,
                            trace_name=trace.name)
    with phase("simulate"):
        if obs is not None:
            # Routes through the session's live-telemetry wrappers
            # (profiler span, paced HTTP serving); plain sessions
            # degenerate to sim.run().
            obs.run_engine(cluster.sim)
        else:
            cluster.sim.run()
    with phase("summarize"):
        summary = summarize_run(policy, jobs, collector, trace.name)
    if cluster.faults is not None:
        # Fault counters cross the process boundary with the summary;
        # fault-free runs add no keys (byte-identical extras, pinned).
        summary.extra.update(cluster.faults.extra_metrics())
    if obs is not None:
        obs.finalize(summary)
    return ExperimentResult(summary=summary, cluster=cluster,
                            policy=policy, collector=collector, trace=trace)


def run_experiment(group: WorkloadGroup, trace_index: int,
                   policy: str = "g-loadsharing", seed: int = 0,
                   config: Optional[ClusterConfig] = None,
                   scale: float = 1.0,
                   policy_kwargs: Optional[dict] = None,
                   nodes: Optional[int] = None,
                   obs: Optional[ObsSession] = None,
                   faults: Optional[FaultConfig] = None,
                   checkpoint_at: Optional[float] = None,
                   checkpoint_to: Optional[str] = None
                   ) -> ExperimentResult:
    """Generate the published trace and run it under ``policy``.

    ``nodes`` overrides the cluster size (the trace is regenerated for
    that topology, so home-node placement stays uniform).  ``obs``
    instruments the run (see :func:`run_trace`).  ``faults`` overrides
    the config's failure model (see :mod:`repro.faults`).
    ``checkpoint_at``/``checkpoint_to`` snapshot the run mid-flight
    (see :func:`run_trace`).
    """
    cfg = config if config is not None else default_config(group)
    if nodes is not None:
        cfg = cfg.replace(num_nodes=nodes)
    if faults is not None:
        cfg = cfg.replace(faults=faults)
    phase = obs.phase if obs is not None else (lambda name: nullcontext())
    with phase("build_trace"):
        trace = build_trace(group, trace_index, seed=seed,
                            num_nodes=cfg.num_nodes)
        trace = subsample_trace(trace, scale)
    return run_trace(trace, policy, cfg, policy_kwargs, obs=obs,
                     checkpoint_at=checkpoint_at,
                     checkpoint_to=checkpoint_to)


def main(argv: Optional[List[str]] = None) -> int:
    """Single-run CLI with an optional cProfile wrapper.

    ``python -m repro.experiments.runner --trace 3 --scale 0.25
    --profile`` prints the top-25 cumulative profile entries — the
    tool used to find the scheduling-layer hot spots, shipped with the
    repo so future regressions can be diagnosed the same way.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Run one trace under one policy (optionally "
                    "profiled).")
    parser.add_argument("--group", choices=["spec", "app"], default="spec",
                        help="workload group (default spec)")
    parser.add_argument("--trace", type=int, default=3,
                        help="trace index 1..5 (default 3)")
    parser.add_argument("--policy", default="g-loadsharing",
                        choices=sorted(POLICIES),
                        help="scheduling policy (default g-loadsharing)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="trace subsampling factor in (0, 1]")
    parser.add_argument("--nodes", type=int, default=None, metavar="N",
                        help="override the cluster size")
    parser.add_argument("--no-index", action="store_true",
                        help="use the unindexed (seed) candidate-"
                             "selection path")
    parser.add_argument("--no-columnar", action="store_true",
                        help="disable the columnar (SoA) cluster state "
                             "layer; batch consumers walk node objects")
    parser.add_argument("--domains", type=int, default=None, metavar="K",
                        help="partition the cluster into K load-info "
                             "domains (per-domain directory shards + "
                             "slower inter-domain summaries; default 1 "
                             "= flat directory)")
    parser.add_argument("--domain-exchange-interval", type=float,
                        default=None, metavar="S",
                        help="inter-domain summary exchange period in "
                             "seconds (staleness knob; default 5, "
                             "0 = always fresh)")
    parser.add_argument("--faults", action="store_true",
                        help="enable fault injection with default "
                             "parameters (implied by the fault "
                             "options below)")
    parser.add_argument("--mtbf", type=float, default=None, metavar="S",
                        help="mean time between node crashes in "
                             "seconds (default 3600 when faults are "
                             "enabled)")
    parser.add_argument("--mttr", type=float, default=None, metavar="S",
                        help="mean time to repair a crashed node in "
                             "seconds (default 60)")
    parser.add_argument("--fault-seed", type=int, default=None,
                        metavar="N",
                        help="seed of the fault streams, independent "
                             "of the workload seed (default 0)")
    parser.add_argument("--crash-policy", default=None,
                        choices=["requeue", "checkpoint"],
                        help="fate of jobs on a crashed node "
                             "(default requeue)")
    parser.add_argument("--profile", action="store_true",
                        help="wrap the run in cProfile and print the "
                             "top-25 cumulative entries")
    parser.add_argument("--obs", action="store_true",
                        help="instrument the run (event bus + metrics; "
                             "implied by the --*-out paths below)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON of the "
                             "run (open in https://ui.perfetto.dev)")
    parser.add_argument("--log-json", metavar="PATH", default=None,
                        help="write the structured JSONL run log")
    parser.add_argument("--obs-metrics", metavar="PATH", default=None,
                        help="write the metrics snapshot as JSON")
    parser.add_argument("--prom", metavar="PATH", default=None,
                        help="write the metrics in Prometheus text "
                             "exposition format")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="write a self-contained HTML run report "
                             "(lifecycle tracing + slowdown "
                             "attribution; implies --obs)")
    parser.add_argument("--sample-period", type=float, default=None,
                        metavar="S",
                        help="sample per-node cluster state every S "
                             "simulated seconds (feeds the report "
                             "timelines; implies --obs)")
    parser.add_argument("--sampler-csv", metavar="PATH", default=None,
                        help="write the sampled cluster time series "
                             "as wide-row CSV (requires "
                             "--sample-period)")
    parser.add_argument("--stream-log", metavar="PATH", default=None,
                        help="stream every observed event to a "
                             "line-buffered JSONL file as it happens "
                             "(tail -f friendly; implies --obs)")
    parser.add_argument("--serve", type=int, default=None, metavar="PORT",
                        nargs="?", const=0,
                        help="serve live telemetry over HTTP on PORT "
                             "(omit or 0 for an ephemeral port): "
                             "/metrics /healthz /snapshot.json "
                             "/dashboard; implies --obs")
    parser.add_argument("--serve-port-file", metavar="PATH", default=None,
                        help="write the bound --serve port to PATH "
                             "(ephemeral-port discovery for scripts)")
    parser.add_argument("--pace", type=float, default=0.0, metavar="X",
                        help="advance at most X simulated seconds per "
                             "wall second while serving (0 = unpaced, "
                             "the default)")
    parser.add_argument("--window", type=float, default=None, metavar="S",
                        help="windowed-aggregation width in simulated "
                             "seconds (default 50 when serving or "
                             "health rules are active; implies --obs)")
    parser.add_argument("--health-rule", action="append", default=None,
                        metavar="RULE",
                        help="declarative health rule, e.g. "
                             "'blocking.rate > 0.5 for 3 windows' or "
                             "'critical: absent(finish.rate) for 5 "
                             "windows'; repeatable; implies --obs")
    parser.add_argument("--self-profile", action="store_true",
                        help="time engine phases (recompute/placement/"
                             "loadinfo/reconfiguration/obs) and fold "
                             "obs.profile_* into the summary; adds a "
                             "self-profile track to --trace-out; "
                             "implies --obs")
    parser.add_argument("--export-csv", metavar="PATH", default=None,
                        help="write the run summary as CSV")
    parser.add_argument("--export-json", metavar="PATH", default=None,
                        help="write the run summary as JSON")
    parser.add_argument("--checkpoint-at", type=float, default=None,
                        metavar="T",
                        help="pause at simulated time T, write a "
                             "restorable snapshot to --checkpoint-to, "
                             "then continue to completion")
    parser.add_argument("--checkpoint-to", metavar="PATH", default=None,
                        help="checkpoint file path (required with "
                             "--checkpoint-at)")
    parser.add_argument("--restore-from", metavar="PATH", default=None,
                        help="restore a checkpoint instead of building "
                             "a trace, and run it to completion "
                             "(byte-identical to the uninterrupted "
                             "run; workload flags are ignored)")
    parser.add_argument("--submit-stdin", action="store_true",
                        help="admit JSONL job specs from stdin into "
                             "the live run until EOF (requires "
                             "--serve; the run stays alive while "
                             "stdin is open)")
    args = parser.parse_args(argv)

    group = (WorkloadGroup.SPEC if args.group == "spec"
             else WorkloadGroup.APP)
    config = default_config(group)
    if args.nodes is not None:
        config = config.replace(num_nodes=args.nodes)
    if args.no_index:
        config = config.replace(indexed_selection=False)
    if args.no_columnar:
        config = config.replace(columnar=False)
    if args.domains is not None:
        config = config.replace(domains=args.domains)
    if args.domain_exchange_interval is not None:
        config = config.replace(
            domain_exchange_interval_s=args.domain_exchange_interval)
    faults = build_fault_config(args)
    if faults is not None:
        config = config.replace(faults=faults)

    if args.sampler_csv and args.sample_period is None:
        parser.error("--sampler-csv requires --sample-period")
    if args.serve is None:
        if args.pace:
            parser.error("--pace requires --serve")
        if args.serve_port_file:
            parser.error("--serve-port-file requires --serve")
        if args.submit_stdin:
            parser.error("--submit-stdin requires --serve")
    if args.pace < 0:
        parser.error("--pace must be >= 0")
    if (args.checkpoint_at is None) != (args.checkpoint_to is None):
        parser.error("--checkpoint-at and --checkpoint-to go together")
    if args.restore_from is not None and args.checkpoint_at is not None:
        parser.error("--restore-from cannot be combined with "
                     "--checkpoint-at")
    want_obs = (args.obs or args.trace_out or args.log_json
                or args.obs_metrics or args.prom or args.report
                or args.sample_period is not None
                or args.stream_log is not None
                or args.serve is not None
                or args.window is not None
                or args.health_rule is not None
                or args.self_profile)
    obs = None
    if want_obs:
        label = f"{args.group}-trace-{args.trace} {args.policy}"
        obs = ObsSession(record_events=bool(args.trace_out
                                            or args.log_json),
                         run_label=label,
                         lifecycle=bool(args.report),
                         sample_period=args.sample_period,
                         stream_log=args.stream_log,
                         window_s=args.window,
                         health_rules=args.health_rule,
                         serve=args.serve,
                         serve_port_file=args.serve_port_file,
                         pace=args.pace,
                         profile=args.self_profile,
                         ingest_stdin=args.submit_stdin)
        # Killed service runs (systemd stop, supervisor timeouts) must
        # still unwind atexit handlers so the streaming JSONL log
        # closes at a line boundary; SIGTERM's default handler would
        # skip them.  Only the main thread may install this.
        import signal
        import sys as _sys
        try:
            signal.signal(signal.SIGTERM,
                          lambda signum, frame: _sys.exit(143))
        except ValueError:  # pragma: no cover - non-main thread
            pass

    def run() -> ExperimentResult:
        if args.restore_from is not None:
            from repro.sim.checkpoint import load_checkpoint, resume

            restored = load_checkpoint(args.restore_from)
            return resume(restored, obs=obs)
        return run_experiment(group, args.trace, policy=args.policy,
                              seed=args.seed, scale=args.scale,
                              config=config, obs=obs,
                              checkpoint_at=args.checkpoint_at,
                              checkpoint_to=args.checkpoint_to)

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        result = profiler.runcall(run)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        stats.print_stats(25)
    else:
        result = run()

    summary = result.summary
    events = result.cluster.sim.event_count
    print(f"{summary.policy} on {summary.trace}: "
          f"{summary.num_jobs} jobs over {result.cluster.num_nodes} nodes, "
          f"makespan {summary.makespan_s:.1f}s, "
          f"avg slowdown {summary.average_slowdown:.2f}, "
          f"{summary.migrations} migrations, {events} events")
    fault_keys = sorted(k for k in summary.extra if k.startswith("fault."))
    if fault_keys:
        print("faults: " + ", ".join(
            f"{key[len('fault.'):]}={summary.extra[key]:g}"
            for key in fault_keys))

    if obs is not None:
        snapshot = obs.finalize()
        print(f"obs: {len(obs.events)} events recorded, "
              f"{snapshot.get('migrations', 0):.0f} migrations, "
              f"{snapshot.get('reservation_reserve', 0):.0f} reservations, "
              f"{snapshot.get('blocking_detections', 0):.0f} blocking "
              f"detections")
        if obs.health is not None:
            verdict = obs.health.verdict()
            print(f"health: {verdict['status']} "
                  f"({verdict['incidents']} incidents over "
                  f"{verdict['windows_evaluated']} windows)")
        if obs.profiler is not None:
            profile_report = obs.profiler.report()
            shares = ", ".join(
                f"{phase}={seconds:.3f}s"
                for phase, seconds in sorted(
                    profile_report["phases_s"].items(),
                    key=lambda item: -item[1]))
            print(f"profile: engine "
                  f"{profile_report['engine_wall_s']:.3f}s wall, "
                  f"coverage {profile_report['coverage']:.1%} ({shares})")
        if obs.live is not None:
            print(f"live: served {obs.live.requests_served} requests on "
                  f"{obs.live.url} ({obs.live.publishes} publishes)")
        if args.trace_out:
            obs.write_trace(args.trace_out)
            print(f"[wrote Perfetto trace {args.trace_out}]")
        if args.log_json:
            count = obs.write_log(args.log_json)
            print(f"[wrote {count} JSONL events to {args.log_json}]")
        if args.obs_metrics:
            obs.write_metrics(args.obs_metrics)
            print(f"[wrote metrics snapshot {args.obs_metrics}]")
        if args.prom:
            samples = obs.write_prom(args.prom)
            print(f"[wrote {samples} Prometheus samples to {args.prom}]")
        if args.report:
            obs.write_report(args.report)
            print(f"[wrote HTML report {args.report}]")
        if args.sampler_csv:
            rows = obs.write_sampler_csv(args.sampler_csv)
            print(f"[wrote {rows} sample rows to {args.sampler_csv}]")
    if args.export_csv or args.export_json:
        from repro.metrics.export import summaries_to_csv, summaries_to_json

        if args.export_csv:
            summaries_to_csv([summary], target=args.export_csv)
            print(f"[wrote {args.export_csv}]")
        if args.export_json:
            summaries_to_json([summary], target=args.export_json)
            print(f"[wrote {args.export_json}]")
    if obs is not None:
        obs.close()
    return 0


def run_group(group: WorkloadGroup, policy: str, seed: int = 0,
              config: Optional[ClusterConfig] = None,
              scale: float = 1.0,
              trace_indices: Optional[List[int]] = None,
              jobs: int = 1) -> List[RunSummary]:
    """Run all five traces of a group under one policy.

    ``jobs`` fans the independent per-trace runs out to worker
    processes (see :mod:`repro.experiments.parallel`); the returned
    summaries are identical to the serial ones, in trace order.
    """
    from repro.experiments.parallel import RunSpec, run_specs

    indices = trace_indices if trace_indices is not None else [1, 2, 3, 4, 5]
    specs = [RunSpec(group=group, trace_index=i, policy=policy, seed=seed,
                     scale=scale, config=config)
             for i in indices]
    return run_specs(specs, jobs=jobs)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    import sys

    sys.exit(main())
