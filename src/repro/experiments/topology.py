"""Topology study: slowdown vs. domain size vs. summary staleness.

The domain layer (:mod:`repro.cluster.domains`) trades scheduling
quality for locality: candidate selection, blocking detection, and
reservation all confine themselves to one domain's shard and see the
rest of the cluster only through compact summaries refreshed on the
slower ``domain_exchange_interval_s`` period.  This experiment
quantifies the trade by sweeping a grid of domain counts against a
grid of summary-staleness periods under one policy and identical
workloads.

Reported per cell:

* **average slowdown** — the paper's primary per-job metric; the cost
  of placing against a partitioned, stale view;
* **migrations** and **cross-domain reservations** — how often the
  two-level machinery escalates past the domain boundary.

``domains=1`` is the flat-directory baseline: staleness has no effect
there (there are no summaries), so the baseline is run once and its
summary reused across every staleness column.

Two workloads: the default sweeps a published trace (underloaded at
the default 64 nodes — it shows partitioning drift but rarely
escalates), and ``blocking=True`` sweeps the constructed blocking
scenario (:mod:`repro.experiments.scenario`), where domains small
enough to isolate the wedge nodes force *cross-domain* reservations
and the staleness knob visibly changes blocking counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.experiments.parallel import RunSpec, run_specs
from repro.experiments.runner import default_config
from repro.metrics.report import render_table
from repro.metrics.summary import RunSummary
from repro.workload.programs import WorkloadGroup

#: Domain-count grid; 1 is the flat-directory baseline.
DEFAULT_DOMAINS: Tuple[int, ...] = (1, 2, 4, 8)

#: Summary-staleness grid (s); 0 recomputes summaries on every access.
DEFAULT_STALENESS: Tuple[float, ...] = (0.0, 5.0, 20.0)

DEFAULT_POLICY = "v-reconfiguration"


@dataclass
class TopologyReport:
    """One sweep's summaries, indexed by (domains, staleness_s)."""

    group: WorkloadGroup
    trace_index: int
    seed: int
    policy: str
    nodes: int
    domains_grid: Tuple[int, ...]
    staleness_grid: Tuple[float, ...]
    summaries: Dict[Tuple[int, float], RunSummary]
    #: ``True`` when the sweep ran the constructed blocking scenario.
    blocking: bool = False

    def _workload_label(self) -> str:
        if self.blocking:
            return "constructed blocking scenario"
        return f"{self.group.value} trace {self.trace_index}"

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for domains in self.domains_grid:
            row: Dict[str, object] = {"domains": domains}
            for staleness in self.staleness_grid:
                summary = self.summaries[(domains, staleness)]
                row[f"slowdown s={staleness:g}"] = summary.average_slowdown
            # Escalation volume at the slowest summaries (worst case).
            worst = self.summaries[(domains, self.staleness_grid[-1])]
            row["migrations"] = worst.migrations
            row["blocking"] = worst.blocking_events
            row["xdomain reservations"] = worst.extra.get(
                "cross_domain_reservations", 0)
            rows.append(row)
        return rows

    def render(self) -> str:
        columns = ["domains"]
        columns += [f"slowdown s={s:g}" for s in self.staleness_grid]
        columns += ["migrations", "blocking", "xdomain reservations"]
        title = (f"Slowdown vs. domains vs. staleness — "
                 f"{self._workload_label()}, "
                 f"{self.policy}, {self.nodes} nodes, seed {self.seed}")
        return render_table(self.rows(), columns, title=title)

    def comparison_rows(self) -> List[Dict[str, object]]:
        """Flatten into :mod:`repro.obs.report` comparison rows — one
        per (domains, staleness) cell, one series per staleness value,
        domain count on the x axis."""
        from repro.obs.report import comparison_row

        rows: List[Dict[str, object]] = []
        for staleness in self.staleness_grid:
            series = f"s={staleness:g}"
            for domains in self.domains_grid:
                summary = self.summaries[(domains, staleness)]
                row = comparison_row(f"{series} @ K={domains}", series,
                                     float(domains), summary)
                row["cross_domain_reservations"] = summary.extra.get(
                    "cross_domain_reservations", 0)
                rows.append(row)
        return rows

    def write_report(self, target: str) -> str:
        """Write the comparison HTML report for this sweep."""
        from repro.obs.report import render_comparison_report, write_report

        title = (f"Topology study — {self._workload_label()}, "
                 f"{self.policy}")
        html = render_comparison_report(
            title, self.comparison_rows(),
            x_label="load-info domains",
            subtitle=f"{self.nodes} nodes · seed {self.seed} · summary "
                     f"staleness grid "
                     f"{', '.join(f'{s:g}s' for s in self.staleness_grid)}")
        return write_report(target, html)


def run_topology_experiment(
        group: WorkloadGroup = WorkloadGroup.SPEC,
        trace_index: int = 3,
        seed: int = 0,
        scale: float = 1.0,
        nodes: Optional[int] = None,
        policy: str = DEFAULT_POLICY,
        domains_grid: Sequence[int] = DEFAULT_DOMAINS,
        staleness_grid: Sequence[float] = DEFAULT_STALENESS,
        config: Optional[ClusterConfig] = None,
        jobs: int = 1,
        blocking: bool = False,
        lifecycle: bool = False,
        sample_period: Optional[float] = None) -> TopologyReport:
    """Sweep slowdown over the domains x staleness grid.

    Each cell is one independent run; ``jobs`` fans them out to worker
    processes with summaries identical to serial.  The ``domains=1``
    baseline has no summaries, so it runs once and fills every
    staleness column.  ``blocking=True`` swaps the published trace for
    the constructed blocking scenario (cells run serially there — the
    scenario is a fast 32-node batch); ``nodes`` defaults to 64 for
    the trace sweep and the scenario's 32 otherwise.
    """
    if nodes is None:
        nodes = 32 if blocking else 64
    if blocking:
        return _run_blocking_sweep(seed, nodes, policy, domains_grid,
                                   staleness_grid, config)
    base = config if config is not None else default_config(group)
    base = base.replace(num_nodes=nodes)
    specs: List[RunSpec] = []
    cells: List[Tuple[int, float]] = []
    for domains in domains_grid:
        for staleness in staleness_grid:
            if domains == 1 and staleness != staleness_grid[0]:
                continue  # flat baseline: staleness-independent
            cfg = base.replace(domains=domains,
                               domain_exchange_interval_s=staleness)
            specs.append(RunSpec(
                group=group, trace_index=trace_index, policy=policy,
                seed=seed, scale=scale, config=cfg,
                label=f"K={domains} s={staleness:g} {policy}",
                lifecycle=lifecycle, sample_period=sample_period))
            cells.append((domains, staleness))
    summaries = dict(zip(cells, run_specs(specs, jobs=jobs)))
    if 1 in domains_grid:
        baseline = summaries[(1, staleness_grid[0])]
        for staleness in staleness_grid:
            summaries[(1, staleness)] = baseline
    return TopologyReport(
        group=group, trace_index=trace_index, seed=seed, policy=policy,
        nodes=nodes, domains_grid=tuple(domains_grid),
        staleness_grid=tuple(staleness_grid), summaries=summaries)


def _run_blocking_sweep(seed: int, nodes: int, policy: str,
                        domains_grid: Sequence[int],
                        staleness_grid: Sequence[float],
                        config: Optional[ClusterConfig]
                        ) -> TopologyReport:
    """The domains x staleness grid over the constructed blocking
    scenario — the memory-pressured regime where small domains force
    cross-domain reservations."""
    from repro.experiments.scenario import (
        SCENARIO_CLUSTER,
        run_blocking_scenario,
    )

    base = config if config is not None else SCENARIO_CLUSTER.replace()
    base = base.replace(num_nodes=nodes)
    summaries: Dict[Tuple[int, float], RunSummary] = {}
    for domains in domains_grid:
        for staleness in staleness_grid:
            if domains == 1 and staleness != staleness_grid[0]:
                continue  # flat baseline: staleness-independent
            cfg = base.replace(domains=domains,
                               domain_exchange_interval_s=staleness)
            result = run_blocking_scenario(policy, seed=seed, config=cfg)
            summaries[(domains, staleness)] = result.summary
    if 1 in domains_grid:
        baseline = summaries[(1, staleness_grid[0])]
        for staleness in staleness_grid:
            summaries[(1, staleness)] = baseline
    return TopologyReport(
        group=WorkloadGroup.SPEC, trace_index=0, seed=seed,
        policy=policy, nodes=nodes, domains_grid=tuple(domains_grid),
        staleness_grid=tuple(staleness_grid), summaries=summaries,
        blocking=True)
