"""Declarative failure model: what can go wrong, and how often.

A :class:`FaultConfig` describes three independent fault classes:

* **node crashes** — fail-stop outages, either stochastic
  (exponential inter-failure times with mean ``mtbf_s`` per node and
  exponential repair times with mean ``mttr_s``) or scripted through
  an explicit :class:`FaultPlan`;
* **lossy load information** — each node's contribution to a
  load-exchange round may be dropped (retried next round) or delayed
  by a fixed latency, modelling lost/slow load-index messages;
* **migration transfer failures** — a migration's image transfer may
  fail in flight; the scheduling layer retries with capped
  exponential backoff and finally falls back to local execution.

Everything is driven from ``fault_seed`` through its own
:class:`~repro.sim.rng.RandomStreams`, so fault arrival patterns are
reproducible and independent of the workload seed: the same
``(seed, fault_seed)`` pair replays the same run, and changing only
``fault_seed`` re-rolls the failures under an identical workload.

This module is dependency-free (plain dataclasses) so cluster/run
configuration can import it without touching simulation code.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

#: Crash policies: what happens to the work a dying node was running.
CRASH_POLICIES = ("requeue", "checkpoint")


@dataclass(frozen=True)
class NodeOutage:
    """One scripted fail-stop interval for one node.

    ``end_s=None`` means the node never recovers within the run.
    """

    node_id: int
    start_s: float
    end_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ValueError("end_s must be after start_s")


@dataclass(frozen=True)
class FaultPlan:
    """An explicit outage script (overrides stochastic crashes).

    Outages for one node must not overlap; they may appear in any
    order (validation sorts per node).
    """

    outages: Tuple[NodeOutage, ...] = ()

    def __post_init__(self) -> None:
        per_node: dict = {}
        for outage in self.outages:
            per_node.setdefault(outage.node_id, []).append(outage)
        for node_id, entries in per_node.items():
            entries.sort(key=lambda o: o.start_s)
            for earlier, later in zip(entries, entries[1:]):
                if earlier.end_s is None or later.start_s < earlier.end_s:
                    raise ValueError(
                        f"overlapping outages for node {node_id}: "
                        f"{earlier} and {later}")

    def for_node(self, node_id: int) -> Tuple[NodeOutage, ...]:
        """This node's outages in start order."""
        return tuple(sorted(
            (o for o in self.outages if o.node_id == node_id),
            key=lambda o: o.start_s))


@dataclass(frozen=True)
class FaultConfig:
    """Full failure model of one run (hashable, picklable)."""

    #: Per-node mean time between failures (s); ``None`` disables
    #: stochastic crashes (scripted ``plan`` outages still apply).
    mtbf_s: Optional[float] = 3600.0
    #: Mean time to repair a crashed node (s).
    mttr_s: float = 60.0
    #: Root seed of the fault streams (independent of the workload seed).
    fault_seed: int = 0
    #: ``"requeue"``: work on a crashed node is lost and the job
    #: restarts from scratch; ``"checkpoint"``: progress survives and
    #: the job resumes where it stopped.
    crash_policy: str = "requeue"
    #: Explicit outage script; when set, stochastic crashes are off.
    plan: Optional[FaultPlan] = None

    # --- lossy load-information exchange ------------------------------
    #: Probability a node's exchange-round update is lost (the node
    #: stays dirty and is retried next round).
    loadinfo_drop_prob: float = 0.0
    #: Probability a node's update is delayed instead of delivered
    #: immediately, and the delay applied to it.
    loadinfo_delay_prob: float = 0.0
    loadinfo_delay_s: float = 0.5

    # --- migration transfer failures ----------------------------------
    #: Probability any one migration transfer fails in flight.
    migration_failure_prob: float = 0.0
    #: Retries before a migration falls back to local execution.
    migration_max_retries: int = 3
    #: Capped exponential backoff between retries:
    #: ``min(cap, base * 2**attempt)``.
    migration_backoff_base_s: float = 0.5
    migration_backoff_cap_s: float = 8.0

    def __post_init__(self) -> None:
        if self.mtbf_s is not None and self.mtbf_s <= 0:
            raise ValueError("mtbf_s must be positive (or None)")
        if self.mttr_s <= 0:
            raise ValueError("mttr_s must be positive")
        if self.crash_policy not in CRASH_POLICIES:
            raise ValueError(f"crash_policy must be one of {CRASH_POLICIES}")
        for name in ("loadinfo_drop_prob", "loadinfo_delay_prob",
                     "migration_failure_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.loadinfo_delay_s < 0:
            raise ValueError("loadinfo_delay_s must be non-negative")
        if self.migration_max_retries < 0:
            raise ValueError("migration_max_retries must be >= 0")
        if self.migration_backoff_base_s < 0:
            raise ValueError("migration_backoff_base_s must be >= 0")
        if self.migration_backoff_cap_s < 0:
            raise ValueError("migration_backoff_cap_s must be >= 0")

    @property
    def crashes_enabled(self) -> bool:
        return self.plan is not None or self.mtbf_s is not None

    @property
    def loadinfo_faults_enabled(self) -> bool:
        return self.loadinfo_drop_prob > 0 or self.loadinfo_delay_prob > 0

    def replace(self, **changes) -> "FaultConfig":
        """Copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)
