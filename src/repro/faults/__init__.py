"""Seeded fault injection for cluster simulations.

The package separates the *what* from the *when*:

* :mod:`repro.faults.config` — :class:`FaultConfig` /
  :class:`FaultPlan`: a declarative, hashable description of the
  failure model (crash/recovery schedules, lossy load-information
  exchange, migration transfer failures).  Dependency-free so that
  configs and run specs can import it without pulling in the
  simulation stack.
* :mod:`repro.faults.injector` — :class:`FaultInjector`: the runtime
  that executes a plan against a live cluster and drives the
  resilience hooks (job requeue, directory eviction, reservation
  abort, migration retry policy).
"""

from repro.faults.config import FaultConfig, FaultPlan, NodeOutage
from repro.faults.injector import FaultInjector

__all__ = ["FaultConfig", "FaultPlan", "NodeOutage", "FaultInjector"]
