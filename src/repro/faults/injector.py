"""Runtime fault injection: executes a :class:`FaultConfig` plan.

One :class:`FaultInjector` is owned by the cluster (constructed when
``ClusterConfig.faults`` is set) and drives the three fault classes
against the live simulation:

* **crashes** — fail-stop a workstation: its running jobs are torn
  off, any active reservation on it is aborted, the load directory
  evicts it from both candidate orders, and the lost jobs are handed
  to the scheduling policy for requeue (or checkpoint-restart).  On
  recovery the node is re-admitted to the directory and the policy
  gets a drain notification so pending jobs can use it again.
* **lossy load information** — the directory consults
  :meth:`loadinfo_disposition` per refreshed node; drops keep the
  node dirty for the next round, delays re-apply the stale snapshot
  after the configured latency.
* **migration transfer failures** — the scheduling layer consults
  :meth:`migration_transfer_fails` once per transfer attempt and
  reports retry/fallback outcomes back for accounting.

All randomness comes from :class:`~repro.sim.rng.RandomStreams`
rooted at ``FaultConfig.fault_seed`` — one stream per node for crash
schedules plus one each for load-info and migration draws — so fault
timing is platform-stable, independent of the workload seed, and
unperturbed by which *other* fault classes are enabled.

Crash events are daemon events (a pending outage never keeps an idle
simulation alive), but recovery events are not: jobs requeued by a
crash may be placeable only after the node returns, so the recovery
must count as pending work or the simulation would drain with jobs
stranded in the pending queue.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.faults.config import FaultConfig, NodeOutage
from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster
    from repro.cluster.workstation import Workstation


class FaultInjector:
    """Executes one run's failure model against its cluster."""

    def __init__(self, cluster: "Cluster", config: FaultConfig):
        self.cluster = cluster
        self.config = config
        self.sim = cluster.sim
        self._streams = RandomStreams(config.fault_seed)
        self._loadinfo_rng = self._streams.stream("loadinfo")
        self._migration_rng = self._streams.stream("migration")
        #: Bound by :class:`~repro.scheduling.base.LoadSharingPolicy`
        #: at construction; receives lost jobs for requeue.
        self.policy = None
        #: Bound by :class:`~repro.core.reservation.ReservationManager`;
        #: aborts reservations on the crashed node.
        self.reservation_manager = None
        self.counters: Dict[str, int] = {}
        #: CPU-seconds of progress discarded by ``requeue`` crashes.
        self.wasted_work_s = 0.0
        self._obs = cluster.obs.channel("fault.injection")
        if config.loadinfo_faults_enabled:
            cluster.directory.fault_hook = self.loadinfo_disposition
        if config.plan is not None:
            for outage in config.plan.outages:
                if outage.node_id >= cluster.num_nodes:
                    raise ValueError(
                        f"outage for node {outage.node_id} but the "
                        f"cluster has {cluster.num_nodes} nodes")
                self.sim.schedule_at(
                    outage.start_s,
                    functools.partial(self._crash_outage, outage),
                    priority=1, daemon=True)
        elif config.mtbf_s is not None:
            for node in cluster.nodes:
                self._schedule_crash(node)

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------
    def _node_rng(self, node: "Workstation"):
        return self._streams.stream(f"crash-{node.node_id}")

    def _schedule_crash(self, node: "Workstation") -> None:
        delay = self._node_rng(node).expovariate(1.0 / self.config.mtbf_s)
        self.sim.schedule(delay, functools.partial(self._on_crash, node),
                          priority=1, daemon=True)

    def _crash_outage(self, outage: NodeOutage) -> None:
        """Planned-outage crash event (picklable partial target)."""
        self._on_crash(self.cluster.nodes[outage.node_id], outage=outage)

    def _on_crash(self, node: "Workstation",
                  outage: Optional[NodeOutage] = None) -> None:
        if not node.alive:  # pragma: no cover - plan validation forbids
            return
        self._count("crashes")
        lost = node.crash()
        obs = self._obs
        if obs.enabled:
            obs.emit(self.sim.now, "crash", node=node.node_id,
                     lost_jobs=len(lost),
                     policy=self.config.crash_policy)
        manager = self.reservation_manager
        if manager is not None:
            aborted = manager.node_crashed(node.node_id)
            if aborted is not None:
                self._count("reservation_aborts")
                if obs.enabled:
                    obs.emit(self.sim.now, "reservation-abort",
                             node=node.node_id,
                             reservation=aborted.reservation_id)
        self.cluster.directory.evict(node.node_id)
        if lost:
            self._count("lost_jobs", len(lost))
            for job in lost:
                job.dedicated = False
                if self.config.crash_policy == "requeue":
                    self.wasted_work_s += job.progress_s
                    job.progress_s = 0.0
            if self.policy is not None:
                self._count("requeues", len(lost))
                self.policy.requeue_lost_jobs(node, lost)
        if outage is not None:
            if outage.end_s is not None:
                self.sim.schedule_at(
                    outage.end_s,
                    functools.partial(self._on_recovery, node))
        else:
            downtime = self._node_rng(node).expovariate(
                1.0 / self.config.mttr_s)
            self.sim.schedule(downtime,
                              functools.partial(self._on_recovery, node))

    def _on_recovery(self, node: "Workstation") -> None:
        if node.alive:  # pragma: no cover - schedules never overlap
            return
        self._count("recoveries")
        node.recover()
        self.cluster.directory.readmit(node.node_id)
        obs = self._obs
        if obs.enabled:
            obs.emit(self.sim.now, "recover", node=node.node_id)
        # Second drain pass now that the directory lists the node again
        # (recover() itself notified before the readmission).
        self.cluster.notify_node_changed(node)
        if self.config.plan is None and self.config.mtbf_s is not None:
            self._schedule_crash(node)

    # ------------------------------------------------------------------
    # lossy load information
    # ------------------------------------------------------------------
    def loadinfo_disposition(self, node_id: int) -> Tuple[str, float]:
        """Fate of one node's exchange-round update.

        Returns ``(action, delay_s)`` with action one of ``"deliver"``,
        ``"drop"``, ``"delay"``.  One uniform draw decides: drops win
        the first ``loadinfo_drop_prob`` of the unit interval, delays
        the next ``loadinfo_delay_prob``.
        """
        cfg = self.config
        roll = self._loadinfo_rng.random()
        if roll < cfg.loadinfo_drop_prob:
            self._count("loadinfo_drops")
            obs = self._obs
            if obs.enabled:
                obs.emit(self.sim.now, "loadinfo-drop", node=node_id)
            return "drop", 0.0
        if roll < cfg.loadinfo_drop_prob + cfg.loadinfo_delay_prob:
            self._count("loadinfo_delays")
            obs = self._obs
            if obs.enabled:
                obs.emit(self.sim.now, "loadinfo-delay", node=node_id,
                         delay_s=cfg.loadinfo_delay_s)
            return "delay", cfg.loadinfo_delay_s
        return "deliver", 0.0

    # ------------------------------------------------------------------
    # migration transfer failures
    # ------------------------------------------------------------------
    def migration_transfer_fails(self) -> bool:
        """Draw whether the next migration transfer fails in flight."""
        prob = self.config.migration_failure_prob
        if prob <= 0.0:
            return False
        return self._migration_rng.random() < prob

    def record_migration_failure(self, job, source: "Workstation",
                                 destination: "Workstation",
                                 attempt: int) -> None:
        self._count("migration_failures")
        obs = self._obs
        if obs.enabled:
            obs.emit(self.sim.now, "migration-failed", job=job.job_id,
                     source=source.node_id, dest=destination.node_id,
                     attempt=attempt, dest_alive=destination.alive)

    def record_migration_retry(self, job, destination: "Workstation",
                               attempt: int, backoff_s: float) -> None:
        self._count("migration_retries")
        obs = self._obs
        if obs.enabled:
            obs.emit(self.sim.now, "migration-retry", job=job.job_id,
                     dest=destination.node_id, attempt=attempt,
                     backoff_s=backoff_s)

    def record_migration_fallback(self, job, source: "Workstation") -> None:
        self._count("migration_fallbacks")
        obs = self._obs
        if obs.enabled:
            obs.emit(self.sim.now, "migration-fallback", job=job.job_id,
                     source=source.node_id, source_alive=source.alive)

    def record_inflight_requeue(self, job) -> None:
        self._count("inflight_requeues")
        obs = self._obs
        if obs.enabled:
            obs.emit(self.sim.now, "inflight-requeue", job=job.job_id)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _count(self, key: str, by: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + by

    def extra_metrics(self) -> Dict[str, float]:
        """``fault.``-prefixed counters for ``RunSummary.extra``."""
        metrics = {f"fault.{key}": float(value)
                   for key, value in self.counters.items()}
        metrics["fault.wasted_work_s"] = self.wasted_work_s
        return metrics
