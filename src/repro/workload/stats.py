"""Workload characterization (the paper's §5 workload conditions).

§5 lists "majority jobs in the workload are equally sized in their
memory demands" as a condition under which virtual reconfiguration
cannot help, and asserts "in practice, our experiments have shown that
the memory demands of jobs in a workload are rarely equally sized".
This module quantifies that: demand dispersion, the large-job
fraction, and a one-line workload characterization used by reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.workload.trace import Trace


@dataclass(frozen=True)
class WorkloadCharacter:
    """Memory-demand characterization of one trace."""

    num_jobs: int
    mean_demand_mb: float
    std_demand_mb: float
    max_demand_mb: float
    #: Fraction of jobs whose peak demand exceeds half a workstation's
    #: user memory (the operational "large job" notion).
    large_fraction: float

    @property
    def coefficient_of_variation(self) -> float:
        """Demand dispersion; ~0 means 'equally sized' (§5's bad case)."""
        if self.mean_demand_mb == 0:
            return 0.0
        return self.std_demand_mb / self.mean_demand_mb

    @property
    def equally_sized(self) -> bool:
        """§5's unsuccessful-condition check."""
        return self.coefficient_of_variation < 0.1

    def summary(self) -> str:
        return (f"{self.num_jobs} jobs, demand "
                f"{self.mean_demand_mb:.0f}±{self.std_demand_mb:.0f} MB "
                f"(CV {self.coefficient_of_variation:.2f}), "
                f"max {self.max_demand_mb:.0f} MB, "
                f"large fraction {self.large_fraction:.1%}")


def characterize_demands(demands_mb: Sequence[float],
                         user_memory_mb: float) -> WorkloadCharacter:
    """Characterize a list of peak memory demands."""
    if not demands_mb:
        raise ValueError("empty demand list")
    if user_memory_mb <= 0:
        raise ValueError("user_memory_mb must be positive")
    n = len(demands_mb)
    mean = sum(demands_mb) / n
    var = sum((d - mean) ** 2 for d in demands_mb) / n
    threshold = 0.5 * user_memory_mb
    return WorkloadCharacter(
        num_jobs=n,
        mean_demand_mb=mean,
        std_demand_mb=math.sqrt(var),
        max_demand_mb=max(demands_mb),
        large_fraction=sum(1 for d in demands_mb if d > threshold) / n,
    )


def characterize_trace(trace: Trace,
                       user_memory_mb: float) -> WorkloadCharacter:
    """Characterize a generated trace's peak demands."""
    return characterize_demands(
        [job.peak_demand_mb for job in trace.jobs], user_memory_mb)
