"""Program catalogs for the two workload groups (paper Tables 1 and 2).

The numeric columns of Tables 1 and 2 are partially corrupted in the
available text of the paper, so the catalogs below are *reconstructions*
(see DESIGN.md §5): working sets for workload group 1 use well-known
SPEC CPU2000 memory footprints, lifetimes are anchored to the one
legible value (apsi = 2,619.0 s on the 400 MHz Pentium II); workload
group 2 uses plausible values for a 233 MHz Pentium with 128 MB such
that the mix is CPU-, memory- and I/O-diverse and a small fraction of
jobs cannot pairwise coexist in memory — the precondition for the
paper's blocking problem.

Each program carries a *profile shape*: ``(progress_fraction,
demand_fraction)`` control points expanded into a piecewise-constant
:class:`~repro.cluster.job.MemoryProfile` when a job instance is
created.  Demand is tied to CPU progress, so a slowed-down job reaches
its memory-hungry phase later, as a real program would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.cluster.job import MemoryProfile, Phase


class WorkloadGroup(enum.Enum):
    """The paper's two workload groups."""

    SPEC = "spec"   # workload group 1: SPEC 2000, cluster 1
    APP = "app"     # workload group 2: scientific/system apps, cluster 2


#: Default ramp: programs allocate ~40% of the working set at startup,
#: grow to the peak a quarter of the way in, and release some memory in
#: the final phase.
DEFAULT_SHAPE: Tuple[Tuple[float, float], ...] = (
    (0.00, 0.40),
    (0.10, 0.75),
    (0.25, 1.00),
    (0.90, 0.70),
)


@dataclass(frozen=True)
class Program:
    """One catalog entry (a row of Table 1 or Table 2)."""

    name: str
    group: WorkloadGroup
    description: str
    input_name: str
    #: Peak working set in MB (Table "working set" column; for ranged
    #: programs this is the upper end and ``working_set_min_mb`` the
    #: lower end).
    working_set_mb: float
    #: Dedicated-environment execution time in seconds (Table
    #: "lifetime" column).
    lifetime_s: float
    working_set_min_mb: float = 0.0
    #: I/O stall seconds per CPU-second (group 2 contains I/O-active
    #: programs; group 1 is CPU/memory intensive only).
    io_stall_per_cpu_s: float = 0.0
    #: Buffer cache the program's I/O wants (MB); sized from the I/O
    #: intensity when not set explicitly.
    buffer_cache_mb: float = 0.0
    #: Memory profile control points; demand fractions are relative to
    #: ``working_set_mb``.
    shape: Tuple[Tuple[float, float], ...] = DEFAULT_SHAPE
    #: Relative frequency of the program in generated job pools.  The
    #: paper relies on the observation (§2.2, citing [5, 9]) that the
    #: percentage of exceptionally large jobs in real workloads is very
    #: low, so the large/long programs carry small weights.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.working_set_mb <= 0:
            raise ValueError(f"{self.name}: working_set_mb must be positive")
        if self.lifetime_s <= 0:
            raise ValueError(f"{self.name}: lifetime_s must be positive")
        if not self.shape or self.shape[0][0] != 0.0:
            raise ValueError(f"{self.name}: shape must start at progress 0")

    # ------------------------------------------------------------------
    def memory_profile(self, lifetime_s: float,
                       peak_mb: float) -> MemoryProfile:
        """Expand the shape into a profile for a concrete job instance."""
        floor = self.working_set_min_mb
        phases = []
        last_start = -1.0
        for progress_frac, demand_frac in self.shape:
            start = progress_frac * lifetime_s
            if start <= last_start:  # guard against degenerate lifetimes
                continue
            demand = max(floor, demand_frac * peak_mb)
            phases.append(Phase(start, demand))
            last_start = start
        return MemoryProfile(phases)


def _spec(name: str, description: str, input_name: str, ws: float,
          lifetime: float, weight: float = 1.0,
          shape=DEFAULT_SHAPE) -> Program:
    return Program(name=name, group=WorkloadGroup.SPEC,
                   description=description, input_name=input_name,
                   working_set_mb=ws, lifetime_s=lifetime, shape=shape,
                   weight=weight)


def _app(name: str, description: str, input_name: str, ws: float,
         lifetime: float, ws_min: float = 0.0, io: float = 0.0,
         weight: float = 1.0, shape=DEFAULT_SHAPE) -> Program:
    return Program(name=name, group=WorkloadGroup.APP,
                   description=description, input_name=input_name,
                   working_set_mb=ws, working_set_min_mb=ws_min,
                   lifetime_s=lifetime, io_stall_per_cpu_s=io, shape=shape,
                   weight=weight, buffer_cache_mb=120.0 * io)


#: Table 1 — the 6 SPEC 2000 programs of workload group 1
#: (400 MHz Pentium II, 384 MB memory, 380 MB swap).  apsi's lifetime
#: is the one legible table value; the other lifetimes are scaled so a
#: trace's aggregate CPU demand lands in the regime where the paper's
#: results live (heavy but not hopeless, gains growing with the rate).
SPEC_PROGRAMS: Tuple[Program, ...] = (
    _spec("apsi", "climate modeling", "apsi.in", 191.0, 2619.0,
          weight=0.02),
    _spec("gcc", "optimized C compiler", "166.i", 90.0, 120.0,
          weight=0.26,
          shape=((0.0, 0.30), (0.05, 0.60), (0.30, 1.00), (0.85, 0.55))),
    _spec("gzip", "data compression", "input.graphic", 95.0, 130.0,
          weight=0.26,
          shape=((0.0, 0.50), (0.15, 1.00), (0.80, 0.80))),
    _spec("mcf", "combinatorial optimization", "inp.in", 190.0, 650.0,
          weight=0.06,
          shape=((0.0, 0.55), (0.05, 0.95), (0.20, 1.00))),
    _spec("vortex", "database", "lendian1.raw", 72.0, 100.0,
          weight=0.21),
    _spec("bzip", "data compression", "input.graphic", 92.0, 125.0,
          weight=0.19,
          shape=((0.0, 0.45), (0.10, 1.00), (0.85, 0.75))),
)

#: Table 2 — the 7 application programs of workload group 2
#: (233 MHz Pentium, 128 MB memory, 128 MB swap).
APP_PROGRAMS: Tuple[Program, ...] = (
    _app("bit-r", "bit-reversals", "2^20 elements", 9.0, 20.0,
         io=0.005, weight=0.20, shape=((0.0, 0.9), (0.1, 1.0))),
    _app("m-sort", "merge-sort", "2^20 entries", 28.0, 110.0,
         io=0.020, weight=0.18, shape=((0.0, 0.55), (0.10, 1.00))),
    _app("m-m", "matrix multiplication", "1,500x1,500", 26.0, 350.0,
         weight=0.16, shape=((0.0, 0.95), (0.05, 1.00))),
    _app("t-sim", "trace-driven simulation", "31,000 events", 50.0, 240.0,
         ws_min=12.0, io=0.050, weight=0.15,
         shape=((0.0, 0.25), (0.20, 0.60), (0.45, 1.00), (0.90, 0.50))),
    _app("metis", "partitioning meshes", "1M-4M nodes", 45.0, 160.0,
         ws_min=20.0, io=0.030, weight=0.15,
         shape=((0.0, 0.45), (0.15, 0.80), (0.40, 1.00))),
    _app("r-sphere", "cell-projection volume rendering (sphere)",
         "150,000 cells", 38.0, 260.0, io=0.080, weight=0.12,
         shape=((0.0, 0.60), (0.10, 1.00), (0.85, 0.70))),
    _app("r-wing", "cell-projection volume rendering (aircraft wing)",
         "500,000 cells", 112.0, 400.0, ws_min=60.0, io=0.080, weight=0.04,
         shape=((0.0, 0.55), (0.10, 0.85), (0.30, 1.00), (0.92, 0.65))),
)

_CATALOGS: Dict[WorkloadGroup, Tuple[Program, ...]] = {
    WorkloadGroup.SPEC: SPEC_PROGRAMS,
    WorkloadGroup.APP: APP_PROGRAMS,
}


def programs_for_group(group: WorkloadGroup) -> Tuple[Program, ...]:
    """The catalog for a workload group."""
    return _CATALOGS[group]


def program_by_name(name: str) -> Program:
    """Look up a program across both catalogs."""
    for catalog in _CATALOGS.values():
        for program in catalog:
            if program.name == name:
                return program
    raise KeyError(f"unknown program {name!r}")


def catalog_table(group: WorkloadGroup) -> Sequence[Tuple[str, ...]]:
    """Rows for reprinting Table 1 / Table 2."""
    rows = []
    for p in programs_for_group(group):
        if p.working_set_min_mb > 0:
            working_set = f"{p.working_set_min_mb:.0f}-{p.working_set_mb:.0f}"
        else:
            working_set = f"{p.working_set_mb:.0f}"
        rows.append((p.name, p.description, p.input_name, working_set,
                     f"{p.lifetime_s:.1f}"))
    return rows
