"""Workloads: program catalogs, arrival processes, traces.

Reproduces the paper's §3.2–3.3 experimental workloads:

* :mod:`repro.workload.programs` — the 6 SPEC-2000 programs of Table 1
  and the 7 scientific/system programs of Table 2;
* :mod:`repro.workload.arrivals` — the lognormal arrival-rate function
  (eq. 1) and the five published trace intensities per group;
* :mod:`repro.workload.generator` — synthesizes the ten workload
  traces (SPEC-Trace-1..5, App-Trace-1..5);
* :mod:`repro.workload.trace` — the trace container plus the on-disk
  format with per-10 ms activity records (§3.3.2).
"""

from repro.workload.arrivals import (
    TRACE_SPECS,
    LognormalArrivals,
    TraceSpec,
    lognormal_rate,
)
from repro.workload.generator import TraceGenerator, build_trace
from repro.workload.programs import (
    APP_PROGRAMS,
    SPEC_PROGRAMS,
    Program,
    WorkloadGroup,
    programs_for_group,
)
from repro.workload.trace import ActivityRecord, Trace, TraceJob

__all__ = [
    "APP_PROGRAMS",
    "ActivityRecord",
    "LognormalArrivals",
    "Program",
    "SPEC_PROGRAMS",
    "TRACE_SPECS",
    "Trace",
    "TraceGenerator",
    "TraceJob",
    "TraceSpec",
    "WorkloadGroup",
    "build_trace",
    "lognormal_rate",
    "programs_for_group",
]
