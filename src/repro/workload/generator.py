"""Synthesizes the paper's ten workload traces.

``build_trace(group, index, seed)`` reproduces SPEC-Trace-1..5 and
App-Trace-1..5 (§3.3.2): arrival instants follow the lognormal rate
function with the published parameters, each arrival draws a program
from the group catalog, is perturbed by a small lifetime/working-set
jitter (real runs of the same program differ slightly), and is
assigned a uniformly random home workstation among the 32 nodes.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional

from repro.sim.rng import RandomStreams
from repro.workload.arrivals import LognormalArrivals, trace_spec
from repro.workload.programs import (
    Program,
    WorkloadGroup,
    programs_for_group,
)
from repro.workload.trace import Trace, TraceJob


class TraceGenerator:
    """Deterministic (seeded) generator of workload traces."""

    def __init__(self, num_nodes: int = 32, seed: int = 0,
                 lifetime_jitter: float = 0.10,
                 working_set_jitter: float = 0.05):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if not 0 <= lifetime_jitter < 1:
            raise ValueError("lifetime_jitter must be in [0, 1)")
        if not 0 <= working_set_jitter < 1:
            raise ValueError("working_set_jitter must be in [0, 1)")
        self.num_nodes = num_nodes
        self.seed = seed
        self.lifetime_jitter = lifetime_jitter
        self.working_set_jitter = working_set_jitter

    # ------------------------------------------------------------------
    def build(self, group: WorkloadGroup, index: int) -> Trace:
        """Build trace ``index`` (1..5) for ``group``."""
        spec = trace_spec(index)
        label = f"{group.value}-{index}"
        streams = RandomStreams(self.seed).spawn(label)
        arrivals = LognormalArrivals(spec, rng=streams.stream("arrivals"))
        programs = programs_for_group(group)
        choose = streams.stream("programs")
        place = streams.stream("home-nodes")
        perturb = streams.stream("profiles")

        weights = [p.weight for p in programs]
        jobs: List[TraceJob] = []
        for job_index, submit_time in enumerate(arrivals.arrival_times()):
            program = choose.choices(programs, weights=weights, k=1)[0]
            lifetime = self._jitter(perturb, program.lifetime_s,
                                    self.lifetime_jitter)
            peak = self._jitter(perturb, program.working_set_mb,
                                self.working_set_jitter)
            peak = max(peak, program.working_set_min_mb + 1.0)
            profile = program.memory_profile(lifetime, peak)
            jobs.append(TraceJob(
                job_index=job_index,
                submit_time=submit_time,
                program=program.name,
                lifetime_s=lifetime,
                home_node=place.randrange(self.num_nodes),
                peak_demand_mb=profile.peak_demand_mb,
                io_stall_per_cpu_s=program.io_stall_per_cpu_s,
                buffer_cache_mb=program.buffer_cache_mb,
                memory_phases=[(p.start_progress, p.demand_mb)
                               for p in profile.phases],
            ))
        name = ("SPEC-Trace-" if group is WorkloadGroup.SPEC
                else "App-Trace-") + str(index)
        return Trace(name=name, group=group, trace_index=index,
                     duration_s=spec.duration_s, jobs=jobs)

    @staticmethod
    def _jitter(rng, value: float, fraction: float) -> float:
        if fraction <= 0:
            return value
        return value * (1.0 + rng.uniform(-fraction, fraction))


@lru_cache(maxsize=32)
def _cached_build(group: WorkloadGroup, index: int, seed: int,
                  num_nodes: int) -> Trace:
    return TraceGenerator(num_nodes=num_nodes, seed=seed).build(group, index)


def build_trace(group: WorkloadGroup, index: int, seed: int = 0,
                num_nodes: int = 32,
                generator: Optional[TraceGenerator] = None) -> Trace:
    """Convenience wrapper used by the experiment harness.

    Default-parameter builds (no explicit ``generator``) are memoized:
    a sweep that replays the same trace under several policies
    generates it once.  The cached :class:`Trace` and its ``TraceJob``
    records are treated as immutable by the whole experiment stack —
    each run materializes fresh mutable :class:`~repro.cluster.job.Job`
    objects via :meth:`Trace.build_jobs`, so sharing the trace between
    runs (or returning it to several callers) is safe.
    """
    if generator is not None:
        return generator.build(group, index)
    return _cached_build(group, index, seed, num_nodes)


def clear_trace_cache() -> None:
    """Drop memoized traces (tests and long-lived sweep processes)."""
    _cached_build.cache_clear()


def program_mix(trace: Trace) -> dict:
    """Histogram of program names in a trace (diagnostics)."""
    mix: dict = {}
    for job in trace.jobs:
        mix[job.program] = mix.get(job.program, 0) + 1
    return mix
