"""Workload traces: containers and the on-disk format.

The paper's traces (§3.3.2) carry, per job, a header (submission time,
job ID, lifetime measured in a dedicated environment) followed by
execution-activity records at 10 ms intervals (CPU cycles, memory
demand/allocation, buffer-cache allocation, number of I/Os).

We store activities *run-length encoded*: an ``A`` line is emitted
only when the activity vector changes, which is lossless for the
piecewise-constant profiles used here while keeping files small.
:meth:`TraceJob.activity_records` expands back to the full 10 ms
series when record-level fidelity is wanted.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, TextIO, Tuple, Union

from repro.cluster.job import Job, MemoryProfile
from repro.workload.programs import WorkloadGroup

RECORD_INTERVAL_MS = 10.0

FORMAT_HEADER = "# repro-trace v1"


@dataclass(frozen=True)
class ActivityRecord:
    """One 10 ms execution-activity sample."""

    offset_ms: float
    cpu_fraction: float
    memory_mb: float
    buffer_cache_mb: float = 0.0
    io_ops: int = 0


@dataclass
class TraceJob:
    """One job of a workload trace (header + compressed activities)."""

    job_index: int
    submit_time: float
    program: str
    lifetime_s: float
    home_node: int
    peak_demand_mb: float
    io_stall_per_cpu_s: float = 0.0
    buffer_cache_mb: float = 0.0
    #: Run-length-encoded memory demand: (start_progress_s, demand_mb).
    memory_phases: List[Tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.lifetime_s <= 0:
            raise ValueError("lifetime_s must be positive")
        if not self.memory_phases:
            self.memory_phases = [(0.0, self.peak_demand_mb)]

    # ------------------------------------------------------------------
    def memory_profile(self) -> MemoryProfile:
        return MemoryProfile.from_pairs(self.memory_phases)

    def to_job(self) -> Job:
        """Materialize a runnable :class:`~repro.cluster.job.Job`."""
        return Job(
            program=self.program,
            cpu_work_s=self.lifetime_s,
            memory=self.memory_profile(),
            submit_time=self.submit_time,
            home_node=self.home_node,
            io_stall_per_cpu_s=self.io_stall_per_cpu_s,
            buffer_cache_mb=self.buffer_cache_mb,
        )

    def activity_records(self) -> Iterator[ActivityRecord]:
        """Expand to the paper's 10 ms record series (one record per
        10 ms of dedicated execution)."""
        profile = self.memory_profile()
        steps = int(round(self.lifetime_s * 1000.0 / RECORD_INTERVAL_MS))
        io_per_interval = self.io_stall_per_cpu_s * RECORD_INTERVAL_MS
        for k in range(max(1, steps)):
            offset_ms = k * RECORD_INTERVAL_MS
            progress = offset_ms / 1000.0
            yield ActivityRecord(
                offset_ms=offset_ms,
                cpu_fraction=1.0,
                memory_mb=profile.demand_at(progress),
                buffer_cache_mb=self.buffer_cache_mb,
                io_ops=int(io_per_interval * 1000),
            )


@dataclass
class Trace:
    """A full workload trace (e.g. SPEC-Trace-3)."""

    name: str
    group: WorkloadGroup
    trace_index: int
    duration_s: float
    jobs: List[TraceJob]

    def __post_init__(self) -> None:
        submit_times = [job.submit_time for job in self.jobs]
        if submit_times != sorted(submit_times):
            raise ValueError("trace jobs must be sorted by submit time")

    # ------------------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    def total_work_s(self) -> float:
        """Total CPU demand of the trace (dedicated seconds)."""
        return sum(job.lifetime_s for job in self.jobs)

    def build_jobs(self) -> List[Job]:
        """Materialize all runnable jobs, in submission order."""
        return [job.to_job() for job in self.jobs]

    # ------------------------------------------------------------------
    # on-disk format
    # ------------------------------------------------------------------
    def write(self, target: Union[str, TextIO]) -> None:
        """Write the trace to a path or text stream."""
        if isinstance(target, str):
            with open(target, "w") as stream:
                self._write_stream(stream)
        else:
            self._write_stream(target)

    def _write_stream(self, out: TextIO) -> None:
        out.write(f"{FORMAT_HEADER} name={self.name} "
                  f"group={self.group.value} index={self.trace_index} "
                  f"duration={self.duration_s:.3f} jobs={len(self.jobs)}\n")
        for job in self.jobs:
            out.write(
                f"J {job.job_index} {job.submit_time:.6f} {job.program} "
                f"{job.lifetime_s:.6f} {job.home_node} "
                f"{job.peak_demand_mb:.3f} {job.io_stall_per_cpu_s:.6f} "
                f"{job.buffer_cache_mb:.3f}\n")
            for start, demand in job.memory_phases:
                out.write(f"A {start:.6f} {demand:.3f}\n")

    @classmethod
    def read(cls, source: Union[str, TextIO]) -> "Trace":
        """Read a trace from a path or text stream."""
        if isinstance(source, str):
            with open(source) as stream:
                return cls._read_stream(stream)
        return cls._read_stream(source)

    @classmethod
    def _read_stream(cls, stream: TextIO) -> "Trace":
        header = stream.readline().strip()
        if not header.startswith(FORMAT_HEADER):
            raise ValueError("not a repro-trace file")
        meta = dict(part.split("=", 1)
                    for part in header[len(FORMAT_HEADER):].split()
                    if "=" in part)
        jobs: List[TraceJob] = []
        current: List[str] = []
        phases: List[Tuple[float, float]] = []

        def flush() -> None:
            if not current:
                return
            jobs.append(TraceJob(
                job_index=int(current[0]),
                submit_time=float(current[1]),
                program=current[2],
                lifetime_s=float(current[3]),
                home_node=int(current[4]),
                peak_demand_mb=float(current[5]),
                io_stall_per_cpu_s=float(current[6]),
                buffer_cache_mb=(float(current[7])
                                 if len(current) > 7 else 0.0),
                memory_phases=list(phases),
            ))

        for line in stream:
            parts = line.split()
            if not parts or parts[0].startswith("#"):
                continue
            if parts[0] == "J":
                flush()
                current = parts[1:]
                phases = []
            elif parts[0] == "A":
                phases.append((float(parts[1]), float(parts[2])))
            else:
                raise ValueError(f"unknown trace line: {line.strip()!r}")
        flush()
        return cls(
            name=meta.get("name", "trace"),
            group=WorkloadGroup(meta.get("group", "spec")),
            trace_index=int(meta.get("index", "0")),
            duration_s=float(meta.get("duration", "0")),
            jobs=jobs,
        )

    def dumps(self) -> str:
        """Serialize to a string (round-trips through :meth:`read`)."""
        buf = io.StringIO()
        self._write_stream(buf)
        return buf.getvalue()


def summarize(trace: Trace) -> str:
    """One-line human summary used by examples and reports."""
    peak = max((job.peak_demand_mb for job in trace.jobs), default=0.0)
    return (f"{trace.name}: {trace.num_jobs} jobs over "
            f"{trace.duration_s:.0f}s, total work "
            f"{trace.total_work_s():.0f}s, peak demand {peak:.0f}MB")
