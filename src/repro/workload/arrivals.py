"""Lognormal job arrival process (paper eq. 1 and §3.3.2).

The paper generates job submission rates from the lognormal function

.. math::

    R_{ln}(t) = \\frac{1}{\\sqrt{2\\pi}\\,\\sigma t}
                e^{-\\frac{(\\ln t - \\mu)^2}{2\\sigma^2}},  \\quad t > 0

and collects five traces per workload group with the published
(σ = μ, job count, duration) combinations (``TRACE_SPECS``).

**Reconstruction note (DESIGN.md §5).**  Eq. 1 is the lognormal
probability density; the paper does not spell out how it maps onto
submission instants.  Reading it as an arrival-*time* density places
the median arrival at ``exp(mu)`` — tens of seconds — which would cram
nearly the whole trace into the first minute and contradicts the
published picture of hour-long traces at five different rates.  We
therefore follow the standard usage in the workload literature the
paper cites ([4], [10]): **inter-arrival gaps are lognormally
distributed** with the published (μ, σ), normalized so that exactly
``num_jobs`` jobs span exactly ``duration_s`` seconds.  Because a raw
lognormal with σ ≈ 3–4 is dominated by a handful of enormous gaps
(multi-hundred-second silences that the continuous published traces do
not exhibit), gaps are winsorized at the 85th percentile of the drawn
sample before normalization — the published σ is preserved as the
*burstiness ordering* (trace 1 burstiest/sparsest … trace 5
steadiest/densest) while single pathological gaps are bounded.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional


def lognormal_rate(t: float, mu: float, sigma: float) -> float:
    """The paper's rate function R_ln(t) (eq. 1), as published."""
    if t <= 0:
        return 0.0
    return (1.0 / (math.sqrt(2.0 * math.pi) * sigma * t)
            * math.exp(-((math.log(t) - mu) ** 2) / (2.0 * sigma ** 2)))


@dataclass(frozen=True)
class TraceSpec:
    """One published trace configuration (paper §3.3.2)."""

    index: int
    label: str
    sigma: float
    mu: float
    num_jobs: int
    duration_s: float


#: The five published intensities; identical parameters are used for
#: both workload groups (SPEC-Trace-i and App-Trace-i).
TRACE_SPECS: tuple = (
    TraceSpec(1, "light job submissions", 4.0, 4.0, 359, 3586.0),
    TraceSpec(2, "moderate job submissions", 3.7, 3.7, 448, 3589.0),
    TraceSpec(3, "normal job submissions", 3.0, 3.0, 578, 3581.0),
    TraceSpec(4, "moderately intensive job submissions", 2.0, 2.0, 684,
              3585.0),
    TraceSpec(5, "highly intensive job submissions", 1.5, 1.5, 777, 3582.0),
)


def trace_spec(index: int) -> TraceSpec:
    """The published spec for trace ``index`` (1-based)."""
    if not 1 <= index <= len(TRACE_SPECS):
        raise ValueError(f"trace index must be 1..{len(TRACE_SPECS)}")
    return TRACE_SPECS[index - 1]


class LognormalArrivals:
    """Generates arrival instants with lognormal inter-arrival gaps.

    Exactly ``spec.num_jobs`` arrivals span ``(0, spec.duration_s]``.
    Without an explicit ``rng`` a deterministic spec-derived seed is
    used, so the published traces are reproducible by default.
    """

    #: Gaps are capped at this sample quantile before normalization.
    WINSORIZE_QUANTILE = 0.85

    def __init__(self, spec: TraceSpec,
                 rng: Optional[random.Random] = None,
                 winsorize_quantile: Optional[float] = None):
        self.spec = spec
        q = (winsorize_quantile if winsorize_quantile is not None
             else self.WINSORIZE_QUANTILE)
        if not 0.0 < q <= 1.0:
            raise ValueError("winsorize_quantile must be in (0, 1]")
        self.winsorize_quantile = q
        if rng is None:
            rng = random.Random(hash(("repro-arrivals", spec.index,
                                      spec.num_jobs)) & 0xFFFFFFFF)
        self._rng = rng

    def arrival_times(self) -> List[float]:
        spec = self.spec
        gaps = [self._rng.lognormvariate(spec.mu, spec.sigma)
                for _ in range(spec.num_jobs)]
        cap = sorted(gaps)[int(self.winsorize_quantile * (len(gaps) - 1))]
        gaps = [min(gap, cap) for gap in gaps]
        scale = spec.duration_s / sum(gaps)
        times: List[float] = []
        t = 0.0
        for gap in gaps:
            t += gap * scale
            times.append(t)
        return times

    def burstiness(self) -> float:
        """Coefficient of variation of the (winsorized) gaps — a
        diagnostic of how bursty the trace is; decreases from trace 1
        to trace 5."""
        times = self.arrival_times()
        gaps = [b - a for a, b in zip([0.0] + times[:-1], times)]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        return math.sqrt(var) / mean if mean > 0 else 0.0
