"""Periodic cluster-state sampling into compact time series.

:class:`ClusterSampler` runs a *daemon* tick on the cluster's
simulator (so it never keeps an idle run alive) and snapshots every
workstation's load state on each tick: running-job count, total
memory demand, idle memory, page-fault rate, and the
thrashing/reserved/alive flags.

The sampler is deliberately read-only over **cached** workstation
state — the same `_recompute`-maintained caches the load directory
reads — and never touches lazily-advancing views like
``Workstation.running_jobs``, which would re-time-slice job progress
and perturb the run.  Because the tick is a daemon event and nothing
in :class:`~repro.metrics.summary.RunSummary` depends on simulator
sequence numbers, an instrumented run produces a byte-identical
summary to an uninstrumented one (the obs-overhead benchmark gates
exactly this).

Storage is columnar: one ``array('d')`` per metric holding
``ticks x nodes`` values row-major, plus one packed flag byte per
(tick, node).  A 32-node run sampled every 10 s for an hour costs
about 400 kB — small enough to hold for any sweep point.
"""

from __future__ import annotations

from array import array
from typing import IO, TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster

#: Per-node float metrics captured each tick (column order in the CSV).
SAMPLE_FIELDS = ("running", "demand_mb", "idle_mb", "fault_rate_per_s")

#: Flag bits packed into one byte per (tick, node).
FLAG_ALIVE = 1
FLAG_RESERVED = 2
FLAG_THRASHING = 4


def _flag_str(flags: int) -> str:
    """Human-readable flag column value (``"-"`` for a dead node)."""
    if not flags & FLAG_ALIVE:
        return "-"
    out = "A"
    if flags & FLAG_RESERVED:
        out += "R"
    if flags & FLAG_THRASHING:
        out += "T"
    return out


class ClusterSampler:
    """Snapshots per-node load state on a fixed simulated period."""

    def __init__(self, cluster: "Cluster", period_s: float):
        if period_s <= 0:
            raise ValueError(f"sample period must be positive: {period_s!r}")
        self.cluster = cluster
        self.period_s = float(period_s)
        self.num_nodes = cluster.num_nodes
        self.times = array("d")
        #: metric name -> row-major ticks x nodes samples.
        self.series: Dict[str, array] = {
            name: array("d") for name in SAMPLE_FIELDS}
        self.flags = bytearray()
        self._started = False
        #: Load-information domains (1 = no domain views).  Domain
        #: series are *views* computed on demand from the stored
        #: per-node columns; ``sample()`` itself is domain-blind.
        self.domains = getattr(cluster.config, "domains", 1)
        self._domain_bounds = (
            [cluster.directory.domain_bounds(d) for d in range(self.domains)]
            if self.domains > 1 else [(0, self.num_nodes)])

    # ------------------------------------------------------------------
    def start(self) -> "ClusterSampler":
        """Take the t=0 sample and begin ticking.  Idempotent."""
        if self._started:
            return self
        self._started = True
        self._tick()
        return self

    def _tick(self) -> None:
        self.sample()
        # priority 5: after every state change at the same instant
        # (monitors run at 3, the metrics collector at 4), so a sample
        # at time t sees the post-update state of t.
        self.cluster.sim.schedule(self.period_s, self._tick,
                                  priority=5, daemon=True)

    def sample(self) -> None:
        """Append one snapshot row for every node (also usable
        directly, without the periodic tick).

        With the cluster's columnar state attached the row is copied
        straight from the state columns — bulk ``extend`` calls plus
        one flag-byte ``translate``, zero per-node attribute reads
        (pinned by a regression test).  The state's low flag bits
        match this module's packing by design, and its float columns
        hold the property values bit-for-bit, so both paths append
        identical rows.
        """
        state = self.cluster.state
        self.times.append(self.cluster.sim.now)
        running = self.series["running"]
        demand = self.series["demand_mb"]
        idle = self.series["idle_mb"]
        faults = self.series["fault_rate_per_s"]
        flags = self.flags
        if state is not None:
            # num_running is an int column; extend() with a same-type
            # array is a memcpy, so only this one needs a conversion.
            running.extend(map(float, state.num_running))
            demand.extend(state.total_demand_mb)
            idle.extend(state.idle_memory_mb)
            faults.extend(state.fault_rate_per_s)
            flags.extend(state.sampler_flags())
            return
        for node in self.cluster.nodes:
            running.append(float(node.num_running))
            demand.append(node.total_demand_mb)
            idle.append(node.idle_memory_mb)
            faults.append(node.fault_rate_per_s)
            bits = 0
            if node.alive:
                bits |= FLAG_ALIVE
            if node.reserved:
                bits |= FLAG_RESERVED
            if node.thrashing:
                bits |= FLAG_THRASHING
            flags.append(bits)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return len(self.times)

    def node_series(self, metric: str, node_id: int) -> List[float]:
        """One node's time series for ``metric``."""
        data = self.series[metric]
        n = self.num_nodes
        return [data[i * n + node_id] for i in range(self.num_samples)]

    def totals(self, metric: str) -> List[float]:
        """Cluster-wide sum of ``metric`` per tick."""
        data = self.series[metric]
        n = self.num_nodes
        return [sum(data[i * n:(i + 1) * n])
                for i in range(self.num_samples)]

    def flag_counts(self, bit: int) -> List[int]:
        """Number of nodes with ``bit`` set, per tick."""
        n = self.num_nodes
        return [sum(1 for b in self.flags[i * n:(i + 1) * n] if b & bit)
                for i in range(self.num_samples)]

    def domain_totals(self, metric: str, domain: int) -> List[float]:
        """One domain's per-tick sum of ``metric`` (node-slice view
        over the stored series)."""
        lo, hi = self._domain_bounds[domain]
        data = self.series[metric]
        n = self.num_nodes
        return [sum(data[i * n + lo:i * n + hi])
                for i in range(self.num_samples)]

    def domain_flag_counts(self, bit: int, domain: int) -> List[int]:
        """Nodes in ``domain`` with ``bit`` set, per tick."""
        lo, hi = self._domain_bounds[domain]
        n = self.num_nodes
        return [sum(1 for b in self.flags[i * n + lo:i * n + hi] if b & bit)
                for i in range(self.num_samples)]

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def aggregate(self) -> Dict[str, float]:
        """Flat float summary for ``RunSummary.extra`` (prefixed
        ``sampler_``; see :class:`~repro.obs.session.ObsSession`)."""
        ticks = self.num_samples
        out: Dict[str, float] = {
            "sampler_samples": float(ticks),
            "sampler_period_s": self.period_s,
        }
        if ticks == 0:
            return out
        idle = self.totals("idle_mb")
        running = self.totals("running")
        thrash = self.flag_counts(FLAG_THRASHING)
        reserved = self.flag_counts(FLAG_RESERVED)
        dead = [self.num_nodes - alive
                for alive in self.flag_counts(FLAG_ALIVE)]
        out["sampler_mean_idle_mb"] = sum(idle) / ticks
        out["sampler_min_idle_mb"] = min(idle)
        out["sampler_mean_running"] = sum(running) / ticks
        out["sampler_peak_running"] = max(running)
        out["sampler_mean_thrashing_nodes"] = sum(thrash) / ticks
        out["sampler_peak_thrashing_nodes"] = float(max(thrash))
        out["sampler_mean_reserved_nodes"] = sum(reserved) / ticks
        out["sampler_peak_reserved_nodes"] = float(max(reserved))
        out["sampler_mean_dead_nodes"] = sum(dead) / ticks
        if self.domains > 1:
            # Imbalance across domains: per-tick spread (max - min) of
            # the domain idle-memory totals.  A large spread means the
            # two-level placement is leaving whole domains idle while
            # others page — the topology study's balance signal.
            per_domain = [self.domain_totals("idle_mb", d)
                          for d in range(self.domains)]
            spreads = [max(vals) - min(vals)
                       for vals in zip(*per_domain)]
            out["sampler_domains"] = float(self.domains)
            out["sampler_mean_domain_idle_spread_mb"] = sum(spreads) / ticks
            out["sampler_peak_domain_idle_spread_mb"] = max(spreads)
        return out

    def write_csv(self, stream: IO[str]) -> int:
        """Wide-row CSV: one row per tick; cluster totals first, then
        ``<metric>_n<id>`` columns per node plus a ``flags_n<id>``
        column.  Returns the number of data rows written."""
        n = self.num_nodes
        header = ["t", "total_running", "total_demand_mb",
                  "total_idle_mb", "thrashing_nodes", "reserved_nodes",
                  "alive_nodes"]
        if self.domains > 1:
            for d in range(self.domains):
                header.append(f"idle_mb_d{d}")
                header.append(f"running_d{d}")
                header.append(f"thrashing_d{d}")
        for node_id in range(n):
            for metric in SAMPLE_FIELDS:
                header.append(f"{metric}_n{node_id}")
            header.append(f"flags_n{node_id}")
        stream.write(",".join(header) + "\n")
        columns = [self.series[name] for name in SAMPLE_FIELDS]
        for i in range(self.num_samples):
            lo, hi = i * n, (i + 1) * n
            row = [f"{self.times[i]:g}",
                   f"{sum(self.series['running'][lo:hi]):g}",
                   f"{sum(self.series['demand_mb'][lo:hi]):g}",
                   f"{sum(self.series['idle_mb'][lo:hi]):g}",
                   str(sum(1 for b in self.flags[lo:hi]
                           if b & FLAG_THRASHING)),
                   str(sum(1 for b in self.flags[lo:hi]
                           if b & FLAG_RESERVED)),
                   str(sum(1 for b in self.flags[lo:hi]
                           if b & FLAG_ALIVE))]
            if self.domains > 1:
                for dlo, dhi in self._domain_bounds:
                    row.append(f"{sum(self.series['idle_mb'][lo + dlo:lo + dhi]):g}")
                    row.append(f"{sum(self.series['running'][lo + dlo:lo + dhi]):g}")
                    row.append(str(sum(1 for b in self.flags[lo + dlo:lo + dhi]
                                       if b & FLAG_THRASHING)))
            for node_id in range(n):
                for column in columns:
                    row.append(f"{column[lo + node_id]:g}")
                row.append(_flag_str(self.flags[lo + node_id]))
            stream.write(",".join(row) + "\n")
        return self.num_samples

    def to_jsonable(self) -> dict:
        """Compact dict for embedding in reports: times + cluster
        totals + per-node idle series (the report's timeline inputs)."""
        out = {
            "period_s": self.period_s,
            "num_nodes": self.num_nodes,
            "times": list(self.times),
            "total_running": self.totals("running"),
            "total_idle_mb": self.totals("idle_mb"),
            "thrashing_nodes": self.flag_counts(FLAG_THRASHING),
            "reserved_nodes": self.flag_counts(FLAG_RESERVED),
            "alive_nodes": self.flag_counts(FLAG_ALIVE),
        }
        if self.domains > 1:
            out["domains"] = self.domains
            out["domain_idle_mb"] = [self.domain_totals("idle_mb", d)
                                     for d in range(self.domains)]
        return out
