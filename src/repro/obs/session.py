"""ObsSession: wires a run's event bus to a recorder and a registry.

One session observes one run.  ``attach`` subscribes to the cluster's
channels; during the run the session keeps a structured event list and
live metrics; ``finalize`` folds engine-level gauges in and merges the
snapshot (``obs.``-prefixed) into the run summary's ``extra`` dict so
the numbers survive CSV/JSON export and process boundaries.

Channel-to-metric mapping:

==========================  =============================================
channel                     metrics
==========================  =============================================
``cluster.placement``       ``placements_local`` / ``placements_remote``
``cluster.migration``       ``migrations``, ``migration_mb``,
                            ``migration_delay_s`` histogram
``reconfig.blocking``       ``blocking_detections``, ``activation_skipped``
``reconfig.reservation``    ``reservation_<kind>`` counters,
                            ``reservation_lifetime_s`` histogram
``loadinfo.exchange``       ``loadinfo_exchanges``, ``loadinfo_nodes_refreshed``
``memory.fault``            ``thrashing_transitions``
``fault.injection``         ``fault_<kind>`` counters (crash, recover,
                            migration_failed, ...) plus
                            ``fault_lost_jobs``
``sim.event``               ``sim_events_observed`` (opt-in; the exact
                            executed count is snapshotted from the
                            engine at finalize time for free)
==========================  =============================================
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, List, Optional, TextIO, Union

from repro.obs.bus import CHANNELS, EventBus, ObsEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace_export import write_chrome_trace, write_jsonl

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster
    from repro.metrics.summary import RunSummary

#: Channels recorded into the trace/log stream.  ``sim.event`` is
#: excluded by default: at ~10^5 events per run it would dwarf every
#: other channel combined; opt in with ``record_sim_events=True``.
TRACE_CHANNELS = tuple(name for name in CHANNELS if name != "sim.event")

#: Prefix under which the metrics snapshot lands in ``RunSummary.extra``.
EXTRA_PREFIX = "obs."


class ObsSession:
    """Observation of one run: event recording plus metrics."""

    def __init__(self, record_events: bool = True,
                 record_sim_events: bool = False,
                 run_label: str = "run"):
        self.registry = MetricsRegistry()
        self.events: List[ObsEvent] = []
        self.record_events = record_events
        self.record_sim_events = record_sim_events
        self.run_label = run_label
        self.cluster: Optional["Cluster"] = None
        self._reserve_started: Dict[int, float] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, cluster: "Cluster") -> "ObsSession":
        """Subscribe to ``cluster``'s bus.  Call before the run starts
        (after the cluster and policy are constructed)."""
        if self.cluster is not None:
            raise ValueError("ObsSession is single-use; already attached")
        self.cluster = cluster
        bus: EventBus = cluster.obs
        bus.subscribe_many(TRACE_CHANNELS, self._observe)
        if self.record_sim_events:
            bus.subscribe("sim.event", self._observe_sim_event)
        return self

    # ------------------------------------------------------------------
    # subscribers
    # ------------------------------------------------------------------
    def _observe(self, event: ObsEvent) -> None:
        if self.record_events:
            self.events.append(event)
        registry = self.registry
        channel = event.channel
        if channel == "cluster.placement":
            registry.counter(f"placements_{event.kind}").inc()
        elif channel == "cluster.migration":
            registry.counter("migrations").inc()
            registry.counter("migration_mb").inc(
                event.data.get("image_mb", 0.0))
            registry.histogram("migration_delay_s").observe(
                event.data.get("delay_s", 0.0))
        elif channel == "reconfig.blocking":
            if event.kind == "activation-skipped":
                registry.counter("activation_skipped").inc()
            else:
                registry.counter("blocking_detections").inc()
        elif channel == "reconfig.reservation":
            kind = event.kind.replace("-", "_")
            registry.counter(f"reservation_{kind}").inc()
            rid = event.data.get("reservation")
            if event.kind == "reserve":
                self._reserve_started[rid] = event.time
            elif event.kind in ("release", "cancel"):
                started = self._reserve_started.pop(rid, None)
                if started is not None:
                    registry.histogram("reservation_lifetime_s").observe(
                        event.time - started)
        elif channel == "loadinfo.exchange":
            registry.counter("loadinfo_exchanges").inc()
            registry.counter("loadinfo_nodes_refreshed").inc(
                event.data.get("refreshed", 0))
        elif channel == "memory.fault":
            registry.counter("thrashing_transitions").inc()
        elif channel == "fault.injection":
            kind = event.kind.replace("-", "_")
            registry.counter(f"fault_{kind}").inc()
            if event.kind == "crash":
                registry.counter("fault_lost_jobs").inc(
                    event.data.get("lost_jobs", 0))

    def _observe_sim_event(self, event: ObsEvent) -> None:
        self.registry.counter("sim_events_observed").inc()
        if self.record_events:
            self.events.append(event)

    # ------------------------------------------------------------------
    # phase timing
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Record the wall time of a run phase as a gauge
        (``phase_<name>_wall_s``)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.registry.gauge(f"phase_{name}_wall_s").set(
                time.perf_counter() - started)

    # ------------------------------------------------------------------
    # finalization and export
    # ------------------------------------------------------------------
    def finalize(self, summary: Optional["RunSummary"] = None
                 ) -> Dict[str, float]:
        """Fold in engine gauges and (optionally) merge the snapshot
        into ``summary.extra`` under the ``obs.`` prefix."""
        if self.cluster is not None and not self._finalized:
            sim = self.cluster.sim
            self.registry.gauge("sim_events_executed").set(sim.event_count)
            self.registry.gauge("heap_compactions").set(sim.compactions)
            self.registry.gauge("recorded_events").set(len(self.events))
            self._finalized = True
        snapshot = self.registry.snapshot()
        if summary is not None:
            for key, value in snapshot.items():
                summary.extra[EXTRA_PREFIX + key] = value
        return snapshot

    def write_trace(self, target: Union[str, TextIO]) -> dict:
        """Write the Chrome trace-event JSON (Perfetto-loadable)."""
        return write_chrome_trace(self.events, target,
                                  run_label=self.run_label)

    def write_log(self, target: Union[str, TextIO]) -> int:
        """Write the structured JSONL run log."""
        return write_jsonl(self.events, target)

    def write_metrics(self, target: Union[str, TextIO]) -> Dict[str, float]:
        """Write the metrics snapshot as a JSON object."""
        snapshot = self.finalize()
        payload = json.dumps(snapshot, indent=2, sort_keys=True)
        if isinstance(target, str):
            with open(target, "w") as stream:
                stream.write(payload + "\n")
        else:
            target.write(payload + "\n")
        return snapshot
