"""ObsSession: wires a run's event bus to a recorder and a registry.

One session observes one run.  ``attach`` subscribes to the cluster's
channels; during the run the session keeps a structured event list and
live metrics; ``finalize`` folds engine-level gauges in and merges the
snapshot (``obs.``-prefixed) into the run summary's ``extra`` dict so
the numbers survive CSV/JSON export and process boundaries.

Subscription is per-channel: the recorder (event buffer + streaming
JSONL log) subscribes to every trace channel, but metric derivation is
a per-channel handler table.  A channel with neither a recorder nor a
metric handler is never subscribed at all, so it stays *disabled* and
its emit sites skip payload construction entirely — a metrics-only
session (``record_events=False``, no stream log) leaves the hottest
channel (``cluster.job``, four events per job) switched off.

Channel-to-metric mapping:

==========================  =============================================
channel                     metrics
==========================  =============================================
``cluster.placement``       ``placements_local`` / ``placements_remote``
``cluster.migration``       ``migrations``, ``migration_mb``,
                            ``migration_delay_s`` histogram
``reconfig.blocking``       ``blocking_detections``, ``activation_skipped``
``reconfig.reservation``    ``reservation_<kind>`` counters,
                            ``reservation_lifetime_s`` histogram
``loadinfo.exchange``       ``loadinfo_exchanges``, ``loadinfo_nodes_refreshed``
``memory.fault``            ``thrashing_transitions``
``fault.injection``         ``fault_<kind>`` counters (crash, recover,
                            migration_failed, ...) plus
                            ``fault_lost_jobs``
``obs.alert``               ``alerts_raised_<severity>``, ``alerts_cleared``
``sim.event``               ``sim_events_observed`` (opt-in; the exact
                            executed count is snapshotted from the
                            engine at finalize time for free)
==========================  =============================================

The live-telemetry extensions (windowed aggregation, health rules, the
HTTP monitoring server, engine self-profiling) are opt-in constructor
parameters; with all of them off the session behaves exactly as the
batch observability stack always has.
"""

from __future__ import annotations

import atexit
import json
import time
from collections import deque
from contextlib import contextmanager
from typing import (TYPE_CHECKING, Deque, Dict, List, Optional, Sequence,
                    TextIO, Union)

from repro.obs.bus import CHANNELS, EventBus, ObsEvent
from repro.obs.lifecycle import JobLifecycleTracker
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import ClusterSampler
from repro.obs.trace_export import write_chrome_trace, write_jsonl

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster
    from repro.metrics.summary import RunSummary
    from repro.obs.health import HealthEngine
    from repro.obs.live import LiveMonitor
    from repro.obs.profile import EngineProfiler
    from repro.obs.window import WindowAggregator

#: Channels recorded into the trace/log stream.  ``sim.event`` is
#: excluded by default: at ~10^5 events per run it would dwarf every
#: other channel combined; opt in with ``record_sim_events=True``.
TRACE_CHANNELS = tuple(name for name in CHANNELS if name != "sim.event")

#: Prefix under which the metrics snapshot lands in ``RunSummary.extra``.
EXTRA_PREFIX = "obs."


class ObsSession:
    """Observation of one run: event recording plus metrics."""

    #: channel name -> metric-handler method name.  Channels absent
    #: from this table derive no session metrics and stay disabled
    #: for metrics-only sessions (``cluster.job``, ``loadinfo.domain``
    #: are consumed only by the optional window aggregator).
    _METRIC_HANDLERS = {
        "cluster.placement": "_metric_placement",
        "cluster.migration": "_metric_migration",
        "reconfig.blocking": "_metric_blocking",
        "reconfig.reservation": "_metric_reservation",
        "loadinfo.exchange": "_metric_exchange",
        "memory.fault": "_metric_memory_fault",
        "fault.injection": "_metric_fault",
        "obs.alert": "_metric_alert",
    }

    def __init__(self, record_events: bool = True,
                 record_sim_events: bool = False,
                 run_label: str = "run",
                 max_events: Optional[int] = None,
                 stream_log: Union[str, TextIO, None] = None,
                 lifecycle: bool = False,
                 sample_period: Optional[float] = None,
                 window_s: Optional[float] = None,
                 health_rules: Optional[Sequence[str]] = None,
                 serve: Optional[int] = None,
                 serve_port_file: Optional[str] = None,
                 pace: float = 0.0,
                 profile: bool = False,
                 ingest_stdin: bool = False):
        """``max_events`` bounds the in-memory event buffer (a ring:
        the newest events win).  ``stream_log`` writes every observed
        event to a line-buffered JSONL file *as it happens* —
        independent of ``record_events``, so long runs get a full
        tail-able on-disk log without buffering it all in memory.
        ``lifecycle=True`` attaches a
        :class:`~repro.obs.lifecycle.JobLifecycleTracker`;
        ``sample_period`` (seconds of simulated time) attaches a
        :class:`~repro.obs.sampler.ClusterSampler`.  Both fold their
        aggregates into the metrics snapshot at finalize.

        Live-telemetry extensions:

        * ``window_s`` attaches a
          :class:`~repro.obs.window.WindowAggregator` with that window
          width (also attached implicitly, at the default width, when
          serving or health rules need it);
        * ``health_rules`` attaches a
          :class:`~repro.obs.health.HealthEngine` with the given rule
          strings (defaults apply when serving without explicit rules);
        * ``serve`` (a port; 0 means ephemeral) starts a
          :class:`~repro.obs.live.LiveMonitor` HTTP server, with
          ``serve_port_file`` recording the bound port and ``pace``
          (simulated seconds per wall second; 0 = unpaced) bounding
          real-time slices — drive the engine through
          :meth:`run_engine`;
        * ``profile=True`` attaches an
          :class:`~repro.obs.profile.EngineProfiler` around the
          engine's hot entry points.
        """
        self.registry = MetricsRegistry()
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive: {max_events!r}")
        self.max_events = max_events
        self.events: Union[List[ObsEvent], Deque[ObsEvent]] = (
            [] if max_events is None else deque(maxlen=max_events))
        self.record_events = record_events
        self.record_sim_events = record_sim_events
        self.run_label = run_label
        self.cluster: Optional["Cluster"] = None
        #: World components of the observed run, populated by
        #: :meth:`attach` (policy) and :meth:`bind_run` (the rest).
        #: The live monitor's control plane (``/checkpoint``, ``/fork``,
        #: ``/submit``) needs them to snapshot or extend the run.
        self.policy = None
        self.collector = None
        self.jobs = None
        self.trace_name: Optional[str] = None
        self.lifecycle: Optional[JobLifecycleTracker] = (
            JobLifecycleTracker() if lifecycle else None)
        self.sample_period = sample_period
        self.sampler: Optional[ClusterSampler] = None
        self.window_s = window_s
        self.health_rules = health_rules
        self.serve = serve
        self.serve_port_file = serve_port_file
        self.pace = float(pace)
        self.profile = profile
        self.ingest_stdin = ingest_stdin
        self.window: Optional["WindowAggregator"] = None
        self.health: Optional["HealthEngine"] = None
        self.live: Optional["LiveMonitor"] = None
        self.profiler: Optional["EngineProfiler"] = None
        self._stream_target = stream_log
        self._stream: Optional[TextIO] = None
        self._stream_owned = False
        self._streamed_events = 0
        self._summary: Optional["RunSummary"] = None
        self._reserve_started: Dict[int, float] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, cluster: "Cluster", policy=None) -> "ObsSession":
        """Subscribe to ``cluster``'s bus.  Call before the run starts
        (after the cluster and policy are constructed).  ``policy``
        is only needed for self-profiling (placement/reconfiguration
        phase timers)."""
        if self.cluster is not None:
            raise ValueError("ObsSession is single-use; already attached")
        self.cluster = cluster
        self.policy = policy
        if self._stream_target is not None:
            if isinstance(self._stream_target, str):
                # Line-buffered so `tail -f` sees each event as the
                # simulation produces it, not at close time.
                self._stream = open(self._stream_target, "w",
                                    encoding="utf-8", buffering=1)
                self._stream_owned = True
                # Interpreter-exit safety net: a served run killed by
                # SIGTERM (systemd stop, ^C wrapper scripts) must not
                # leave a truncated JSONL tail in the streaming log.
                # The runner CLI converts SIGTERM into SystemExit, so
                # atexit handlers run; this one closes the log at a
                # line boundary.  Unregistered on finalize/close.
                atexit.register(self._atexit_flush)
            else:
                self._stream = self._stream_target
        bus: EventBus = cluster.obs
        recording = self.record_events or self._stream is not None
        for name in TRACE_CHANNELS:
            if recording:
                bus.subscribe(name, self._record)
            handler = self._METRIC_HANDLERS.get(name)
            if handler is not None:
                bus.subscribe(name, getattr(self, handler))
        if self.record_sim_events:
            bus.subscribe("sim.event", self._observe_sim_event)
        if self.lifecycle is not None:
            self.lifecycle.attach(bus)
        if self.sample_period is not None:
            self.sampler = ClusterSampler(cluster,
                                          self.sample_period).start()
        self._attach_live_plane(cluster, policy)
        return self

    def bind_run(self, collector=None, jobs=None,
                 trace_name: Optional[str] = None) -> "ObsSession":
        """Hand the session the run's world components (metrics
        collector, job list, trace name).  The experiment runner calls
        this once the world is built; with them bound, a serving
        session can checkpoint the run (``/checkpoint``), replay it
        under another policy (``/fork``), and admit streamed jobs
        (``/submit``) — without them those endpoints answer 503."""
        self.collector = collector
        self.jobs = jobs
        self.trace_name = trace_name
        return self

    def _atexit_flush(self) -> None:
        """Close a session-owned stream log at interpreter exit so an
        interrupted run cannot leave a half-written JSONL line."""
        stream = self._stream
        if stream is not None and self._stream_owned and not stream.closed:
            try:
                stream.flush()
                stream.close()
            except OSError:  # pragma: no cover - exit-path best effort
                pass
        self._stream = None

    def _attach_live_plane(self, cluster: "Cluster", policy) -> None:
        """Wire the opt-in live-telemetry extensions (window
        aggregation, health rules, self-profiling, HTTP server)."""
        want_window = (self.window_s is not None
                       or self.serve is not None
                       or self.health_rules is not None)
        if want_window:
            from repro.obs.window import DEFAULT_WINDOW_S, WindowAggregator
            width = (self.window_s if self.window_s is not None
                     else DEFAULT_WINDOW_S)
            self.window = WindowAggregator(window_s=width).attach(cluster)
        if self.health_rules is not None or self.serve is not None:
            from repro.obs.health import DEFAULT_RULES, HealthEngine
            rules = (self.health_rules if self.health_rules is not None
                     else DEFAULT_RULES)
            self.health = HealthEngine(
                rules, channel=cluster.obs.channel("obs.alert"))
            self.window.add_observer(self.health.evaluate)
        if self.profile:
            from repro.obs.profile import EngineProfiler
            ticks = []
            if self.sampler is not None:
                ticks.append((self.sampler, "_tick"))
            if self.window is not None:
                ticks.append((self.window, "_tick"))
            self.profiler = EngineProfiler().attach(
                cluster, policy=policy, extra_ticks=tuple(ticks))
        if self.serve is not None:
            from repro.obs.live import LiveMonitor
            self.live = LiveMonitor(
                self, port=self.serve, pace=self.pace,
                port_file=self.serve_port_file).start()
            if self.ingest_stdin:
                self.live.ingest_stdin()

    # ------------------------------------------------------------------
    # engine driving
    # ------------------------------------------------------------------
    def run_engine(self, sim) -> None:
        """Run the attached cluster's engine to completion through
        whatever live-telemetry wrappers this session carries: the
        profiler's phase span, and (when serving) the live monitor's
        paced slice loop.  With neither, this is just ``sim.run()`` —
        runners can call it unconditionally."""
        if self.profiler is not None:
            profiler = self.profiler

            def run_fn(until=None, max_events=None):
                return profiler.run(sim, until=until, max_events=max_events)
        else:
            run_fn = sim.run
        if self.live is not None:
            self.live.drive(sim, run_fn)
        else:
            run_fn()

    # ------------------------------------------------------------------
    # subscribers
    # ------------------------------------------------------------------
    def _record(self, event: ObsEvent) -> None:
        if self.record_events:
            self.events.append(event)
        if self._stream is not None:
            self._stream.write(json.dumps(event.to_jsonable()) + "\n")
            self._streamed_events += 1

    def _metric_placement(self, event: ObsEvent) -> None:
        self.registry.counter(f"placements_{event.kind}").inc()

    def _metric_migration(self, event: ObsEvent) -> None:
        registry = self.registry
        registry.counter("migrations").inc()
        registry.counter("migration_mb").inc(
            event.data.get("image_mb", 0.0))
        registry.histogram("migration_delay_s").observe(
            event.data.get("delay_s", 0.0))

    def _metric_blocking(self, event: ObsEvent) -> None:
        if event.kind == "activation-skipped":
            self.registry.counter("activation_skipped").inc()
        else:
            self.registry.counter("blocking_detections").inc()

    def _metric_reservation(self, event: ObsEvent) -> None:
        kind = event.kind.replace("-", "_")
        self.registry.counter(f"reservation_{kind}").inc()
        rid = event.data.get("reservation")
        if event.kind == "reserve":
            self._reserve_started[rid] = event.time
        elif event.kind in ("release", "cancel"):
            started = self._reserve_started.pop(rid, None)
            if started is not None:
                self.registry.histogram(
                    "reservation_lifetime_s").observe(event.time - started)

    def _metric_exchange(self, event: ObsEvent) -> None:
        self.registry.counter("loadinfo_exchanges").inc()
        self.registry.counter("loadinfo_nodes_refreshed").inc(
            event.data.get("refreshed", 0))

    def _metric_memory_fault(self, event: ObsEvent) -> None:
        self.registry.counter("thrashing_transitions").inc()

    def _metric_fault(self, event: ObsEvent) -> None:
        kind = event.kind.replace("-", "_")
        self.registry.counter(f"fault_{kind}").inc()
        if event.kind == "crash":
            self.registry.counter("fault_lost_jobs").inc(
                event.data.get("lost_jobs", 0))

    def _metric_alert(self, event: ObsEvent) -> None:
        if event.kind == "raise":
            severity = event.data.get("severity", "warning")
            self.registry.counter(f"alerts_raised_{severity}").inc()
        elif event.kind == "clear":
            self.registry.counter("alerts_cleared").inc()

    def _observe_sim_event(self, event: ObsEvent) -> None:
        self.registry.counter("sim_events_observed").inc()
        if self.record_events:
            self.events.append(event)
        if self._stream is not None:
            self._stream.write(json.dumps(event.to_jsonable()) + "\n")
            self._streamed_events += 1

    # ------------------------------------------------------------------
    # phase timing
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Record the wall time of a run phase as a gauge
        (``phase_<name>_wall_s``)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.registry.gauge(f"phase_{name}_wall_s").set(
                time.perf_counter() - started)

    # ------------------------------------------------------------------
    # finalization and export
    # ------------------------------------------------------------------
    def finalize(self, summary: Optional["RunSummary"] = None
                 ) -> Dict[str, float]:
        """Fold in engine gauges, lifecycle/sampler/window/health/
        profile aggregates, and (optionally) merge the snapshot into
        ``summary.extra`` under the ``obs.`` prefix.  Also closes a
        session-owned streaming log.  The live HTTP server publishes
        its final payloads but keeps serving until :meth:`close`."""
        if self.cluster is not None and not self._finalized:
            sim = self.cluster.sim
            self.registry.gauge("sim_events_executed").set(sim.event_count)
            self.registry.gauge("heap_compactions").set(sim.compactions)
            self.registry.gauge("recorded_events").set(len(self.events))
            self.registry.gauge("workstation_recomputes").set(
                sum(node.recomputes for node in self.cluster.nodes))
            self.registry.gauge("workstation_recompute_skips").set(
                sum(node.recompute_skips for node in self.cluster.nodes))
            if self._stream is not None:
                self.registry.gauge("streamed_events").set(
                    self._streamed_events)
                if self._stream_owned:
                    self._stream.close()
                    atexit.unregister(self._atexit_flush)
                else:
                    self._stream.flush()
                self._stream = None
            if self.lifecycle is not None:
                self.lifecycle.finalize(end_time=sim.now)
                for key, value in self.lifecycle.aggregate().items():
                    self.registry.gauge(key).set(value)
            if self.sampler is not None:
                for key, value in self.sampler.aggregate().items():
                    self.registry.gauge(key).set(value)
            if self.window is not None:
                for key, value in self.window.aggregate().items():
                    self.registry.gauge(key).set(value)
            if self.health is not None:
                for key, value in self.health.aggregate(
                        end_time=sim.now).items():
                    self.registry.gauge(key).set(value)
            if self.profiler is not None:
                for key, value in self.profiler.aggregate().items():
                    self.registry.gauge(key).set(value)
            if self.live is not None:
                for key, value in self.live.aggregate().items():
                    self.registry.gauge(key).set(value)
            self._finalized = True
            if self.live is not None:
                self.live.publish()
        snapshot = self.registry.snapshot()
        if summary is not None:
            self._summary = summary
            for key, value in snapshot.items():
                summary.extra[EXTRA_PREFIX + key] = value
        return snapshot

    def close(self) -> None:
        """Stop the live HTTP server (if any) and release the stream
        log.  Idempotent; call after the final exports."""
        if self.live is not None:
            self.live.stop()
        if self._stream is not None:
            if self._stream_owned:
                self._stream.close()
                atexit.unregister(self._atexit_flush)
            self._stream = None

    def write_trace(self, target: Union[str, TextIO]) -> dict:
        """Write the Chrome trace-event JSON (Perfetto-loadable),
        including the self-profiling track when profiling is on."""
        return write_chrome_trace(self.events, target,
                                  run_label=self.run_label,
                                  profile=self.profiler)

    def write_log(self, target: Union[str, TextIO]) -> int:
        """Write the structured JSONL run log."""
        return write_jsonl(self.events, target)

    def write_metrics(self, target: Union[str, TextIO]) -> Dict[str, float]:
        """Write the metrics snapshot as a JSON object."""
        snapshot = self.finalize()
        payload = json.dumps(snapshot, indent=2, sort_keys=True)
        if isinstance(target, str):
            with open(target, "w") as stream:
                stream.write(payload + "\n")
        else:
            target.write(payload + "\n")
        return snapshot

    def write_prom(self, target: Union[str, TextIO],
                   labels: Optional[Dict[str, str]] = None) -> int:
        """Write the metrics in Prometheus text exposition format
        (labels default to the run label)."""
        self.finalize()
        if labels is None:
            labels = {"run": self.run_label}
        return self.registry.write_prom(target, labels=labels)

    def write_sampler_csv(self, target: Union[str, TextIO]) -> int:
        """Write the cluster sampler's wide-row CSV time series."""
        if self.sampler is None:
            raise ValueError(
                "no sampler attached (pass sample_period= to ObsSession)")
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as stream:
                return self.sampler.write_csv(stream)
        return self.sampler.write_csv(target)

    def write_report(self, target: str,
                     title: Optional[str] = None) -> str:
        """Render this run's self-contained HTML report.

        Requires ``lifecycle=True`` and a prior ``finalize(summary)``
        (what the experiment runners do)."""
        if self.lifecycle is None:
            raise ValueError(
                "no lifecycle tracker (pass lifecycle=True to ObsSession)")
        if self._summary is None:
            raise ValueError("finalize(summary) has not run yet")
        import dataclasses

        from repro.obs.report import render_run_report, write_report
        summary = dataclasses.asdict(self._summary)
        html = render_run_report(
            title or f"Run report — {self.run_label}",
            summary, self.lifecycle, self.sampler,
            health=self.health)
        return write_report(target, html)
