"""ObsSession: wires a run's event bus to a recorder and a registry.

One session observes one run.  ``attach`` subscribes to the cluster's
channels; during the run the session keeps a structured event list and
live metrics; ``finalize`` folds engine-level gauges in and merges the
snapshot (``obs.``-prefixed) into the run summary's ``extra`` dict so
the numbers survive CSV/JSON export and process boundaries.

Channel-to-metric mapping:

==========================  =============================================
channel                     metrics
==========================  =============================================
``cluster.placement``       ``placements_local`` / ``placements_remote``
``cluster.migration``       ``migrations``, ``migration_mb``,
                            ``migration_delay_s`` histogram
``reconfig.blocking``       ``blocking_detections``, ``activation_skipped``
``reconfig.reservation``    ``reservation_<kind>`` counters,
                            ``reservation_lifetime_s`` histogram
``loadinfo.exchange``       ``loadinfo_exchanges``, ``loadinfo_nodes_refreshed``
``memory.fault``            ``thrashing_transitions``
``fault.injection``         ``fault_<kind>`` counters (crash, recover,
                            migration_failed, ...) plus
                            ``fault_lost_jobs``
``sim.event``               ``sim_events_observed`` (opt-in; the exact
                            executed count is snapshotted from the
                            engine at finalize time for free)
==========================  =============================================
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from typing import (TYPE_CHECKING, Deque, Dict, List, Optional, TextIO,
                    Union)

from repro.obs.bus import CHANNELS, EventBus, ObsEvent
from repro.obs.lifecycle import JobLifecycleTracker
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import ClusterSampler
from repro.obs.trace_export import write_chrome_trace, write_jsonl

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster
    from repro.metrics.summary import RunSummary

#: Channels recorded into the trace/log stream.  ``sim.event`` is
#: excluded by default: at ~10^5 events per run it would dwarf every
#: other channel combined; opt in with ``record_sim_events=True``.
TRACE_CHANNELS = tuple(name for name in CHANNELS if name != "sim.event")

#: Prefix under which the metrics snapshot lands in ``RunSummary.extra``.
EXTRA_PREFIX = "obs."


class ObsSession:
    """Observation of one run: event recording plus metrics."""

    def __init__(self, record_events: bool = True,
                 record_sim_events: bool = False,
                 run_label: str = "run",
                 max_events: Optional[int] = None,
                 stream_log: Union[str, TextIO, None] = None,
                 lifecycle: bool = False,
                 sample_period: Optional[float] = None):
        """``max_events`` bounds the in-memory event buffer (a ring:
        the newest events win).  ``stream_log`` writes every observed
        event to a JSONL file *as it happens* — independent of
        ``record_events``, so long runs get a full on-disk log without
        buffering it all in memory.  ``lifecycle=True`` attaches a
        :class:`~repro.obs.lifecycle.JobLifecycleTracker`;
        ``sample_period`` (seconds of simulated time) attaches a
        :class:`~repro.obs.sampler.ClusterSampler`.  Both fold their
        aggregates into the metrics snapshot at finalize."""
        self.registry = MetricsRegistry()
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive: {max_events!r}")
        self.max_events = max_events
        self.events: Union[List[ObsEvent], Deque[ObsEvent]] = (
            [] if max_events is None else deque(maxlen=max_events))
        self.record_events = record_events
        self.record_sim_events = record_sim_events
        self.run_label = run_label
        self.cluster: Optional["Cluster"] = None
        self.lifecycle: Optional[JobLifecycleTracker] = (
            JobLifecycleTracker() if lifecycle else None)
        self.sample_period = sample_period
        self.sampler: Optional[ClusterSampler] = None
        self._stream_target = stream_log
        self._stream: Optional[TextIO] = None
        self._stream_owned = False
        self._streamed_events = 0
        self._summary: Optional["RunSummary"] = None
        self._reserve_started: Dict[int, float] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, cluster: "Cluster") -> "ObsSession":
        """Subscribe to ``cluster``'s bus.  Call before the run starts
        (after the cluster and policy are constructed)."""
        if self.cluster is not None:
            raise ValueError("ObsSession is single-use; already attached")
        self.cluster = cluster
        if self._stream_target is not None:
            if isinstance(self._stream_target, str):
                self._stream = open(self._stream_target, "w",
                                    encoding="utf-8")
                self._stream_owned = True
            else:
                self._stream = self._stream_target
        bus: EventBus = cluster.obs
        bus.subscribe_many(TRACE_CHANNELS, self._observe)
        if self.record_sim_events:
            bus.subscribe("sim.event", self._observe_sim_event)
        if self.lifecycle is not None:
            self.lifecycle.attach(bus)
        if self.sample_period is not None:
            self.sampler = ClusterSampler(cluster,
                                          self.sample_period).start()
        return self

    # ------------------------------------------------------------------
    # subscribers
    # ------------------------------------------------------------------
    def _observe(self, event: ObsEvent) -> None:
        if self.record_events:
            self.events.append(event)
        if self._stream is not None:
            self._stream.write(json.dumps(event.to_jsonable()) + "\n")
            self._streamed_events += 1
        registry = self.registry
        channel = event.channel
        if channel == "cluster.placement":
            registry.counter(f"placements_{event.kind}").inc()
        elif channel == "cluster.migration":
            registry.counter("migrations").inc()
            registry.counter("migration_mb").inc(
                event.data.get("image_mb", 0.0))
            registry.histogram("migration_delay_s").observe(
                event.data.get("delay_s", 0.0))
        elif channel == "reconfig.blocking":
            if event.kind == "activation-skipped":
                registry.counter("activation_skipped").inc()
            else:
                registry.counter("blocking_detections").inc()
        elif channel == "reconfig.reservation":
            kind = event.kind.replace("-", "_")
            registry.counter(f"reservation_{kind}").inc()
            rid = event.data.get("reservation")
            if event.kind == "reserve":
                self._reserve_started[rid] = event.time
            elif event.kind in ("release", "cancel"):
                started = self._reserve_started.pop(rid, None)
                if started is not None:
                    registry.histogram("reservation_lifetime_s").observe(
                        event.time - started)
        elif channel == "loadinfo.exchange":
            registry.counter("loadinfo_exchanges").inc()
            registry.counter("loadinfo_nodes_refreshed").inc(
                event.data.get("refreshed", 0))
        elif channel == "memory.fault":
            registry.counter("thrashing_transitions").inc()
        elif channel == "fault.injection":
            kind = event.kind.replace("-", "_")
            registry.counter(f"fault_{kind}").inc()
            if event.kind == "crash":
                registry.counter("fault_lost_jobs").inc(
                    event.data.get("lost_jobs", 0))

    def _observe_sim_event(self, event: ObsEvent) -> None:
        self.registry.counter("sim_events_observed").inc()
        if self.record_events:
            self.events.append(event)
        if self._stream is not None:
            self._stream.write(json.dumps(event.to_jsonable()) + "\n")
            self._streamed_events += 1

    # ------------------------------------------------------------------
    # phase timing
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Record the wall time of a run phase as a gauge
        (``phase_<name>_wall_s``)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.registry.gauge(f"phase_{name}_wall_s").set(
                time.perf_counter() - started)

    # ------------------------------------------------------------------
    # finalization and export
    # ------------------------------------------------------------------
    def finalize(self, summary: Optional["RunSummary"] = None
                 ) -> Dict[str, float]:
        """Fold in engine gauges, lifecycle/sampler aggregates, and
        (optionally) merge the snapshot into ``summary.extra`` under
        the ``obs.`` prefix.  Also closes a session-owned streaming
        log."""
        if self.cluster is not None and not self._finalized:
            sim = self.cluster.sim
            self.registry.gauge("sim_events_executed").set(sim.event_count)
            self.registry.gauge("heap_compactions").set(sim.compactions)
            self.registry.gauge("recorded_events").set(len(self.events))
            self.registry.gauge("workstation_recomputes").set(
                sum(node.recomputes for node in self.cluster.nodes))
            self.registry.gauge("workstation_recompute_skips").set(
                sum(node.recompute_skips for node in self.cluster.nodes))
            if self._stream is not None:
                self.registry.gauge("streamed_events").set(
                    self._streamed_events)
                if self._stream_owned:
                    self._stream.close()
                else:
                    self._stream.flush()
                self._stream = None
            if self.lifecycle is not None:
                self.lifecycle.finalize(end_time=sim.now)
                for key, value in self.lifecycle.aggregate().items():
                    self.registry.gauge(key).set(value)
            if self.sampler is not None:
                for key, value in self.sampler.aggregate().items():
                    self.registry.gauge(key).set(value)
            self._finalized = True
        snapshot = self.registry.snapshot()
        if summary is not None:
            self._summary = summary
            for key, value in snapshot.items():
                summary.extra[EXTRA_PREFIX + key] = value
        return snapshot

    def write_trace(self, target: Union[str, TextIO]) -> dict:
        """Write the Chrome trace-event JSON (Perfetto-loadable)."""
        return write_chrome_trace(self.events, target,
                                  run_label=self.run_label)

    def write_log(self, target: Union[str, TextIO]) -> int:
        """Write the structured JSONL run log."""
        return write_jsonl(self.events, target)

    def write_metrics(self, target: Union[str, TextIO]) -> Dict[str, float]:
        """Write the metrics snapshot as a JSON object."""
        snapshot = self.finalize()
        payload = json.dumps(snapshot, indent=2, sort_keys=True)
        if isinstance(target, str):
            with open(target, "w") as stream:
                stream.write(payload + "\n")
        else:
            target.write(payload + "\n")
        return snapshot

    def write_prom(self, target: Union[str, TextIO],
                   labels: Optional[Dict[str, str]] = None) -> int:
        """Write the metrics in Prometheus text exposition format
        (labels default to the run label)."""
        self.finalize()
        if labels is None:
            labels = {"run": self.run_label}
        return self.registry.write_prom(target, labels=labels)

    def write_sampler_csv(self, target: Union[str, TextIO]) -> int:
        """Write the cluster sampler's wide-row CSV time series."""
        if self.sampler is None:
            raise ValueError(
                "no sampler attached (pass sample_period= to ObsSession)")
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as stream:
                return self.sampler.write_csv(stream)
        return self.sampler.write_csv(target)

    def write_report(self, target: str,
                     title: Optional[str] = None) -> str:
        """Render this run's self-contained HTML report.

        Requires ``lifecycle=True`` and a prior ``finalize(summary)``
        (what the experiment runners do)."""
        if self.lifecycle is None:
            raise ValueError(
                "no lifecycle tracker (pass lifecycle=True to ObsSession)")
        if self._summary is None:
            raise ValueError("finalize(summary) has not run yet")
        import dataclasses

        from repro.obs.report import render_run_report, write_report
        summary = dataclasses.asdict(self._summary)
        html = render_run_report(
            title or f"Run report — {self.run_label}",
            summary, self.lifecycle, self.sampler)
        return write_report(target, html)
