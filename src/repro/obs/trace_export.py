"""Exporters: Chrome trace-event JSON (Perfetto) and JSONL run logs.

:func:`chrome_trace` converts a recorded :class:`~repro.obs.bus.ObsEvent`
stream into the Chrome trace-event format understood by Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``:

* one *thread track per workstation* (pid 1, tid = node id) carrying
  placement/migration/blocking instants, thrashing spans, and
  reservation spans;
* a *network track* (pid 2) with one complete-span per migration
  transfer;
* counter tracks for load-directory exchange rounds.

Simulation seconds map to trace microseconds, so a 10 000 s run reads
as 10 s of trace time with ``displayTimeUnit: "ms"``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, TextIO, Union

from repro.obs.bus import ObsEvent

#: Simulation seconds -> Chrome trace microseconds.
_US = 1e6

#: pid of the per-node tracks / of the network track / of the engine
#: self-profiling track.
CLUSTER_PID = 1
NETWORK_PID = 2
PROFILE_PID = 3


def _meta(pid: int, name: str, tid: int = 0,
          thread_name: Optional[str] = None) -> List[dict]:
    events = [{"ph": "M", "pid": pid, "tid": tid,
               "name": "process_name", "args": {"name": name}}]
    if thread_name is not None:
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name",
                       "args": {"name": thread_name}})
    return events


def _instant(name: str, time: float, tid: int, args: dict) -> dict:
    return {"name": name, "ph": "i", "s": "t", "ts": time * _US,
            "pid": CLUSTER_PID, "tid": tid, "cat": "cluster",
            "args": args}


def _span(name: str, cat: str, start: float, end: float, pid: int,
          tid: int, args: dict) -> dict:
    return {"name": name, "ph": "X", "ts": start * _US,
            "dur": max(0.0, end - start) * _US, "pid": pid, "tid": tid,
            "cat": cat, "args": args}


def _profile_track(profile) -> List[dict]:
    """Self-profiling track (pid 3): one enclosing engine span plus
    sequential per-phase spans sized by exclusive wall seconds.  Phase
    spans are laid end to end (they tile the engine wall time by
    construction), so the track reads as a flame-chart-style breakdown
    even though the real execution interleaves them."""
    report = profile.report()
    wall = report["engine_wall_s"]
    if wall <= 0:
        return []
    out = _meta(PROFILE_PID, "engine self-profile",
                thread_name="phases (wall time)")
    out.append(_span("engine loop", "obs.profile", 0.0, wall,
                     PROFILE_PID, 0,
                     {"coverage": report["coverage"],
                      "wall_s": wall}))
    cursor = 0.0
    for phase, seconds in sorted(report["phases_s"].items(),
                                 key=lambda item: -item[1]):
        out.append(_span(phase, "obs.profile", cursor, cursor + seconds,
                         PROFILE_PID, 1,
                         {"wall_s": seconds,
                          "calls": report["calls"].get(phase, 0),
                          "share": seconds / wall}))
        cursor += seconds
    return out


def chrome_trace(events: Sequence[ObsEvent],
                 run_label: str = "run", profile=None) -> dict:
    """Build a Chrome trace-event document from an obs event stream.
    ``profile`` (an :class:`~repro.obs.profile.EngineProfiler`) adds
    the engine self-profiling track."""
    out: List[dict] = []
    node_ids: Dict[int, bool] = {}
    end_time = max((e.time for e in events), default=0.0)

    # Open spans keyed by id, closed as their end events arrive.
    reservations: Dict[int, ObsEvent] = {}
    thrashing: Dict[int, float] = {}

    for event in events:
        data = event.data
        node = data.get("node")
        if node is not None:
            node_ids[node] = True
        if event.channel == "cluster.placement":
            out.append(_instant(f"place-{event.kind} j{data.get('job')}",
                                event.time, node, dict(data)))
        elif event.channel == "cluster.migration":
            job = data.get("job")
            source = data.get("source")
            dest = data.get("dest")
            delay = float(data.get("delay_s", 0.0))
            node_ids[source] = node_ids[dest] = True
            out.append(_instant(f"migrate-out j{job}", event.time,
                                source, dict(data)))
            out.append(_instant(f"migrate-in j{job}", event.time + delay,
                                dest, dict(data)))
            out.append(_span(f"migrate j{job} {source}->{dest}",
                             "cluster.migration", event.time,
                             event.time + delay, NETWORK_PID, 0,
                             dict(data)))
        elif event.channel == "reconfig.blocking":
            out.append(_instant(event.kind, event.time, node, dict(data)))
        elif event.channel == "reconfig.reservation":
            rid = data.get("reservation")
            if event.kind == "reserve":
                reservations[rid] = event
            elif event.kind in ("release", "cancel"):
                start = reservations.pop(rid, None)
                start_t = start.time if start is not None else event.time
                out.append(_span(f"reservation r{rid} ({event.kind})",
                                 "reconfig.reservation", start_t,
                                 event.time, CLUSTER_PID, node,
                                 dict(data)))
            else:  # ready / assign / arrive / timeout / backoff-cancel
                out.append(_instant(f"reservation-{event.kind} r{rid}",
                                    event.time, node, dict(data)))
        elif event.channel == "memory.fault":
            if event.kind == "thrash-on":
                thrashing[node] = event.time
            elif event.kind == "thrash-off":
                start_t = thrashing.pop(node, event.time)
                out.append(_span("thrashing", "memory.fault", start_t,
                                 event.time, CLUSTER_PID, node,
                                 dict(data)))
        elif event.channel == "loadinfo.exchange":
            out.append({"name": "loadinfo refreshed nodes", "ph": "C",
                        "ts": event.time * _US, "pid": CLUSTER_PID,
                        "tid": 0, "cat": "loadinfo.exchange",
                        "args": {"refreshed": data.get("refreshed", 0)}})
        else:  # sim.event or future channels: generic instants
            out.append(_instant(f"{event.channel}:{event.kind}",
                                event.time, node if node is not None
                                else 0, dict(data)))

    # Close spans left open at the end of the recording.
    for rid, start in reservations.items():
        out.append(_span(f"reservation r{rid} (open)",
                         "reconfig.reservation", start.time, end_time,
                         CLUSTER_PID, start.data.get("node"),
                         dict(start.data)))
    for node, start_t in thrashing.items():
        out.append(_span("thrashing", "memory.fault", start_t, end_time,
                         CLUSTER_PID, node, {"node": node}))

    meta: List[dict] = _meta(CLUSTER_PID, f"cluster [{run_label}]")
    for node in sorted(node_ids):
        meta.extend(_meta(CLUSTER_PID, f"cluster [{run_label}]",
                          tid=node, thread_name=f"node {node}"))
    meta.extend(_meta(NETWORK_PID, "network", thread_name="transfers"))
    if profile is not None:
        out.extend(_profile_track(profile))

    out.sort(key=lambda e: e.get("ts", 0.0))
    return {
        "traceEvents": meta + out,
        "displayTimeUnit": "ms",
        "otherData": {"run": run_label, "events": len(events),
                      "time_unit": "1 sim second = 1 trace ms "
                                   "(self-profile track: wall time)"},
    }


def write_chrome_trace(events: Sequence[ObsEvent],
                       target: Union[str, TextIO],
                       run_label: str = "run", profile=None) -> dict:
    """Serialize :func:`chrome_trace` output to ``target``."""
    document = chrome_trace(events, run_label=run_label, profile=profile)
    payload = json.dumps(document)
    if isinstance(target, str):
        with open(target, "w") as stream:
            stream.write(payload)
    else:
        target.write(payload)
    return document


def write_jsonl(events: Sequence[ObsEvent],
                target: Union[str, TextIO]) -> int:
    """Write the structured run log: one JSON object per event line."""
    lines = [json.dumps(event.to_jsonable(), sort_keys=True)
             for event in events]
    payload = "\n".join(lines) + ("\n" if lines else "")
    if isinstance(target, str):
        with open(target, "w") as stream:
            stream.write(payload)
    else:
        target.write(payload)
    return len(lines)
