"""Engine self-profiling: where does a run's wall time actually go?

The obs stack watches the *cluster*; this module watches the
*watcher's host* — the engine loop itself.  An
:class:`EngineProfiler` wraps a handful of well-known hot entry
points with stack-based phase timers:

=================  ====================================================
phase              wrapped entry points
=================  ====================================================
``recompute``      ``Workstation._recompute`` (per node)
``placement``      the policy's ``_try_place``
``reconfiguration``the policy's ``_monitor_tick`` (overload monitor,
                   blocking detection, reservation decisions)
``loadinfo``       directory refresh/exchange ticks (flat and
                   domained) and the inter-domain summary tick
``obs``            the cluster sampler's and window aggregator's own
                   daemon ticks (instrumentation pays for itself
                   visibly)
``other``          everything else inside the engine loop — event
                   dispatch, job service callbacks, memory model
=================  ====================================================

The timers are *exclusive* (self-time): a parent phase's clock stops
while a child phase runs, so the phase times tile the engine wall
time exactly — their sum equals the inclusive engine span, which is
what makes the ``profile_bench`` coverage check (>= 90 % of engine
wall time accounted) meaningful rather than decorative.

Wrapping is per-instance (an instance attribute shadows the class
method) and only happens when profiling is requested, so the
no-profiling hot path is untouched.  Timing uses
``time.perf_counter`` only — the simulation clock and event order are
never consulted or altered, preserving the determinism invariant
(checked by ``profile_bench``: summary identical modulo ``obs.*``).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster
    from repro.sim.engine import Simulator

#: Phase name carrying the engine loop's self time.
OTHER_PHASE = "other"


class EngineProfiler:
    """Deterministic phase timers around the engine loop."""

    def __init__(self):
        self.exclusive_s: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        #: Inclusive engine-loop wall seconds (sums paced slices).
        self.engine_wall_s = 0.0
        self._stack: List[list] = []  # [phase, start, child_seconds]
        self._wrapped: List[Tuple[object, str]] = []
        self._perf = time.perf_counter

    # ------------------------------------------------------------------
    # timer core
    # ------------------------------------------------------------------
    def _enter(self, phase: str) -> None:
        self._stack.append([phase, self._perf(), 0.0])

    def _exit(self) -> float:
        phase, started, child_s = self._stack.pop()
        elapsed = self._perf() - started
        self.exclusive_s[phase] = (self.exclusive_s.get(phase, 0.0)
                                   + elapsed - child_s)
        self.calls[phase] = self.calls.get(phase, 0) + 1
        if self._stack:
            self._stack[-1][2] += elapsed
        return elapsed

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def wrap_method(self, obj: object, attr: str, phase: str) -> bool:
        """Shadow ``obj.attr`` with a timed wrapper (instance
        attribute).  Returns False when the attribute is missing, so
        callers can wire optional hooks without hasattr chains."""
        original = getattr(obj, attr, None)
        if original is None:
            return False

        def timed(*args, **kwargs):
            self._enter(phase)
            try:
                return original(*args, **kwargs)
            finally:
                self._exit()

        timed.__wrapped__ = original  # type: ignore[attr-defined]
        setattr(obj, attr, timed)
        self._wrapped.append((obj, attr))
        return True

    def attach(self, cluster: "Cluster", policy=None,
               extra_ticks: Tuple[Tuple[object, str], ...] = ()
               ) -> "EngineProfiler":
        """Wrap the run's hot entry points.

        ``policy`` adds the placement/reconfiguration phases;
        ``extra_ticks`` are (object, attr) pairs timed under the
        ``obs`` phase (sampler/window ticks).
        """
        for node in cluster.nodes:
            self.wrap_method(node, "_recompute", "recompute")
        directory = cluster.directory
        self.wrap_method(directory, "refresh", "loadinfo")
        # Flat directory: its periodic exchange tick; domained: the
        # shard-exchange and inter-domain summary ticks.
        self.wrap_method(directory, "_tick", "loadinfo")
        self.wrap_method(directory, "_exchange_tick", "loadinfo")
        self.wrap_method(directory, "_summary_tick", "loadinfo")
        if policy is not None:
            self.wrap_method(policy, "_try_place", "placement")
            self.wrap_method(policy, "_monitor_tick", "reconfiguration")
        for obj, attr in extra_ticks:
            self.wrap_method(obj, attr, "obs")
        return self

    def detach(self) -> None:
        """Remove every wrapper (the shadowed class methods resume)."""
        for obj, attr in self._wrapped:
            try:
                delattr(obj, attr)
            except AttributeError:  # pragma: no cover - already gone
                pass
        self._wrapped.clear()

    # ------------------------------------------------------------------
    # engine driving
    # ------------------------------------------------------------------
    def run(self, sim: "Simulator", until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run the engine inside the enclosing profile span.  Safe to
        call repeatedly (the pacer drives bounded slices through it);
        inclusive slice times accumulate into ``engine_wall_s``."""
        self._enter(OTHER_PHASE)
        try:
            return sim.run(until=until, max_events=max_events)
        finally:
            self.engine_wall_s += self._exit()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def coverage(self) -> float:
        """Accounted fraction: sum of exclusive phase times over the
        inclusive engine wall time.  By construction ~1.0 when every
        phase fired inside :meth:`run`."""
        if self.engine_wall_s <= 0:
            return 0.0
        return sum(self.exclusive_s.values()) / self.engine_wall_s

    def report(self) -> dict:
        phases = dict(sorted(self.exclusive_s.items()))
        return {
            "engine_wall_s": self.engine_wall_s,
            "phases_s": phases,
            "calls": dict(sorted(self.calls.items())),
            "coverage": self.coverage(),
        }

    def aggregate(self) -> Dict[str, float]:
        """Flat gauges for ``RunSummary.extra`` (``obs.profile_*``)."""
        out = {"profile_engine_wall_s": self.engine_wall_s,
               "profile_coverage": self.coverage()}
        for phase, seconds in self.exclusive_s.items():
            out[f"profile_{phase}_wall_s"] = seconds
            out[f"profile_{phase}_calls"] = float(self.calls.get(phase, 0))
        return out


__all__ = ["EngineProfiler", "OTHER_PHASE"]
