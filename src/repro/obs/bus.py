"""Structured event bus: named channels with near-zero disabled cost.

Every :class:`~repro.cluster.cluster.Cluster` owns one
:class:`EventBus`.  Instrumented components cache their
:class:`Channel` object once at construction time, and every emit site
is written as::

    ch = self._obs_migrate
    if ch.enabled:
        ch.emit(now, "migrate", job=..., image_mb=...)

``Channel.enabled`` is a plain bool that is True exactly while the
channel has subscribers, so with observability off (nobody subscribed
— the default) the hot path pays a single attribute load and boolean
test per site and never builds the keyword dict.  Subscribing (what
:class:`~repro.obs.session.ObsSession` does) flips the bool; no other
code path changes.

This module is dependency-free on purpose: the simulation engine
imports it, and it must never import simulation code back.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple

#: The instrumentation channels threaded through the stack.  Emitters
#: and subscribers meet by these names; ``EventBus.channel`` rejects
#: unknown names so a typo fails loudly instead of observing nothing.
CHANNELS: Tuple[str, ...] = (
    "sim.event",              # one simulator event executed (very hot)
    "cluster.job",            # job lifecycle: submit/start/stop/finish
    "cluster.placement",      # local/remote placement decisions
    "cluster.migration",      # preemptive migrations (source, dest, MB)
    "reconfig.blocking",      # blocking detections + activation skips
    "reconfig.reservation",   # reservation lifecycle + backoff cancels
    "loadinfo.exchange",      # load-directory exchange rounds
    "loadinfo.domain",        # inter-domain summary exchange rounds
    "memory.fault",           # per-node thrashing transitions
    "fault.injection",        # injected crashes/recoveries/losses
    "obs.alert",              # health-rule raises/clears (see obs.health)
)

#: JSON-native scalar types passed through untouched by ``jsonable``.
_JSON_SCALARS = (str, int, float, bool, type(None))


def jsonable(value):
    """Best-effort conversion of an event payload value to something
    ``json.dumps`` accepts.

    Emit sites occasionally pass rich objects (enums, dataclasses,
    node handles) in event payloads; a run log writer must not crash
    on them.  Scalars pass through, containers recurse, and anything
    else collapses to ``str(value)``.
    """
    if isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    return str(value)


class ObsEvent(NamedTuple):
    """One structured event delivered to subscribers."""

    channel: str
    time: float
    kind: str
    data: dict

    def to_jsonable(self) -> dict:
        """Flatten to the JSONL run-log record shape.

        Payload values that are not JSON-native are coerced through
        :func:`jsonable`, so the record always survives ``json.dumps``.
        """
        record = {"t": self.time, "channel": self.channel,
                  "kind": self.kind}
        for key, value in self.data.items():
            record[key] = jsonable(value)
        return record


Subscriber = Callable[[ObsEvent], None]


def _null_channel() -> "Channel":
    """Pickle constructor preserving the :data:`NULL_CHANNEL` singleton
    (components compare against it by identity)."""
    return NULL_CHANNEL


def _restore_channel(name: str) -> "Channel":
    """Pickle constructor for a named channel: restored *disabled* and
    subscriber-free.  Observers (sessions, recorders) are process-local
    and are never part of a checkpoint; a restored run re-attaches a
    fresh :class:`~repro.obs.session.ObsSession` if it wants one."""
    return Channel(name)


class Channel:
    """One named event stream.

    ``enabled`` is public and read directly at emit sites; it tracks
    ``bool(subscribers)`` and must not be assigned from outside.
    """

    __slots__ = ("name", "enabled", "_subscribers")

    def __init__(self, name: str):
        self.name = name
        self.enabled = False
        self._subscribers: List[Subscriber] = []

    def subscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.append(subscriber)
        self.enabled = True

    def unsubscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.remove(subscriber)
        self.enabled = bool(self._subscribers)

    def emit(self, time: float, kind: str, **data) -> None:
        """Deliver an event to every subscriber.

        Callers guard with ``if channel.enabled`` so the kwargs dict is
        never built on the disabled path; calling emit on a disabled
        channel is still safe (it is simply a no-op loop).

        A subscriber that raises must not corrupt the others: the
        exception is reported as a warning, every remaining subscriber
        still receives this event, and the offender is unsubscribed so
        a persistently broken observer cannot turn the run into a
        warning storm.  The no-failure path pays nothing beyond the
        try frame.
        """
        event = ObsEvent(self.name, time, kind, data)
        broken: Optional[List[Subscriber]] = None
        for subscriber in self._subscribers:
            try:
                subscriber(event)
            except Exception as exc:  # noqa: BLE001 - isolate observers
                if broken is None:
                    broken = []
                broken.append(subscriber)
                warnings.warn(
                    f"obs subscriber {subscriber!r} raised on channel "
                    f"{self.name!r} ({kind!r} at t={time:g}): {exc!r}; "
                    f"unsubscribing it", RuntimeWarning, stacklevel=2)
        if broken is not None:
            for subscriber in broken:
                if subscriber in self._subscribers:
                    self.unsubscribe(subscriber)

    def __reduce__(self):
        """Checkpoint support: channels pickle as (name) only.

        Subscribers are live observer callables (obs sessions, stream
        writers) that must not cross a checkpoint boundary, so the
        restored channel comes back disabled and empty.  Pickle's memo
        keeps identity: every component that cached this channel object
        sees the *same* restored object, and the shared
        :data:`NULL_CHANNEL` stays a process-wide singleton.
        """
        if self is NULL_CHANNEL:
            return (_null_channel, ())
        return (_restore_channel, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<Channel {self.name} {state} subs={len(self._subscribers)}>"


#: Shared never-enabled channel used as the default for components that
#: may be constructed outside a cluster (bare Simulator, tests).  It is
#: not part of any bus and nothing may subscribe to it.
NULL_CHANNEL = Channel("null")


class EventBus:
    """The set of channels belonging to one cluster/run."""

    def __init__(self, extra_channels: Iterable[str] = ()):
        self._channels: Dict[str, Channel] = {
            name: Channel(name) for name in (*CHANNELS, *extra_channels)}

    def channel(self, name: str) -> Channel:
        """The channel object for ``name`` (KeyError on unknown names)."""
        try:
            return self._channels[name]
        except KeyError:
            raise KeyError(
                f"unknown obs channel {name!r}; known channels: "
                f"{sorted(self._channels)}") from None

    def channels(self) -> List[Channel]:
        return [self._channels[name] for name in sorted(self._channels)]

    def subscribe(self, name: str, subscriber: Subscriber) -> None:
        self.channel(name).subscribe(subscriber)

    def subscribe_many(self, names: Optional[Iterable[str]],
                       subscriber: Subscriber) -> None:
        """Subscribe one callable to several channels (all if None)."""
        targets = sorted(self._channels) if names is None else names
        for name in targets:
            self.channel(name).subscribe(subscriber)

    def unsubscribe_all(self, subscriber: Subscriber) -> None:
        """Remove ``subscriber`` from every channel it is attached to."""
        for channel in self._channels.values():
            while subscriber in channel._subscribers:
                channel.unsubscribe(subscriber)
