"""Metrics registry: counters, gauges, and histograms for one run.

The registry is a flat namespace of named instruments.  A snapshot is
a plain ``{name: float}`` dict (histograms expand to ``_count`` /
``_sum`` / ``_min`` / ``_max`` / ``_avg`` entries), which makes it
trivially JSON-able and mergeable into
:attr:`~repro.metrics.summary.RunSummary.extra` — the path by which
observability metrics reach the CSV/JSON exporters and cross process
boundaries in parallel sweeps.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, TextIO, Union


class Counter:
    """Monotonically increasing count (events, bytes, decisions)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """Last-written value (queue depth, phase wall time, event count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values (reservation lifetimes,
    migration image sizes).  Keeps count/sum/min/max rather than the
    raw series: cheap, mergeable, and enough for the reports."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, float]:
        if self.count == 0:
            return {f"{self.name}_count": 0.0}
        return {
            f"{self.name}_count": float(self.count),
            f"{self.name}_sum": self.total,
            f"{self.name}_min": self.min,
            f"{self.name}_max": self.max,
            f"{self.name}_avg": self.total / self.count,
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self):
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, float]:
        """Flat, sorted ``{name: value}`` view of every instrument."""
        out: Dict[str, float] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out.update(instrument.snapshot())
            else:
                out[name] = instrument.value
        return out

    def write_prom(self, target: Union[str, TextIO],
                   namespace: str = "repro",
                   labels: Optional[Dict[str, str]] = None) -> int:
        """Write the registry in Prometheus text exposition format.

        Counters keep their native type; gauges are gauges; a
        histogram becomes a Prometheus *summary* (``_count``/``_sum``
        plus min/max/avg gauges — the registry keeps no buckets).
        ``labels`` are attached to every sample (e.g. ``{"policy":
        "v-reconfiguration", "trace": "APP-1"}``), so sweep scrapes
        stay distinguishable.  Returns the number of samples written.

        Conformance guarantees (checked by the exposition tests):
        ``# HELP`` and ``# TYPE`` are emitted exactly once per metric
        family, immediately before that family's first sample — even
        when distinct registry names sanitize to the same Prometheus
        name; label values are escaped; the payload ends in exactly
        one trailing newline.
        """
        label_str = ""
        if labels:
            pairs = ",".join(
                f'{_prom_name(key)}="{_prom_escape(value)}"'
                for key, value in sorted(labels.items()))
            label_str = "{" + pairs + "}"
        lines = []
        samples = 0
        seen = set()

        def header(metric: str, mtype: str, help_text: str) -> None:
            # HELP/TYPE exactly once per family, even if two registry
            # names collapse to one sanitized Prometheus name.
            if metric in seen:
                return
            seen.add(metric)
            lines.append(f"# HELP {metric} {_prom_help(help_text)}")
            lines.append(f"# TYPE {metric} {mtype}")

        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            metric = f"{namespace}_{_prom_name(name)}"
            if isinstance(instrument, Counter):
                header(metric, "counter",
                       f"Run counter {name} (repro metrics registry).")
                lines.append(f"{metric}{label_str} "
                             f"{_prom_value(instrument.value)}")
                samples += 1
            elif isinstance(instrument, Gauge):
                header(metric, "gauge",
                       f"Run gauge {name} (repro metrics registry).")
                lines.append(f"{metric}{label_str} "
                             f"{_prom_value(instrument.value)}")
                samples += 1
            else:
                header(metric, "summary",
                       f"Run histogram {name} (repro metrics registry).")
                lines.append(f"{metric}_count{label_str} "
                             f"{instrument.count}")
                lines.append(f"{metric}_sum{label_str} "
                             f"{_prom_value(instrument.total)}")
                samples += 2
                if instrument.count:
                    for suffix, value in (
                            ("min", instrument.min),
                            ("max", instrument.max),
                            ("avg", instrument.total / instrument.count)):
                        gauge = f"{metric}_{suffix}"
                        header(gauge, "gauge",
                               f"Run histogram {name} {suffix} "
                               f"(repro metrics registry).")
                        lines.append(f"{gauge}{label_str} "
                                     f"{_prom_value(value)}")
                        samples += 1
        payload = "\n".join(lines) + ("\n" if lines else "")
        if isinstance(target, str):
            with open(target, "w") as stream:
                stream.write(payload)
        else:
            target.write(payload)
        return samples


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize to the Prometheus metric/label name charset."""
    name = _PROM_BAD.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _prom_help(text: str) -> str:
    """Escape a ``# HELP`` docstring (backslash and newline only, per
    the exposition format; quotes are legal there)."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def _prom_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
