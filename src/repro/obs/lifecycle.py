"""Job-lifecycle causal tracing and slowdown attribution.

:class:`JobLifecycleTracker` subscribes to the placement, migration,
job, blocking, reservation, and fault channels of a cluster's
:class:`~repro.obs.bus.EventBus` and assembles one causal span tree
per job: submit -> queue wait -> run segments -> migration transfers
-> (dedicated) run on a reserved workstation -> complete, with the
triggering blocking event and reservation linked as causes.

**The partition invariant.** For every finished job the top-level
spans are contiguous — each span starts exactly (float-equal) where
the previous one ended, the first starts at the submit instant, and
the last ends at the finish instant — so the span durations partition
the job's wall time.  Run-segment time is further decomposed into
``cpu`` / ``paging`` / ``io`` / ``contention`` using the exact
accounting snapshots the workstation embeds in its ``cluster.job``
events (contention is the segment residual by construction, so the
four buckets sum to the segment duration identically).  The resulting
per-job attribution::

    wall = pending + transfer + cpu + paging + io + contention

is the paper's §5 decomposition re-derived from the event stream
alone, which makes it a correctness oracle over the whole simulator:
any accounting drift between the workstation model and the event
stream shows up as a non-zero partition residual.

Dividing each bucket by the job's dedicated CPU work turns the same
numbers into a *slowdown attribution* — exactly the "where did the
slowdown come from" decomposition the paper argues over in §4/§5.

Overlay annotations (not part of the exact partition, since they
overlap run and transfer spans):

* ``blocked`` child spans — from the first blocking observation
  naming the job to the end of the run segment;
* ``reservation_wait_s`` — from the first blocking observation to the
  instant the job starts dedicated service on the reserved node.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.obs.bus import EventBus, ObsEvent

#: Channels the tracker subscribes to.
LIFECYCLE_CHANNELS = (
    "cluster.job",
    "cluster.placement",
    "cluster.migration",
    "reconfig.blocking",
    "reconfig.reservation",
    "fault.injection",
)

#: Attribution buckets, in report order.  ``pending`` + ``transfer``
#: come from span durations; the rest decompose run segments.
ATTRIBUTION_KEYS = ("cpu", "paging", "io", "contention", "pending",
                    "transfer")


class Span:
    """One node of a job's span tree.

    Top-level spans have ``category`` in {"pending", "transfer",
    "run"} and partition the job's wall time; ``children`` hold
    overlay spans (currently ``blocked``).  Run spans carry an exact
    ``attribution`` dict (cpu/paging/io/contention summing to the
    span duration); ``cause`` names the event that created the span.
    """

    __slots__ = ("kind", "category", "start", "end", "node",
                 "attribution", "cause", "children", "detail")

    def __init__(self, kind: str, category: Optional[str], start: float,
                 node: Optional[int] = None,
                 cause: Optional[dict] = None):
        self.kind = kind
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.node = node
        self.attribution: Dict[str, float] = {}
        self.cause = cause
        self.children: List["Span"] = []
        self.detail: Dict[str, float] = {}

    @property
    def duration_s(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_jsonable(self) -> dict:
        record = {
            "kind": self.kind, "category": self.category,
            "start": self.start, "end": self.end,
            "duration_s": self.duration_s,
        }
        if self.node is not None:
            record["node"] = self.node
        if self.attribution:
            record["attribution"] = dict(self.attribution)
        if self.cause:
            record["cause"] = dict(self.cause)
        if self.detail:
            record["detail"] = dict(self.detail)
        if self.children:
            record["children"] = [c.to_jsonable() for c in self.children]
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end:.2f}" if self.end is not None else "open"
        return f"<Span {self.kind} [{self.start:.2f}, {end}]>"


class JobLifecycle:
    """The assembled causal view of one job."""

    __slots__ = ("job_id", "program", "home_node", "cpu_work_s",
                 "submit_time", "finish_time", "spans", "migrations",
                 "requeues", "reservation_wait_s", "blocked_s",
                 "_open", "_run_baseline", "_first_blocked")

    def __init__(self, job_id: int, submit_time: float,
                 program: str = "?", home_node: Optional[int] = None,
                 cpu_work_s: float = 0.0):
        self.job_id = job_id
        self.program = program
        self.home_node = home_node
        self.cpu_work_s = cpu_work_s
        self.submit_time = submit_time
        self.finish_time: Optional[float] = None
        self.spans: List[Span] = []
        self.migrations = 0
        self.requeues = 0
        self.reservation_wait_s = 0.0
        self.blocked_s = 0.0
        self._open: Optional[Span] = None
        #: (cpu_s, page_s, io_s) accounting at the open run span's start.
        self._run_baseline: Optional[Tuple[float, float, float]] = None
        #: First blocking observation inside the open run span.
        self._first_blocked: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    @property
    def wall_s(self) -> float:
        if self.finish_time is None:
            raise ValueError(f"job {self.job_id} has not finished")
        return self.finish_time - self.submit_time

    def slowdown(self) -> float:
        if self.cpu_work_s <= 0:
            return 0.0
        return self.wall_s / self.cpu_work_s

    # -- span bookkeeping (driven by the tracker) ----------------------
    def open_span(self, span: Span) -> Span:
        self.spans.append(span)
        self._open = span
        return span

    def close_open(self, time: float) -> Optional[Span]:
        span = self._open
        if span is None:
            return None
        span.end = time
        if span.category == "run" and self._first_blocked is not None:
            blocked = Span("blocked", None, self._first_blocked)
            blocked.end = time
            blocked.cause = {"type": "blocking"}
            span.children.append(blocked)
            self.blocked_s += blocked.duration_s
        self._first_blocked = None
        self._open = None
        return span

    # -- attribution ---------------------------------------------------
    def attribution(self) -> Dict[str, float]:
        """Exact wall-time decomposition over the six buckets."""
        out = {key: 0.0 for key in ATTRIBUTION_KEYS}
        parts = {key: [] for key in ATTRIBUTION_KEYS}
        for span in self.spans:
            if span.category == "run":
                for key in ("cpu", "paging", "io", "contention"):
                    parts[key].append(span.attribution.get(key, 0.0))
            elif span.category in ("pending", "transfer"):
                parts[span.category].append(span.duration_s)
        for key, values in parts.items():
            out[key] = math.fsum(values)
        return out

    def slowdown_attribution(self) -> Dict[str, float]:
        """Per-bucket share of the job's slowdown (sums to slowdown)."""
        if self.cpu_work_s <= 0:
            return {key: 0.0 for key in ATTRIBUTION_KEYS}
        return {key: value / self.cpu_work_s
                for key, value in self.attribution().items()}

    def partition_residual_s(self) -> float:
        """Wall time minus the fsum of top-level span durations.

        Exactly zero up to float summation error when the partition
        invariant holds; the contiguity check in
        :meth:`check_partition` is the bitwise-exact half of the
        invariant.
        """
        total = math.fsum(span.duration_s for span in self.spans)
        return self.wall_s - total

    def check_partition(self) -> None:
        """Assert the partition invariant (raises ``AssertionError``).

        Contiguity is float-exact: every boundary time appears
        verbatim in both adjacent spans, the first span starts at the
        submit instant and the last ends at the finish instant.
        """
        assert self.finished, f"job {self.job_id} not finished"
        assert self.spans, f"job {self.job_id} has no spans"
        assert self.spans[0].start == self.submit_time, (
            f"job {self.job_id}: first span starts at "
            f"{self.spans[0].start}, submitted at {self.submit_time}")
        assert self.spans[-1].end == self.finish_time, (
            f"job {self.job_id}: last span ends at {self.spans[-1].end}, "
            f"finished at {self.finish_time}")
        for prev, cur in zip(self.spans, self.spans[1:]):
            assert prev.end == cur.start, (
                f"job {self.job_id}: span gap {prev!r} -> {cur!r}")
        for span in self.spans:
            if span.category == "run" and span.attribution:
                pieces = [span.attribution[k]
                          for k in ("cpu", "paging", "io", "contention")]
                assert abs(math.fsum(pieces) - span.duration_s) <= 1e-9 \
                    * max(1.0, abs(span.duration_s)), (
                    f"job {self.job_id}: run attribution does not sum "
                    f"to the segment duration in {span!r}")

    def to_jsonable(self) -> dict:
        return {
            "job": self.job_id,
            "program": self.program,
            "home_node": self.home_node,
            "cpu_work_s": self.cpu_work_s,
            "submit_time": self.submit_time,
            "finish_time": self.finish_time,
            "migrations": self.migrations,
            "requeues": self.requeues,
            "reservation_wait_s": self.reservation_wait_s,
            "blocked_s": self.blocked_s,
            "attribution": self.attribution() if self.finished else None,
            "slowdown": self.slowdown() if self.finished else None,
            "spans": [span.to_jsonable() for span in self.spans],
        }


class ReservationRecord:
    """Gantt-ready view of one reservation's lifetime."""

    __slots__ = ("reservation_id", "node", "reserved_at", "ready_at",
                 "closed_at", "outcome", "job_ids", "needed_mb")

    def __init__(self, reservation_id: int, node: int, reserved_at: float,
                 needed_mb: float = 0.0):
        self.reservation_id = reservation_id
        self.node = node
        self.reserved_at = reserved_at
        self.ready_at: Optional[float] = None
        self.closed_at: Optional[float] = None
        self.outcome: Optional[str] = None
        self.job_ids: List[int] = []
        self.needed_mb = needed_mb

    def to_jsonable(self) -> dict:
        return {
            "reservation": self.reservation_id, "node": self.node,
            "reserved_at": self.reserved_at, "ready_at": self.ready_at,
            "closed_at": self.closed_at, "outcome": self.outcome,
            "jobs": list(self.job_ids), "needed_mb": self.needed_mb,
        }


class JobLifecycleTracker:
    """Builds :class:`JobLifecycle` objects from the event stream.

    Attach with ``bus.subscribe_many(LIFECYCLE_CHANNELS,
    tracker.observe)`` (what :class:`~repro.obs.session.ObsSession`
    does) *before* the run starts; read ``tracker.jobs`` /
    ``tracker.reservations`` after it drains.
    """

    def __init__(self):
        self.jobs: Dict[int, JobLifecycle] = {}
        self.reservations: Dict[int, ReservationRecord] = {}
        #: job_id -> (reservation_id, first_blocked_t) of an assignment
        #: whose migration has not started yet.
        self._pending_assign: Dict[int, Tuple[int, Optional[float]]] = {}
        #: job_id -> reservation cause awaiting the dedicated run start.
        self._await_dedicated: Dict[int, dict] = {}
        #: job_id -> time of the most recent blocking event naming it.
        self._last_blocking: Dict[int, Tuple[float, int]] = {}

    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> "JobLifecycleTracker":
        bus.subscribe_many(LIFECYCLE_CHANNELS, self.observe)
        return self

    # ------------------------------------------------------------------
    def _lifecycle(self, job_id: int, time: float) -> JobLifecycle:
        life = self.jobs.get(job_id)
        if life is None:
            # A job observed without a submit event (driven straight
            # through Workstation.add_job in tests): treat first sight
            # as the submit instant so the partition still closes.
            life = JobLifecycle(job_id, submit_time=time)
            self.jobs[job_id] = life
        return life

    def observe(self, event: ObsEvent) -> None:
        channel = event.channel
        if channel == "cluster.job":
            self._on_job(event)
        elif channel == "cluster.placement":
            self._on_placement(event)
        elif channel == "cluster.migration":
            self._on_migration(event)
        elif channel == "reconfig.blocking":
            self._on_blocking(event)
        elif channel == "reconfig.reservation":
            self._on_reservation(event)
        # fault.injection events only matter through the stop/requeue
        # events they trigger; nothing to do here (yet).

    # ------------------------------------------------------------------
    # cluster.job
    # ------------------------------------------------------------------
    def _on_job(self, event: ObsEvent) -> None:
        data = event.data
        job_id = data["job"]
        t = event.time
        if event.kind == "submit":
            life = self.jobs.get(job_id)
            if life is None:
                life = JobLifecycle(
                    job_id, submit_time=t,
                    program=data.get("program", "?"),
                    home_node=data.get("home"),
                    cpu_work_s=data.get("cpu_work_s", 0.0))
                self.jobs[job_id] = life
            life.open_span(Span("queued", "pending", t,
                                node=data.get("home")))
        elif event.kind == "start":
            life = self._lifecycle(job_id, t)
            if life._open is not None:
                gap = life.close_open(t)
                if gap.category is None:
                    # Detached with no migration event: the suspension
                    # policy's off-node wait, attributed as pending.
                    gap.kind = "suspended"
                    gap.category = "pending"
            cause = self._await_dedicated.pop(job_id, None)
            dedicated = bool(data.get("dedicated"))
            kind = "run-dedicated" if dedicated else "run"
            span = life.open_span(Span(kind, "run", t,
                                       node=data.get("node"), cause=cause))
            life._run_baseline = (data.get("cpu_s", 0.0),
                                  data.get("page_s", 0.0),
                                  data.get("io_s", 0.0))
            if cause is not None and "blocked_from" in cause \
                    and cause["blocked_from"] is not None:
                wait = t - cause["blocked_from"]
                if wait > 0:
                    life.reservation_wait_s += wait
                    span.detail["reservation_wait_s"] = wait
        elif event.kind == "stop":
            life = self._lifecycle(job_id, t)
            self._close_run(life, t, data)
            if data.get("reason") == "crash":
                life.open_span(Span("crash-requeue", "pending", t,
                                    cause={"type": "crash",
                                           "node": data.get("node"),
                                           "time": t}))
            else:
                # Migration-out or suspension; resolved by the
                # cluster.migration event arriving at the same instant
                # (or by the next start, for suspensions).
                life.open_span(Span("offnode", None, t,
                                    node=data.get("node")))
        elif event.kind == "finish":
            life = self._lifecycle(job_id, t)
            self._close_run(life, t, data)
            life.finish_time = t
        elif event.kind == "requeue":
            life = self._lifecycle(job_id, t)
            if life._open is not None and life._open.category == "pending":
                # The crash stop at this instant already opened the
                # pending span; just record the requeue.
                pass
            else:
                span = life.close_open(t)
                if span is not None and span.category is None:
                    # In-flight destination died mid-transfer.
                    span.kind = "migration"
                    span.category = "transfer"
                life.open_span(Span("requeue-wait", "pending", t,
                                    cause={"type": "requeue",
                                           "reason": data.get("reason")}))
            life.requeues += 1
            self._await_dedicated.pop(job_id, None)

    def _close_run(self, life: JobLifecycle, t: float, data: dict) -> None:
        """Close the open run span, attributing its time from the
        accounting deltas carried by the stop/finish event."""
        span = life._open
        if span is None:
            return
        life.close_open(t)
        if span.category != "run":
            return
        baseline = life._run_baseline or (0.0, 0.0, 0.0)
        life._run_baseline = None
        cpu = data.get("cpu_s", 0.0) - baseline[0]
        paging = data.get("page_s", 0.0) - baseline[1]
        io = data.get("io_s", 0.0) - baseline[2]
        duration = span.duration_s
        # Contention is the residual by construction, so the four
        # buckets sum to the segment duration identically.
        contention = duration - cpu - paging - io
        span.attribution = {"cpu": cpu, "paging": paging, "io": io,
                            "contention": contention}

    # ------------------------------------------------------------------
    # placements / migrations
    # ------------------------------------------------------------------
    def _on_placement(self, event: ObsEvent) -> None:
        data = event.data
        job_id = data.get("job")
        if job_id is None:
            return
        life = self._lifecycle(job_id, event.time)
        if event.kind == "remote":
            span = life.close_open(event.time)
            if span is not None and span.category is None:
                span.kind = "suspended"
                span.category = "pending"
            life.open_span(Span("remote-submit", "transfer", event.time,
                                node=data.get("node"),
                                cause={"type": "remote-submission",
                                       "home": data.get("home"),
                                       "dest": data.get("node")}))
        elif event.kind == "local" and life._open is not None \
                and life._open.category == "pending":
            life._open.detail["placed_node"] = data.get("node")

    def _on_migration(self, event: ObsEvent) -> None:
        data = event.data
        job_id = data.get("job")
        if job_id is None:
            return
        life = self._lifecycle(job_id, event.time)
        life.migrations += 1
        span = life._open
        if span is None or span.category is not None:
            return
        span.kind = "migration"
        span.category = "transfer"
        span.node = data.get("dest")
        span.detail.update({"source": data.get("source", -1),
                            "dest": data.get("dest", -1),
                            "image_mb": data.get("image_mb", 0.0),
                            "first_attempt_delay_s": data.get("delay_s",
                                                              0.0)})
        assign = self._pending_assign.pop(job_id, None)
        if data.get("dedicated") and assign is not None:
            rid, blocked_from = assign
            span.cause = {"type": "reservation", "reservation": rid,
                          "blocked_from": blocked_from}
            self._await_dedicated[job_id] = dict(span.cause)
        else:
            last = self._last_blocking.get(job_id)
            if last is not None:
                span.cause = {"type": "blocking", "time": last[0],
                              "node": last[1]}
            else:
                span.cause = {"type": "overload",
                              "node": data.get("source")}

    # ------------------------------------------------------------------
    # blocking / reservations
    # ------------------------------------------------------------------
    def _on_blocking(self, event: ObsEvent) -> None:
        if event.kind != "blocking":
            return
        job_id = event.data.get("job")
        if job_id is None:
            return
        node = event.data.get("node")
        self._last_blocking[job_id] = (event.time, node)
        life = self.jobs.get(job_id)
        if life is not None and life._open is not None \
                and life._open.category == "run" \
                and life._first_blocked is None:
            life._first_blocked = event.time

    def _on_reservation(self, event: ObsEvent) -> None:
        data = event.data
        rid = data.get("reservation")
        if rid is None:
            return
        t = event.time
        record = self.reservations.get(rid)
        if event.kind == "reserve":
            self.reservations[rid] = ReservationRecord(
                rid, data.get("node"), t,
                needed_mb=data.get("needed_mb", 0.0))
            return
        if record is None:
            # Lifecycle event for a reservation whose reserve predates
            # the subscription; synthesize an open record.
            record = ReservationRecord(rid, data.get("node"), t,
                                       needed_mb=data.get("needed_mb", 0.0))
            self.reservations[rid] = record
        if event.kind == "ready":
            record.ready_at = t
        elif event.kind == "assign":
            job_id = data.get("job")
            if job_id is not None:
                record.job_ids.append(job_id)
                life = self.jobs.get(job_id)
                blocked_from = (life._first_blocked
                                if life is not None else None)
                self._pending_assign[job_id] = (rid, blocked_from)
        elif event.kind in ("release", "cancel", "crash-abort"):
            record.closed_at = t
            record.outcome = event.kind
        elif event.kind in ("timeout", "backoff-cancel"):
            record.outcome = event.kind

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def finalize(self, end_time: Optional[float] = None) -> None:
        """Close spans left open by jobs that never finished (should
        not happen on a drained run; kept for robustness)."""
        if end_time is None:
            end_time = max((life.spans[-1].end or life.spans[-1].start
                            for life in self.jobs.values() if life.spans),
                           default=0.0)
        for life in self.jobs.values():
            if life._open is not None:
                span = life.close_open(end_time)
                if span is not None and span.category is None:
                    span.category = "transfer"

    def finished_jobs(self) -> List[JobLifecycle]:
        return [life for life in self.jobs.values() if life.finished]

    def aggregate(self) -> Dict[str, float]:
        """Per-run attribution totals and mean slowdown decomposition,
        flat and float-valued so it merges into ``RunSummary.extra``
        (prefixed ``lifecycle_``) and crosses process boundaries."""
        finished = self.finished_jobs()
        out: Dict[str, float] = {
            "lifecycle_jobs": float(len(finished)),
            "lifecycle_reservations": float(len(self.reservations)),
        }
        totals = {key: [] for key in ATTRIBUTION_KEYS}
        slowdown_parts = {key: [] for key in ATTRIBUTION_KEYS}
        residuals = []
        reservation_wait = []
        blocked = []
        for life in finished:
            attribution = life.attribution()
            sd = life.slowdown_attribution()
            for key in ATTRIBUTION_KEYS:
                totals[key].append(attribution[key])
                slowdown_parts[key].append(sd[key])
            residuals.append(abs(life.partition_residual_s()))
            reservation_wait.append(life.reservation_wait_s)
            blocked.append(life.blocked_s)
        for key in ATTRIBUTION_KEYS:
            out[f"lifecycle_{key}_s"] = math.fsum(totals[key])
            out[f"lifecycle_slowdown_{key}"] = (
                math.fsum(slowdown_parts[key]) / len(finished)
                if finished else 0.0)
        out["lifecycle_reservation_wait_s"] = math.fsum(reservation_wait)
        out["lifecycle_blocked_s"] = math.fsum(blocked)
        out["lifecycle_residual_max_s"] = max(residuals, default=0.0)
        return out

    def to_jsonable(self) -> dict:
        return {
            "jobs": [self.jobs[job_id].to_jsonable()
                     for job_id in sorted(self.jobs)],
            "reservations": [self.reservations[rid].to_jsonable()
                             for rid in sorted(self.reservations)],
        }
