"""Self-contained HTML reports for runs and sweeps.

Everything is inline — CSS, SVG, data tables — so a report is one file
that opens anywhere with no external dependencies, survives being
mailed around, and renders identically offline.

Two entry points:

* :func:`render_run_report` — one run: KPI tiles, the per-job slowdown
  attribution stacked bars (from
  :class:`~repro.obs.lifecycle.JobLifecycleTracker`), idle-memory and
  blocking timelines (from
  :class:`~repro.obs.sampler.ClusterSampler`), and the reservation
  Gantt.
* :func:`render_comparison_report` — a sweep: per-policy lines across
  the sweep axis plus mean-attribution stacked bars per point, built
  from flat :func:`comparison_row` dicts so rows cross process
  boundaries (parallel sweeps) untouched.

Design notes (the rules the charts follow): categorical colors are
assigned to *entities* in fixed order and never re-ranked; marks are
thin with surface-colored gaps between touching fills; gridlines are
solid hairlines; every chart carries a legend (at two or more series)
plus a table view, so no value is gated behind hover; dark mode is a
separately stepped palette behind ``prefers-color-scheme``, not a
color flip.  Attribution buckets and policy series sit below the
6-slot soft cap and the palettes validate for adjacent-pair CVD
separation in both modes.
"""

from __future__ import annotations

import html
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.lifecycle import ATTRIBUTION_KEYS, JobLifecycleTracker
from repro.obs.sampler import ClusterSampler

# ----------------------------------------------------------------------
# palette (validated: adjacent-pair CVD dE >= 8 and normal-vision
# dE >= 15 in both modes; light-mode sub-3:1 slots are relieved by the
# per-chart table view and legend)
# ----------------------------------------------------------------------

#: Attribution bucket -> fixed categorical slot.  Color follows the
#: bucket identity everywhere (stacked bars, legends, comparison).
BUCKET_LABELS = {
    "cpu": "CPU service", "paging": "Page-fault stalls",
    "io": "I/O", "contention": "CPU contention",
    "pending": "Queue wait", "transfer": "Migration transfer",
}
_LIGHT_SLOTS = ("#2a78d6", "#eb6834", "#1baf7a",
                "#eda100", "#e87ba4", "#008300")
_DARK_SLOTS = ("#3987e5", "#d95926", "#199e70",
               "#c98500", "#d55181", "#008300")

#: Sequential ramp steps for the reservation Gantt's two phases
#: (one hue, two shades: waiting light, serving dark).
_SEQ_LIGHT = ("#86b6ef", "#2a78d6")
_SEQ_DARK = ("#1c5cab", "#3987e5")

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: #f9f9f7; color: #0b0b0b;
}
.viz-root {
  --surface-1: #fcfcfb; --text-primary: #0b0b0b;
  --text-secondary: #52514e; --text-muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --c-cpu: #2a78d6; --c-paging: #eb6834; --c-io: #1baf7a;
  --c-contention: #eda100; --c-pending: #e87ba4;
  --c-transfer: #008300;
  --seq-wait: #86b6ef; --seq-serve: #2a78d6;
  max-width: 900px; margin: 0 auto;
}
@media (prefers-color-scheme: dark) {
  body { background: #0d0d0d; color: #ffffff; }
  .viz-root {
    --surface-1: #1a1a19; --text-primary: #ffffff;
    --text-secondary: #c3c2b7; --text-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --c-cpu: #3987e5; --c-paging: #d95926; --c-io: #199e70;
    --c-contention: #c98500; --c-pending: #d55181;
    --c-transfer: #008300;
    --seq-wait: #1c5cab; --seq-serve: #3987e5;
  }
}
h1 { font-size: 22px; font-weight: 650; margin: 0 0 4px; }
h2 { font-size: 15px; font-weight: 600; margin: 28px 0 8px;
     color: var(--text-primary); }
.subtitle { color: var(--text-secondary); font-size: 13px;
            margin: 0 0 20px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 16px 18px; margin: 12px 0;
}
.kpis { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 12px 16px; min-width: 120px; flex: 1;
}
.tile .label { font-size: 12px; color: var(--text-secondary); }
.tile .value { font-size: 24px; font-weight: 600; margin-top: 2px; }
.legend { display: flex; flex-wrap: wrap; gap: 14px;
          font-size: 12px; color: var(--text-secondary);
          margin: 6px 0 10px; }
.legend .key { display: inline-flex; align-items: center; gap: 6px; }
.legend .swatch { width: 10px; height: 10px; border-radius: 2px;
                  display: inline-block; }
.legend .linekey { width: 16px; height: 2px; display: inline-block; }
svg { display: block; }
svg text { font-family: system-ui, -apple-system, "Segoe UI",
           sans-serif; }
.mark:hover { filter: brightness(1.12); }
details { margin-top: 10px; }
summary { font-size: 12px; color: var(--text-secondary);
          cursor: pointer; }
table { border-collapse: collapse; font-size: 12px; margin-top: 8px;
        width: 100%; }
th { text-align: left; color: var(--text-secondary); font-weight: 600;
     border-bottom: 1px solid var(--baseline); padding: 4px 8px; }
td { padding: 3px 8px; border-bottom: 1px solid var(--grid);
     font-variant-numeric: tabular-nums; }
td.name { font-variant-numeric: normal; }
footer { color: var(--text-muted); font-size: 11px; margin-top: 24px; }
"""


# ----------------------------------------------------------------------
# small helpers
# ----------------------------------------------------------------------

def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float, digits: int = 3) -> str:
    """Compact human number: thousands commas, trimmed decimals."""
    if value is None:
        return "–"
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if float(value) == int(value):
        return f"{int(value):,}"
    return f"{value:.{digits}g}"


def _nice_ticks(lo: float, hi: float, target: int = 5) -> List[float]:
    """Clean tick positions covering [lo, hi] (1/2/5 ladder)."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(1, target)
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 5.0, 10.0):
        step = mag * mult
        if raw <= step:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-9 * step:
        ticks.append(round(t, 10))
        t += step
    return ticks


def _rounded_right(x: float, y: float, w: float, h: float,
                   r: float = 4.0) -> str:
    """Path for a bar segment with rounded *data end* (right side)
    and square baseline side."""
    r = min(r, w / 2.0, h / 2.0)
    return (f"M{x:.2f},{y:.2f} H{x + w - r:.2f} "
            f"Q{x + w:.2f},{y:.2f} {x + w:.2f},{y + r:.2f} "
            f"V{y + h - r:.2f} "
            f"Q{x + w:.2f},{y + h:.2f} {x + w - r:.2f},{y + h:.2f} "
            f"H{x:.2f} Z")


def _legend(entries: Sequence[Tuple[str, str]], line: bool = False) -> str:
    """Legend row; ``entries`` are (label, css color) pairs."""
    swatch = "linekey" if line else "swatch"
    keys = "".join(
        f'<span class="key"><span class="{swatch}" '
        f'style="background:{color}"></span>{_esc(label)}</span>'
        for label, color in entries)
    return f'<div class="legend">{keys}</div>'


def _table(headers: Sequence[str], rows: Iterable[Sequence],
           summary: str = "Table view") -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = []
    for row in rows:
        cells = [f'<td class="name">{_esc(row[0])}</td>']
        cells += [f"<td>{_esc(cell)}</td>" for cell in row[1:]]
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (f"<details><summary>{_esc(summary)}</summary>"
            f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table></details>")


def _bucket_color(key: str) -> str:
    return f"var(--c-{key})"


# ----------------------------------------------------------------------
# chart builders (inline SVG)
# ----------------------------------------------------------------------

def stacked_bars(rows: Sequence[Tuple[str, Dict[str, float]]],
                 keys: Sequence[str] = ATTRIBUTION_KEYS,
                 unit: str = "s", width: int = 860) -> str:
    """Horizontal stacked bars, one row per entry.

    ``rows`` are (label, {key: value}) pairs; values share one linear
    x-axis starting at zero.  Segments are separated by a 2px surface
    gap; the outermost segment gets the 4px rounded data end.
    """
    if not rows:
        return '<p class="subtitle">No data.</p>'
    label_w, right_pad, bar_h, pitch, top = 170, 70, 18, 26, 8
    plot_w = width - label_w - right_pad
    height = top + pitch * len(rows) + 28
    total_max = max(sum(values.get(k, 0.0) for k in keys)
                    for _, values in rows) or 1.0
    scale = plot_w / total_max
    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'width="100%" style="max-width:{width}px">']
    # hairline gridlines + x ticks
    for tick in _nice_ticks(0.0, total_max):
        x = label_w + tick * scale
        parts.append(f'<line x1="{x:.1f}" y1="{top}" x2="{x:.1f}" '
                     f'y2="{height - 24}" stroke="var(--grid)" '
                     f'stroke-width="1"/>')
        parts.append(f'<text x="{x:.1f}" y="{height - 10}" '
                     f'font-size="11" fill="var(--text-muted)" '
                     f'text-anchor="middle">{_fmt(tick)}</text>')
    for i, (label, values) in enumerate(rows):
        y = top + i * pitch
        parts.append(f'<text x="{label_w - 8}" y="{y + bar_h - 5}" '
                     f'font-size="12" fill="var(--text-secondary)" '
                     f'text-anchor="end">{_esc(label)}</text>')
        segments = [(k, values.get(k, 0.0)) for k in keys
                    if values.get(k, 0.0) > 0]
        x = float(label_w)
        for j, (key, value) in enumerate(segments):
            w = value * scale
            gap = 2.0 if j < len(segments) - 1 else 0.0
            draw_w = max(0.0, w - gap)
            color = _bucket_color(key)
            tip = (f"{label} — {BUCKET_LABELS.get(key, key)}: "
                   f"{_fmt(value)} {unit}")
            if j == len(segments) - 1:
                shape = (f'<path class="mark" '
                         f'd="{_rounded_right(x, y, draw_w, bar_h)}" '
                         f'fill="{color}">')
            else:
                shape = (f'<rect class="mark" x="{x:.2f}" y="{y}" '
                         f'width="{draw_w:.2f}" height="{bar_h}" '
                         f'fill="{color}">')
            parts.append(f'{shape}<title>{_esc(tip)}</title>'
                         + ("</path>" if j == len(segments) - 1
                            else "</rect>"))
            x += w
        total = sum(v for _, v in segments)
        parts.append(f'<text x="{x + 6:.1f}" y="{y + bar_h - 5}" '
                     f'font-size="11" fill="var(--text-muted)">'
                     f'{_fmt(total)}</text>')
    # baseline
    parts.append(f'<line x1="{label_w}" y1="{top}" x2="{label_w}" '
                 f'y2="{height - 24}" stroke="var(--baseline)" '
                 f'stroke-width="1"/>')
    parts.append("</svg>")
    legend = _legend([(BUCKET_LABELS.get(k, k), _bucket_color(k))
                      for k in keys])
    table = _table(
        ["", *[BUCKET_LABELS.get(k, k) for k in keys], "Total"],
        [(label, *[_fmt(values.get(k, 0.0)) for k in keys],
          _fmt(sum(values.get(k, 0.0) for k in keys)))
         for label, values in rows])
    return legend + "".join(parts) + table


def line_chart(x: Sequence[float],
               series: Sequence[Tuple[str, str, Sequence[float]]],
               y_label: str = "", x_label: str = "time (s)",
               width: int = 860, height: int = 220,
               area: bool = False) -> str:
    """Multi-series line chart.  ``series`` entries are
    (label, css-color, values); all share ``x``.  Sample points carry
    enlarged transparent hit circles with native tooltips, so every
    value is hoverable without landing on the 2px line."""
    if not x or not series:
        return '<p class="subtitle">No samples.</p>'
    left, right_pad, top, bottom = 64, 16, 10, 34
    plot_w, plot_h = width - left - right_pad, height - top - bottom
    x_lo, x_hi = min(x), max(x) or 1.0
    y_hi = max((max(vals) for _, _, vals in series if vals),
               default=1.0) or 1.0
    ticks_y = _nice_ticks(0.0, y_hi)
    y_hi = max(y_hi, ticks_y[-1])

    def px(value: float) -> float:
        span = (x_hi - x_lo) or 1.0
        return left + (value - x_lo) / span * plot_w

    def py(value: float) -> float:
        return top + plot_h - value / y_hi * plot_h

    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'width="100%" style="max-width:{width}px">']
    for tick in ticks_y:
        y = py(tick)
        parts.append(f'<line x1="{left}" y1="{y:.1f}" '
                     f'x2="{width - right_pad}" y2="{y:.1f}" '
                     f'stroke="var(--grid)" stroke-width="1"/>')
        parts.append(f'<text x="{left - 8}" y="{y + 4:.1f}" '
                     f'font-size="11" fill="var(--text-muted)" '
                     f'text-anchor="end">{_fmt(tick)}</text>')
    for tick in _nice_ticks(x_lo, x_hi):
        parts.append(f'<text x="{px(tick):.1f}" y="{height - 16}" '
                     f'font-size="11" fill="var(--text-muted)" '
                     f'text-anchor="middle">{_fmt(tick)}</text>')
    parts.append(f'<text x="{width - right_pad}" y="{height - 2}" '
                 f'font-size="11" fill="var(--text-muted)" '
                 f'text-anchor="end">{_esc(x_label)}</text>')
    if y_label:
        parts.append(f'<text x="{left}" y="{top - 0}" font-size="11" '
                     f'fill="var(--text-muted)">{_esc(y_label)}</text>')
    parts.append(f'<line x1="{left}" y1="{top + plot_h}" '
                 f'x2="{width - right_pad}" y2="{top + plot_h}" '
                 f'stroke="var(--baseline)" stroke-width="1"/>')
    for label, color, values in series:
        points = [(px(t), py(v)) for t, v in zip(x, values)]
        path = " ".join(f"{'M' if i == 0 else 'L'}{p:.1f},{q:.1f}"
                        for i, (p, q) in enumerate(points))
        if area:
            wash = (path + f" L{points[-1][0]:.1f},{top + plot_h} "
                    f"L{points[0][0]:.1f},{top + plot_h} Z")
            parts.append(f'<path d="{wash}" fill="{color}" '
                         f'opacity="0.1"/>')
        parts.append(f'<path d="{path}" fill="none" stroke="{color}" '
                     f'stroke-width="2" stroke-linejoin="round" '
                     f'stroke-linecap="round"/>')
        # end marker: >=8px dot with a 2px surface ring
        ex, ey = points[-1]
        parts.append(f'<circle cx="{ex:.1f}" cy="{ey:.1f}" r="4" '
                     f'fill="{color}" stroke="var(--surface-1)" '
                     f'stroke-width="2"/>')
        # transparent hit circles (~24px target) with tooltips
        stride = max(1, len(points) // 120)
        for (p, q), t, v in list(zip(points, x, values))[::stride]:
            tip = f"{label} at t={_fmt(t)}s: {_fmt(v)}"
            parts.append(f'<circle cx="{p:.1f}" cy="{q:.1f}" r="12" '
                         f'fill="transparent"><title>{_esc(tip)}'
                         f'</title></circle>')
    parts.append("</svg>")
    legend = ""
    if len(series) > 1:
        legend = _legend([(label, color) for label, color, _ in series],
                         line=True)
    stride = max(1, len(x) // 40)
    table = _table(
        ["t (s)", *[label for label, _, _ in series]],
        [(_fmt(t), *[_fmt(vals[i]) for _, _, vals in series])
         for i, t in list(enumerate(x))[::stride]])
    return legend + "".join(parts) + table


def reservation_gantt(records: Sequence[dict], t_max: float,
                      width: int = 860) -> str:
    """Reservation timeline: one row per reservation; the waiting
    phase (reserve -> ready) in the light sequential step, the serving
    phase (ready -> close) in the dark step of the same hue."""
    if not records:
        return ('<p class="subtitle">No reservations were made in '
                'this run.</p>')
    label_w, right_pad, bar_h, pitch, top = 120, 90, 14, 22, 8
    plot_w = width - label_w - right_pad
    height = top + pitch * len(records) + 28
    t_max = t_max or 1.0
    scale = plot_w / t_max
    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'width="100%" style="max-width:{width}px">']
    for tick in _nice_ticks(0.0, t_max):
        x = label_w + tick * scale
        parts.append(f'<line x1="{x:.1f}" y1="{top}" x2="{x:.1f}" '
                     f'y2="{height - 24}" stroke="var(--grid)" '
                     f'stroke-width="1"/>')
        parts.append(f'<text x="{x:.1f}" y="{height - 10}" '
                     f'font-size="11" fill="var(--text-muted)" '
                     f'text-anchor="middle">{_fmt(tick)}</text>')
    rows = []
    for i, rec in enumerate(records):
        y = top + i * pitch
        start = rec["reserved_at"]
        ready = rec.get("ready_at")
        closed = rec.get("closed_at")
        end = closed if closed is not None else t_max
        mid = ready if ready is not None else end
        label = f'R{rec["reservation"]} · node {rec["node"]}'
        parts.append(f'<text x="{label_w - 8}" y="{y + bar_h - 3}" '
                     f'font-size="12" fill="var(--text-secondary)" '
                     f'text-anchor="end">{_esc(label)}</text>')
        wait_w = max(0.0, (mid - start) * scale - 2.0)
        tip = (f"{label}: reserved t={_fmt(start)}s, "
               f"ready {_fmt(ready) if ready is not None else '–'}s, "
               f"closed {_fmt(closed) if closed is not None else '–'}s"
               f" ({rec.get('outcome') or 'open'})")
        parts.append(f'<rect class="mark" '
                     f'x="{label_w + start * scale:.2f}" y="{y}" '
                     f'width="{wait_w:.2f}" height="{bar_h}" '
                     f'fill="var(--seq-wait)">'
                     f'<title>{_esc(tip)}</title></rect>')
        serve_w = (end - mid) * scale
        if serve_w > 0:
            parts.append(
                f'<path class="mark" d="'
                f'{_rounded_right(label_w + mid * scale, y, serve_w, bar_h)}'
                f'" fill="var(--seq-serve)">'
                f'<title>{_esc(tip)}</title></path>')
        outcome = rec.get("outcome") or "open"
        jobs = rec.get("jobs") or []
        parts.append(f'<text x="{label_w + end * scale + 6:.1f}" '
                     f'y="{y + bar_h - 3}" font-size="11" '
                     f'fill="var(--text-muted)">{_esc(outcome)}</text>')
        rows.append((label, _fmt(start),
                     _fmt(ready) if ready is not None else "–",
                     _fmt(closed) if closed is not None else "–",
                     outcome, " ".join(str(j) for j in jobs) or "–"))
    parts.append(f'<line x1="{label_w}" y1="{top}" x2="{label_w}" '
                 f'y2="{height - 24}" stroke="var(--baseline)" '
                 f'stroke-width="1"/>')
    parts.append("</svg>")
    legend = _legend([("Waiting for memory", "var(--seq-wait)"),
                      ("Serving dedicated jobs", "var(--seq-serve)")])
    table = _table(["Reservation", "Reserved (s)", "Ready (s)",
                    "Closed (s)", "Outcome", "Jobs"], rows)
    return legend + "".join(parts) + table


#: Severity -> lane color (reuses the report palette; warning borrows
#: the contention hue, critical the paging hue).
_SEVERITY_COLORS = {
    "info": "var(--c-cpu)",
    "warning": "var(--c-contention)",
    "critical": "var(--c-paging)",
}


def incident_lane(incidents: Sequence[dict], t_max: float,
                  width: int = 860) -> str:
    """Health-incident timeline: one row per incident, a bar from
    raise to clear (or the run end while still active), colored by
    severity.  ``incidents`` are
    :meth:`repro.obs.health.Incident.to_jsonable` dicts."""
    if not incidents:
        return ('<p class="subtitle">No health alerts fired during '
                'this run.</p>')
    label_w, right_pad, bar_h, pitch, top = 250, 90, 14, 22, 8
    plot_w = width - label_w - right_pad
    height = top + pitch * len(incidents) + 28
    t_max = t_max or 1.0
    scale = plot_w / t_max
    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'width="100%" style="max-width:{width}px">']
    for tick in _nice_ticks(0.0, t_max):
        x = label_w + tick * scale
        parts.append(f'<line x1="{x:.1f}" y1="{top}" x2="{x:.1f}" '
                     f'y2="{height - 24}" stroke="var(--grid)" '
                     f'stroke-width="1"/>')
        parts.append(f'<text x="{x:.1f}" y="{height - 10}" '
                     f'font-size="11" fill="var(--text-muted)" '
                     f'text-anchor="middle">{_fmt(tick)}</text>')
    rows = []
    for i, rec in enumerate(incidents):
        y = top + i * pitch
        raised = rec.get("raised_at", 0.0)
        cleared = rec.get("cleared_at")
        end = cleared if cleared is not None else t_max
        severity = rec.get("severity", "warning")
        color = _SEVERITY_COLORS.get(severity, "var(--c-pending)")
        rule = rec.get("rule", "?")
        parts.append(f'<text x="{label_w - 8}" y="{y + bar_h - 3}" '
                     f'font-size="12" fill="var(--text-secondary)" '
                     f'text-anchor="end">{_esc(rule)}</text>')
        state = ("cleared" if cleared is not None else "active")
        tip = (f"{severity}: {rule} — raised t={_fmt(raised)}s, "
               f"{state}"
               + (f" t={_fmt(cleared)}s" if cleared is not None else ""))
        bar_w = max(2.0, (end - raised) * scale)
        parts.append(f'<rect class="mark" '
                     f'x="{label_w + raised * scale:.2f}" y="{y}" '
                     f'width="{bar_w:.2f}" height="{bar_h}" '
                     f'fill="{color}">'
                     f'<title>{_esc(tip)}</title></rect>')
        parts.append(f'<text x="{label_w + end * scale + 6:.1f}" '
                     f'y="{y + bar_h - 3}" font-size="11" '
                     f'fill="var(--text-muted)">{_esc(state)}</text>')
        peak = rec.get("peak_value")
        rows.append((rule, severity, _fmt(raised),
                     _fmt(cleared) if cleared is not None else "–",
                     _fmt(peak) if peak is not None else "–", state))
    parts.append(f'<line x1="{label_w}" y1="{top}" x2="{label_w}" '
                 f'y2="{height - 24}" stroke="var(--baseline)" '
                 f'stroke-width="1"/>')
    parts.append("</svg>")
    legend = _legend([(sev, color)
                      for sev, color in _SEVERITY_COLORS.items()])
    table = _table(["Rule", "Severity", "Raised (s)", "Cleared (s)",
                    "Peak value", "State"], rows)
    return legend + "".join(parts) + table


# ----------------------------------------------------------------------
# page assembly
# ----------------------------------------------------------------------

def _page(title: str, subtitle: str, body: str,
          refresh_s: Optional[float] = None) -> str:
    refresh = ""
    if refresh_s is not None:
        refresh = f'<meta http-equiv="refresh" content="{refresh_s:g}">\n'
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"{refresh}"
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        f'<body><div class="viz-root">\n'
        f"<h1>{_esc(title)}</h1>\n"
        f'<p class="subtitle">{_esc(subtitle)}</p>\n'
        f"{body}\n"
        "<footer>Self-contained report — inline SVG, no external "
        "dependencies.</footer>\n"
        "</div></body></html>\n")


def _tiles(entries: Sequence[Tuple[str, str]]) -> str:
    tiles = "".join(
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{_esc(value)}</div></div>'
        for label, value in entries)
    return f'<div class="kpis">{tiles}</div>'


def render_run_report(title: str, summary: Dict[str, float],
                      tracker: JobLifecycleTracker,
                      sampler: Optional[ClusterSampler] = None,
                      top_jobs: int = 12,
                      health=None) -> str:
    """One run's self-contained HTML report.  ``health`` (a
    :class:`~repro.obs.health.HealthEngine`) adds the incident lane."""
    finished = sorted(tracker.finished_jobs(),
                      key=lambda life: life.slowdown(), reverse=True)
    agg = tracker.aggregate()
    makespan = summary.get("makespan_s", 0.0)
    tiles = _tiles([
        ("Jobs", _fmt(summary.get("num_jobs", len(finished)))),
        ("Makespan", f"{_fmt(makespan)} s"),
        ("Mean slowdown", _fmt(summary.get("average_slowdown", 0.0))),
        ("Migrations", _fmt(summary.get("migrations", 0))),
        ("Reservations", _fmt(agg.get("lifecycle_reservations", 0))),
        ("Blocked time", f"{_fmt(agg.get('lifecycle_blocked_s', 0.0))} s"),
    ])

    # mean slowdown attribution + the slowest jobs, same buckets
    mean_row = ("All jobs (mean)",
                {k: agg.get(f"lifecycle_slowdown_{k}", 0.0)
                 for k in ATTRIBUTION_KEYS})
    job_rows = [(f"job {life.job_id} ({life.program})",
                 life.slowdown_attribution())
                for life in finished[:top_jobs]]
    attribution = (
        "<h2>Slowdown attribution</h2>"
        '<div class="card"><p class="subtitle">Each bar decomposes '
        "slowdown (wall time / dedicated CPU work) into where the "
        "time went; the mean bar first, then the slowest jobs.</p>"
        + stacked_bars([mean_row, *job_rows], unit="× work") + "</div>")

    timelines = ""
    if sampler is not None and sampler.num_samples:
        times = list(sampler.times)
        idle = sampler.totals("idle_mb")
        idle_chart = line_chart(
            times, [("Cluster idle memory", "var(--c-cpu)", idle)],
            y_label="idle MB", area=True)
        from repro.obs.sampler import (FLAG_ALIVE, FLAG_RESERVED,
                                       FLAG_THRASHING)
        thrash = [float(v) for v in sampler.flag_counts(FLAG_THRASHING)]
        reserved = [float(v) for v in sampler.flag_counts(FLAG_RESERVED)]
        dead = [float(sampler.num_nodes - v)
                for v in sampler.flag_counts(FLAG_ALIVE)]
        node_series = [("Thrashing nodes", "var(--c-paging)", thrash),
                       ("Reserved nodes", "var(--c-io)", reserved)]
        if any(dead):
            node_series.append(("Down nodes", "var(--c-contention)",
                                dead))
        state_chart = line_chart(times, node_series, y_label="nodes")
        timelines = (
            "<h2>Idle memory &amp; blocking timeline</h2>"
            '<div class="card"><p class="subtitle">Idle memory is the '
            "reconfiguration routine's raw material; the node-state "
            "panel below shares the same time axis (two scales, two "
            "panels — never two y-axes).</p>"
            + idle_chart + state_chart + "</div>")

    gantt = ""
    records = [tracker.reservations[rid].to_jsonable()
               for rid in sorted(tracker.reservations)]
    gantt = ("<h2>Reservation timeline</h2>"
             '<div class="card">'
             + reservation_gantt(records, makespan) + "</div>")

    incidents_html = ""
    if health is not None:
        incidents_html = (
            "<h2>Health incidents</h2>"
            '<div class="card"><p class="subtitle">Alerts raised by '
            "the health-rule engine over the windowed metric stream; "
            "a bar spans raise to clear.</p>"
            + incident_lane(health.incident_records(), makespan)
            + "</div>")

    jobs_table = _table(
        ["Job", "Slowdown", "Wall (s)", "CPU work (s)", "Migrations",
         "Reservation wait (s)", "Blocked (s)"],
        [(f"{life.job_id} ({life.program})", _fmt(life.slowdown()),
          _fmt(life.wall_s), _fmt(life.cpu_work_s),
          _fmt(life.migrations), _fmt(life.reservation_wait_s),
          _fmt(life.blocked_s)) for life in finished],
        summary="All jobs")
    jobs = ('<h2>Per-job detail</h2><div class="card">'
            + jobs_table + "</div>")

    subtitle = (f"policy {summary.get('policy', '?')} · trace "
                f"{summary.get('trace', '?')} · "
                f"{_fmt(summary.get('num_jobs', len(finished)))} jobs")
    return _page(title, subtitle,
                 tiles + attribution + timelines + gantt
                 + incidents_html + jobs)


# ----------------------------------------------------------------------
# live dashboard
# ----------------------------------------------------------------------

def _history_series(history: Sequence[dict], *path,
                    default: float = 0.0) -> List[float]:
    """Extract one numeric series from snapshot history records by a
    nested key path (``"rates", "finish"`` etc.)."""
    out = []
    for record in history:
        value = record
        for key in path:
            value = value.get(key) if isinstance(value, dict) else None
            if value is None:
                break
        out.append(float(value) if value is not None else default)
    return out


def render_live_dashboard(title: str, snapshot: dict,
                          history: Sequence[dict], verdict: dict,
                          incidents: Sequence[dict],
                          refresh_s: float = 2.0,
                          paced: bool = False) -> str:
    """The ``/dashboard`` page: KPI tiles, windowed rate/quantile/
    staleness charts over the snapshot history, the health verdict,
    and the incident lane — auto-refreshing, fully self-contained
    (same inline-SVG components as the batch reports)."""
    now = snapshot.get("t", 0.0)
    totals = snapshot.get("totals", {})
    quantiles = snapshot.get("quantiles", {})
    status = verdict.get("status", "ok")
    tile_entries = [
        ("Sim time", f"{_fmt(now)} s"),
        ("Health", status),
        ("Jobs finished", _fmt(totals.get("jobs_finished", 0.0))),
        ("Pending jobs", _fmt(snapshot.get("pending_jobs", 0.0))),
        ("Requeues", _fmt(totals.get("requeues", 0.0))),
        ("Windows closed", _fmt(snapshot.get("window", 0.0))),
    ]
    if paced:
        tile_entries.append(
            ("Sim lag", f"{_fmt(snapshot.get('sim_lag_s', 0.0))} s"))
    body = [_tiles(tile_entries)]

    if len(history) >= 2:
        times = [record.get("t", 0.0) for record in history]
        throughput = line_chart(times, [
            ("submit /s", "var(--c-cpu)",
             _history_series(history, "rates", "submit")),
            ("finish /s", "var(--c-io)",
             _history_series(history, "rates", "finish")),
            ("requeue /s", "var(--c-contention)",
             _history_series(history, "rates", "requeue")),
        ], y_label="events / sim s")
        pressure = line_chart(times, [
            ("blocking /s", "var(--c-paging)",
             _history_series(history, "rates", "blocking")),
            ("remote placements /s", "var(--c-transfer)",
             _history_series(history, "rates", "placement_remote")),
        ], y_label="events / sim s")
        slowdown = line_chart(times, [
            ("slowdown p95", "var(--c-paging)",
             _history_series(history, "quantiles", "slowdown_p95")),
            ("slowdown p50", "var(--c-cpu)",
             _history_series(history, "quantiles", "slowdown_p50")),
        ], y_label="slowdown (x work)")
        staleness_series = [
            ("load-info age", "var(--c-pending)",
             _history_series(history, "staleness", "loadinfo_age_s"))]
        domain_age = _history_series(history, "staleness",
                                     "domain_summary_age_s", default=-1.0)
        if any(value >= 0 for value in domain_age):
            staleness_series.append(
                ("domain summary age", "var(--c-transfer)",
                 [max(0.0, value) for value in domain_age]))
        staleness = line_chart(times, staleness_series, y_label="age (s)")
        if paced:
            staleness += line_chart(times, [
                ("sim lag", "var(--c-contention)",
                 _history_series(history, "sim_lag_s"))],
                y_label="wall s behind")
        body.append("<h2>Throughput</h2>"
                    f'<div class="card">{throughput}</div>'
                    "<h2>Pressure</h2>"
                    f'<div class="card">{pressure}</div>'
                    "<h2>Slowdown quantiles (windowed)</h2>"
                    f'<div class="card">{slowdown}</div>'
                    "<h2>Load-info staleness</h2>"
                    f'<div class="card">{staleness}</div>')
    else:
        body.append('<p class="subtitle">Charts appear once the first '
                    'aggregation windows close.</p>')

    active = verdict.get("active", [])
    if active:
        body.append(
            "<h2>Active alerts</h2>"
            '<div class="card">'
            + _table(["Rule", "Severity", "Raised (s)", "Peak value"],
                     [(rec.get("rule", "?"), rec.get("severity", "?"),
                       _fmt(rec.get("raised_at", 0.0)),
                       _fmt(rec["peak_value"])
                       if rec.get("peak_value") is not None else "–")
                      for rec in active])
            + "</div>")
    body.append("<h2>Health incidents</h2>"
                '<div class="card">'
                + incident_lane(incidents, now) + "</div>")

    mode = (f"paced live run · auto-refresh {refresh_s:g}s"
            if paced else f"live run · auto-refresh {refresh_s:g}s")
    subtitle = (f"{mode} · health {status} · "
                f"{verdict.get('windows_evaluated', 0)} windows evaluated")
    return _page(title, subtitle, "".join(body), refresh_s=refresh_s)


# ----------------------------------------------------------------------
# comparison / sweep report
# ----------------------------------------------------------------------

#: Fixed policy -> color assignment (entity-stable: filtering a sweep
#: never repaints the survivors).
_POLICY_COLORS = ("var(--c-cpu)", "var(--c-paging)", "var(--c-io)",
                  "var(--c-contention)", "var(--c-pending)",
                  "var(--c-transfer)")


def comparison_row(label: str, policy: str, x: float,
                   summary) -> Dict[str, float]:
    """Flatten one run into a comparison-report row.

    ``summary`` is a :class:`~repro.metrics.summary.RunSummary` (or a
    dict of its fields).  Lifecycle aggregates are picked up from
    ``extra`` when the run was traced (``obs.lifecycle_*`` keys)."""
    if not isinstance(summary, dict):
        fields = {"average_slowdown": summary.average_slowdown,
                  "makespan_s": summary.makespan_s,
                  "total_queuing_time_s": summary.total_queuing_time_s,
                  "migrations": summary.migrations,
                  "extra": summary.extra}
    else:
        fields = summary
    row: Dict[str, float] = {
        "label": label, "policy": policy, "x": x,
        "average_slowdown": fields.get("average_slowdown", 0.0),
        "makespan_s": fields.get("makespan_s", 0.0),
        "total_queuing_time_s": fields.get("total_queuing_time_s", 0.0),
        "migrations": fields.get("migrations", 0),
    }
    extra = fields.get("extra") or {}
    for key in ATTRIBUTION_KEYS:
        row[f"slowdown_{key}"] = extra.get(
            f"obs.lifecycle_slowdown_{key}",
            extra.get(f"lifecycle_slowdown_{key}", 0.0))
    return row


def render_comparison_report(title: str, rows: Sequence[Dict],
                             x_label: str = "sweep point",
                             subtitle: str = "") -> str:
    """G-vs-V (or any multi-policy) sweep comparison report.

    ``rows`` come from :func:`comparison_row`; policies become line
    series across the sweep axis, each (policy, point) becomes one
    stacked attribution bar."""
    if not rows:
        return _page(title, subtitle or "empty sweep",
                     '<p class="subtitle">No runs.</p>')
    policies: List[str] = []
    for row in rows:
        if row["policy"] not in policies:
            policies.append(row["policy"])
    colors = {policy: _POLICY_COLORS[i % len(_POLICY_COLORS)]
              for i, policy in enumerate(policies)}
    xs = sorted({row["x"] for row in rows})

    def series_for(metric: str) -> List[Tuple[str, str, List[float]]]:
        out = []
        for policy in policies:
            by_x = {row["x"]: row[metric] for row in rows
                    if row["policy"] == policy}
            if len(by_x) == len(xs):
                out.append((policy, colors[policy],
                            [float(by_x[x]) for x in xs]))
        return out

    slowdown_chart = line_chart(xs, series_for("average_slowdown"),
                                y_label="mean slowdown",
                                x_label=x_label)
    makespan_chart = line_chart(xs, series_for("makespan_s"),
                                y_label="makespan (s)",
                                x_label=x_label)
    lines = ("<h2>Across the sweep</h2>"
             '<div class="card">' + slowdown_chart + "</div>"
             '<div class="card">' + makespan_chart + "</div>")

    attribution_rows = []
    for row in rows:
        values = {k: row.get(f"slowdown_{k}", 0.0)
                  for k in ATTRIBUTION_KEYS}
        if any(v > 0 for v in values.values()):
            attribution_rows.append((str(row["label"]), values))
    attribution = ""
    if attribution_rows:
        attribution = (
            "<h2>Slowdown attribution per run</h2>"
            '<div class="card"><p class="subtitle">Mean per-job '
            "slowdown decomposition at each sweep point (traced runs "
            "only).</p>"
            + stacked_bars(attribution_rows, unit="× work") + "</div>")

    table = _table(
        ["Run", "Policy", x_label, "Mean slowdown", "Makespan (s)",
         "Queueing (s)", "Migrations"],
        [(str(row["label"]), row["policy"], _fmt(row["x"]),
          _fmt(row["average_slowdown"]), _fmt(row["makespan_s"]),
          _fmt(row["total_queuing_time_s"]), _fmt(row["migrations"]))
         for row in rows],
        summary="All runs")
    table_section = '<h2>All runs</h2><div class="card">' + table + "</div>"

    subtitle = subtitle or (f"{len(rows)} runs · "
                            f"{', '.join(policies)} across {x_label}")
    return _page(title, subtitle, lines + attribution + table_section)


def write_report(path: str, html_text: str) -> str:
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(html_text)
    return path
