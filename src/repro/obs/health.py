"""Declarative health rules evaluated over windowed metrics.

The live telemetry plane watches a run the way an operator would watch
a cluster: a small set of rules over the windowed snapshot stream
(:mod:`repro.obs.window`), each firing an alert when its condition
holds for long enough and clearing it when the condition goes away.

Rule grammar (one rule per string)::

    [severity:] <metric> <op> <threshold> [for <N> windows]
    [severity:] absent(<metric>) [for <N> windows]

* ``severity`` is ``info``, ``warning`` (default), or ``critical``;
* ``metric`` is a dotted windowed-metric name resolved by
  :func:`repro.obs.window.resolve_metric` — ``blocking.rate``,
  ``requeue.rate``, ``slowdown.p95``, ``placement_latency.p95``,
  ``loadinfo.age_s``, ``sim_lag``, ...;
* ``op`` is one of ``>`` ``>=`` ``<`` ``<=``;
* ``for N windows`` requires the condition to hold in ``N``
  consecutive closed windows before the alert raises (default 1);
* the ``absent(...)`` form fires when the metric has no value (never
  observed, or a rate of exactly zero) — liveness watching.

Examples::

    blocking.rate > 0.5 for 3 windows
    critical: sim_lag > 2.0 for 2 windows
    info: absent(finish.rate) for 5 windows

The engine evaluates every rule once per closed window, emits
``obs.alert`` bus events (``raise`` / ``clear`` kinds) so alerts flow
through the normal recording/streaming pipeline, keeps an incident
log (rendered as the incident lane in the HTML report), and folds
aggregate counts/durations into ``RunSummary.extra`` via the session.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.obs.bus import Channel, NULL_CHANNEL
from repro.obs.window import resolve_metric

SEVERITIES = ("info", "warning", "critical")

#: Default rules attached when live serving is enabled without an
#: explicit rule set: watch the pacer's real-time budget and job
#: liveness.  Deliberately loose — they flag pathologies, not noise.
DEFAULT_RULES = (
    "warning: sim_lag > 2.0 for 2 windows",
    "info: absent(finish.rate) for 5 windows",
)

_RULE_RE = re.compile(
    r"^\s*(?:(?P<severity>info|warning|critical)\s*:\s*)?"
    r"(?:(?P<absent>absent)\s*\(\s*(?P<ametric>[\w.]+)\s*\)"
    r"|(?P<metric>[\w.]+)\s*(?P<op>>=|<=|>|<)\s*"
    r"(?P<threshold>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?))"
    r"(?:\s+for\s+(?P<windows>\d+)\s+windows?)?\s*$")

_OPS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}


@dataclass(frozen=True)
class HealthRule:
    """One parsed rule; ``source`` is the original rule string."""

    source: str
    metric: str
    severity: str = "warning"
    op: Optional[str] = None
    threshold: float = 0.0
    windows: int = 1
    absent: bool = False

    def holds(self, snapshot: dict) -> bool:
        """Condition value for one closed-window snapshot."""
        value = resolve_metric(snapshot, self.metric)
        if self.absent:
            return value is None or value == 0.0
        if value is None:
            return False
        return _OPS[self.op](value, self.threshold)


def parse_rule(text: str) -> HealthRule:
    """Parse one rule string (see the module docstring for grammar)."""
    match = _RULE_RE.match(text)
    if match is None:
        raise ValueError(
            f"unparseable health rule {text!r}; expected "
            f"'[severity:] metric <op> value [for N windows]' or "
            f"'[severity:] absent(metric) [for N windows]'")
    severity = match.group("severity") or "warning"
    windows = int(match.group("windows") or 1)
    if windows < 1:
        raise ValueError(f"rule {text!r}: window count must be >= 1")
    if match.group("absent"):
        return HealthRule(source=text.strip(),
                          metric=match.group("ametric"),
                          severity=severity, windows=windows, absent=True)
    return HealthRule(source=text.strip(), metric=match.group("metric"),
                      severity=severity, op=match.group("op"),
                      threshold=float(match.group("threshold")),
                      windows=windows)


@dataclass
class Incident:
    """One raised-alert episode (closed when the rule stops holding)."""

    rule: HealthRule
    raised_at: float
    cleared_at: Optional[float] = None
    peak_value: Optional[float] = None

    @property
    def severity(self) -> str:
        return self.rule.severity

    def duration(self, end_time: float) -> float:
        end = self.cleared_at if self.cleared_at is not None else end_time
        return max(0.0, end - self.raised_at)

    def to_jsonable(self) -> dict:
        return {"rule": self.rule.source, "severity": self.rule.severity,
                "raised_at": self.raised_at,
                "cleared_at": self.cleared_at,
                "peak_value": self.peak_value}


@dataclass
class _RuleState:
    rule: HealthRule
    consecutive: int = 0
    active: Optional[Incident] = None
    raises: int = 0


class HealthEngine:
    """Evaluates a rule set against closed-window snapshots.

    Attach it as a window observer
    (``aggregator.add_observer(engine.evaluate)``); give it the bus's
    ``obs.alert`` channel so raises/clears flow into the recorded
    event stream.
    """

    def __init__(self, rules: Iterable[str] = DEFAULT_RULES,
                 channel: Channel = NULL_CHANNEL):
        self.rules: List[HealthRule] = [
            rule if isinstance(rule, HealthRule) else parse_rule(rule)
            for rule in rules]
        self.channel = channel
        self.incidents: List[Incident] = []
        self.windows_evaluated = 0
        self.last_time = 0.0
        self._states: List[_RuleState] = [
            _RuleState(rule) for rule in self.rules]

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, snapshot: dict) -> None:
        """Evaluate every rule against one closed-window snapshot."""
        now = snapshot.get("t", 0.0)
        self.windows_evaluated += 1
        self.last_time = now
        ch = self.channel
        for state in self._states:
            rule = state.rule
            value = resolve_metric(snapshot, rule.metric)
            holds = rule.holds(snapshot)
            if holds:
                state.consecutive += 1
            else:
                state.consecutive = 0
            if holds and state.active is None \
                    and state.consecutive >= rule.windows:
                incident = Incident(rule=rule, raised_at=now,
                                    peak_value=value)
                state.active = incident
                state.raises += 1
                self.incidents.append(incident)
                if ch.enabled:
                    ch.emit(now, "raise", rule=rule.source,
                            severity=rule.severity, metric=rule.metric,
                            value=value)
            elif state.active is not None:
                incident = state.active
                if holds:
                    if value is not None and (
                            incident.peak_value is None
                            or value > incident.peak_value):
                        incident.peak_value = value
                else:
                    incident.cleared_at = now
                    state.active = None
                    if ch.enabled:
                        ch.emit(now, "clear", rule=rule.source,
                                severity=rule.severity,
                                metric=rule.metric, value=value)

    # ------------------------------------------------------------------
    # verdicts and aggregates
    # ------------------------------------------------------------------
    def active_incidents(self) -> List[Incident]:
        return [state.active for state in self._states
                if state.active is not None]

    def status(self) -> str:
        """Overall verdict: ``critical`` > ``degraded`` (an active
        warning) > ``ok``.  Active info alerts stay ``ok``."""
        worst = "ok"
        for incident in self.active_incidents():
            if incident.severity == "critical":
                return "critical"
            if incident.severity == "warning":
                worst = "degraded"
        return worst

    def verdict(self, now: Optional[float] = None) -> dict:
        """The ``/healthz`` payload."""
        if now is None:
            now = self.last_time
        return {
            "status": self.status(),
            "t": now,
            "windows_evaluated": self.windows_evaluated,
            "rules": [rule.source for rule in self.rules],
            "active": [incident.to_jsonable()
                       for incident in self.active_incidents()],
            "incidents": len(self.incidents),
        }

    def aggregate(self, end_time: Optional[float] = None
                  ) -> Dict[str, float]:
        """Flat aggregates for ``RunSummary.extra`` (``obs.health_*``)."""
        if end_time is None:
            end_time = self.last_time
        by_severity = {severity: 0.0 for severity in SEVERITIES}
        total_s = 0.0
        for incident in self.incidents:
            by_severity[incident.severity] += 1.0
            total_s += incident.duration(end_time)
        out = {
            "health_rules": float(len(self.rules)),
            "health_windows_evaluated": float(self.windows_evaluated),
            "health_alerts_total": float(len(self.incidents)),
            "health_alert_s_total": total_s,
            "health_active_alerts": float(len(self.active_incidents())),
        }
        for severity, count in by_severity.items():
            out[f"health_alerts_{severity}"] = count
        return out

    def incident_records(self) -> List[dict]:
        """Incident dicts for the report's incident lane."""
        return [incident.to_jsonable() for incident in self.incidents]


__all__ = ["DEFAULT_RULES", "HealthEngine", "HealthRule", "Incident",
           "SEVERITIES", "parse_rule"]
