"""Live monitoring plane: an HTTP server over a paced engine.

:class:`LiveMonitor` is the first brick of the digital-twin service
mode (ROADMAP item 1): it runs a stdlib :class:`ThreadingHTTPServer`
on an ephemeral (or chosen) port next to the simulation and drives
the engine in bounded real-time slices so the run can be *watched* —
by a human on ``/dashboard``, by a Prometheus scraper on
``/metrics``, by an orchestrator probe on ``/healthz``.

Endpoints:

* ``GET /metrics`` — Prometheus text exposition of the live metrics
  registry (the same :meth:`MetricsRegistry.write_prom` payload the
  batch path writes at the end of a run);
* ``GET /healthz`` — the health-rule engine's verdict as JSON;
  ``200`` while ok/degraded, ``503`` once a critical alert is active;
* ``GET /snapshot.json`` — the windowed aggregation snapshot (rates,
  cumulative totals, quantile sketches, staleness, sim lag);
* ``GET /dashboard`` (and ``/``) — a self-refreshing, self-contained
  inline-SVG page built from the same components as the batch HTML
  reports;
* ``POST /submit`` — streaming job ingest: a JSON object, JSON array,
  or JSONL body of job specs (``program``, ``lifetime_s``,
  ``peak_demand_mb``, ``home_node``, optional ``submit_time``,
  ``io_stall_per_cpu_s``, ``buffer_cache_mb``, ``memory_phases``);
  valid specs are queued and the engine admits them at the next slice
  boundary (``202``); any invalid spec rejects the whole batch
  (``400``);
* ``POST /checkpoint`` — snapshot the live run (see
  :mod:`repro.sim.checkpoint`): with a ``{"path": ...}`` body the
  engine writes the file and the response carries the checkpoint
  meta; without one the response body *is* the checkpoint
  (``application/octet-stream``);
* ``POST /fork`` — what-if replay: ``{"policy": ..., "policy_kwargs":
  {...}}`` snapshots the live run, restores an independent copy on
  the handler thread, swaps in the requested policy and runs it to
  completion, answering with that universe's run summary.  The live
  run is paused only for the snapshot.

Threading model — the invariant that keeps this safe without slowing
the engine: **HTTP handler threads never touch live state.**  The
engine thread *publishes* fully rendered, immutable payload bytes
under a lock at every slice boundary; handlers only read the latest
published payloads.  Staleness is bounded by the slice width and the
engine never blocks on a scrape.

The write endpoints keep the same invariant from the other side:
handler threads only *validate primitives and enqueue*.  Job
construction (which allocates ids from a process-global counter) and
world serialization happen on the engine thread at slice boundaries;
``/checkpoint`` hands the engine a request-plus-event and waits for
the engine to service it (``503`` if the engine never reaches a
boundary within the timeout).  ``/fork`` restores its copy with
``advance_counters=False`` so the throwaway universe cannot disturb
the id space of the run still executing.

Streaming ingest sources (``--submit-stdin``, long-lived service
mode) can place a *hold* on the drive loop: with a hold active the
loop idles at wall pace when the simulation runs dry instead of
exiting, so jobs arriving later still find a live engine.

Pacing: ``pace`` is simulated seconds per wall second.  ``pace=0``
runs the engine as fast as possible (publishing between slices);
``pace>0`` sleeps between slices to hold the ratio, and reports
``sim_lag_s`` — how far (in wall seconds) the engine is behind its
real-time schedule — into the windowed snapshot and the metrics
registry, where a health rule can watch it.
"""

from __future__ import annotations

import functools
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from io import StringIO
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional, Tuple)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.session import ObsSession
    from repro.sim.engine import Simulator

#: Wall-clock width of one paced engine slice.
SLICE_WALL_S = 0.25

#: Wall seconds a control request (``/checkpoint``, ``/fork``) waits
#: for the engine to reach a slice boundary before answering 503.
CONTROL_TIMEOUT_S = 10.0

#: One published payload: (body bytes, content type, HTTP status).
Payload = Tuple[bytes, str, int]

#: Keys a ``/submit`` job spec may carry (anything else is rejected —
#: silent typos would otherwise become silently-default jobs).
_SPEC_KEYS = frozenset({
    "program", "lifetime_s", "peak_demand_mb", "home_node",
    "submit_time", "io_stall_per_cpu_s", "buffer_cache_mb",
    "memory_phases",
})


def validate_job_spec(spec, num_nodes: int) -> Optional[str]:
    """Validate one raw ``/submit`` job spec (primitives only — safe
    on any thread).  Returns an error string, or None when valid."""
    if not isinstance(spec, dict):
        return f"job spec must be an object, got {type(spec).__name__}"
    unknown = set(spec) - _SPEC_KEYS
    if unknown:
        return f"unknown job spec keys: {sorted(unknown)}"
    for key in ("program", "lifetime_s", "peak_demand_mb", "home_node"):
        if key not in spec:
            return f"job spec missing required key {key!r}"
    if not isinstance(spec["program"], str) or not spec["program"]:
        return "program must be a non-empty string"
    lifetime = spec["lifetime_s"]
    if not isinstance(lifetime, (int, float)) or lifetime <= 0:
        return f"lifetime_s must be a positive number: {lifetime!r}"
    peak = spec["peak_demand_mb"]
    if not isinstance(peak, (int, float)) or peak < 0:
        return f"peak_demand_mb must be a non-negative number: {peak!r}"
    home = spec["home_node"]
    if not isinstance(home, int) or isinstance(home, bool) \
            or not 0 <= home < num_nodes:
        return (f"home_node must be an integer in [0, {num_nodes}): "
                f"{home!r}")
    for key in ("submit_time", "io_stall_per_cpu_s", "buffer_cache_mb"):
        if key in spec:
            value = spec[key]
            if not isinstance(value, (int, float)) or value < 0:
                return f"{key} must be a non-negative number: {value!r}"
    phases = spec.get("memory_phases")
    if phases is not None:
        if not isinstance(phases, list) or not phases:
            return "memory_phases must be a non-empty array"
        for pair in phases:
            if (not isinstance(pair, (list, tuple)) or len(pair) != 2
                    or not all(isinstance(v, (int, float)) and v >= 0
                               for v in pair)):
                return (f"memory_phases entries must be "
                        f"[progress_s, demand_mb] pairs: {pair!r}")
    return None


def _job_from_spec(spec: dict, now: float):
    """Materialize a validated spec into a runnable Job.  Engine
    thread only: ``Job()`` allocates a process-global id.  Requested
    submit times in the past clamp to ``now`` (the admission instant)
    so streamed jobs cannot claim queueing delay they never saw."""
    from repro.cluster.job import Job, MemoryProfile

    peak = float(spec["peak_demand_mb"])
    phases = spec.get("memory_phases")
    profile = (MemoryProfile.from_pairs([(float(p), float(d))
                                         for p, d in phases])
               if phases else MemoryProfile.constant(peak))
    return Job(
        program=spec["program"],
        cpu_work_s=float(spec["lifetime_s"]),
        memory=profile,
        submit_time=max(float(spec.get("submit_time", now)), now),
        home_node=spec["home_node"],
        io_stall_per_cpu_s=float(spec.get("io_stall_per_cpu_s", 0.0)),
        buffer_cache_mb=float(spec.get("buffer_cache_mb", 0.0)),
    )


class _ControlRequest:
    """A handler-thread request serviced by the engine thread at the
    next slice boundary (currently: snapshot the world)."""

    __slots__ = ("done", "result", "error")

    def __init__(self):
        self.done = threading.Event()
        self.result: Optional[bytes] = None
        self.error: Optional[str] = None


class _LiveHandler(BaseHTTPRequestHandler):
    """Serves the monitor's published payloads (read-only)."""

    server_version = "repro-live/1.0"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        monitor: "LiveMonitor" = self.server.monitor  # type: ignore
        path = self.path.split("?", 1)[0].rstrip("/") or "/dashboard"
        payload = monitor.payload(path)
        if payload is None:
            body = b"not found; endpoints: /metrics /healthz " \
                   b"/snapshot.json /dashboard\n"
            self.send_response(404)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        body, content_type, status = payload
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)
        monitor.requests_served += 1

    # ------------------------------------------------------------------
    # write endpoints (validate + enqueue only; engine does the work)
    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        monitor: "LiveMonitor" = self.server.monitor  # type: ignore
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length else b""
        if path == "/submit":
            body, content_type, status = monitor.handle_submit(raw)
        elif path == "/checkpoint":
            body, content_type, status = monitor.handle_checkpoint(raw)
        elif path == "/fork":
            body, content_type, status = monitor.handle_fork(raw)
        else:
            body = (b"not found; POST endpoints: /submit /checkpoint "
                    b"/fork\n")
            content_type, status = "text/plain; charset=utf-8", 404
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        monitor.requests_served += 1

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes must not spam the run's stdout


class LiveMonitor:
    """HTTP monitoring server plus the paced engine drive loop."""

    def __init__(self, session: "ObsSession", port: int = 0,
                 pace: float = 0.0,
                 port_file: Optional[str] = None,
                 refresh_s: float = 2.0):
        if pace < 0:
            raise ValueError(f"pace must be >= 0 sim-s/wall-s: {pace!r}")
        self.session = session
        self.requested_port = port
        self.pace = float(pace)
        self.port_file = port_file
        self.refresh_s = refresh_s
        self.port: Optional[int] = None
        self.publishes = 0
        self.requests_served = 0
        self.sim_lag_s = 0.0
        self.sim_lag_max_s = 0.0
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._payloads: Dict[str, Payload] = {}
        # Streaming-ingest plane: raw validated specs queued by any
        # thread, admitted by the engine thread at slice boundaries.
        self._ingest_lock = threading.Lock()
        self._ingest_queue: List[dict] = []
        self._ingest_holds = 0
        self.jobs_received = 0
        self.jobs_admitted = 0
        self.jobs_rejected = 0
        # Control plane (/checkpoint, /fork): requests the engine
        # services between slices.
        self._control_lock = threading.Lock()
        self._control_queue: List[_ControlRequest] = []

    # ------------------------------------------------------------------
    # server lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "LiveMonitor":
        """Bind the server, write the port file, start serving."""
        server = ThreadingHTTPServer(("127.0.0.1", self.requested_port),
                                     _LiveHandler)
        server.daemon_threads = True
        server.monitor = self  # type: ignore[attr-defined]
        self._server = server
        self.port = server.server_address[1]
        if self.port_file:
            with open(self.port_file, "w", encoding="utf-8") as stream:
                stream.write(f"{self.port}\n")
        thread = threading.Thread(target=server.serve_forever,
                                  name="repro-live-http", daemon=True)
        thread.start()
        self._thread = thread
        self.publish()  # endpoints answer before the first slice
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    # ------------------------------------------------------------------
    # streaming ingest (enqueue from any thread; admit on engine)
    # ------------------------------------------------------------------
    @property
    def _world_bound(self) -> bool:
        """The session knows the run's policy and job list (the
        runner's ``bind_run``) — prerequisite of every write
        endpoint."""
        session = self.session
        return (session.cluster is not None and session.policy is not None
                and session.jobs is not None)

    def enqueue_jobs(self, specs) -> Tuple[int, List[str]]:
        """Validate raw job specs and queue the valid ones for
        admission.  All-or-nothing: one invalid spec rejects the whole
        batch (a partially admitted batch is harder to reason about
        than a resubmitted one).  Returns ``(accepted, errors)``."""
        specs = list(specs)
        num_nodes = self.session.cluster.config.num_nodes
        errors = []
        for index, spec in enumerate(specs):
            problem = validate_job_spec(spec, num_nodes)
            if problem is not None:
                errors.append(f"job[{index}]: {problem}")
        with self._ingest_lock:
            self.jobs_received += len(specs)
            if errors:
                self.jobs_rejected += len(specs)
                return 0, errors
            self._ingest_queue.extend(specs)
        return len(specs), []

    def add_ingest_hold(self) -> None:
        """Keep the drive loop alive while an ingest source (stdin
        reader, service supervisor) may still produce jobs."""
        with self._ingest_lock:
            self._ingest_holds += 1

    def release_ingest_hold(self) -> None:
        with self._ingest_lock:
            self._ingest_holds = max(0, self._ingest_holds - 1)

    def ingest_stdin(self) -> threading.Thread:
        """Admit JSONL job specs from stdin (one spec — or array of
        specs — per line) until EOF; holds the drive loop open for the
        stream's lifetime."""
        import sys

        self.add_ingest_hold()

        def reader() -> None:
            try:
                for line in sys.stdin:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        parsed = json.loads(line)
                    except ValueError:
                        with self._ingest_lock:
                            self.jobs_received += 1
                            self.jobs_rejected += 1
                        print("[ingest] rejected stdin line: not JSON",
                              file=sys.stderr)
                        continue
                    _, errors = self.enqueue_jobs(
                        parsed if isinstance(parsed, list) else [parsed])
                    for problem in errors:
                        print(f"[ingest] rejected stdin spec: {problem}",
                              file=sys.stderr)
            finally:
                self.release_ingest_hold()

        thread = threading.Thread(target=reader, name="repro-ingest-stdin",
                                  daemon=True)
        thread.start()
        return thread

    def _admit_ingest(self, sim: "Simulator") -> int:
        """Engine thread: build Jobs from queued specs and schedule
        their submissions.  Runs between slices, so admission order —
        and therefore job-id assignment — is single-threaded and
        deterministic given the same arrival interleaving."""
        with self._ingest_lock:
            if not self._ingest_queue:
                return 0
            batch, self._ingest_queue = self._ingest_queue, []
        session = self.session
        for spec in batch:
            job = _job_from_spec(spec, sim.now)
            session.jobs.append(job)
            sim.schedule_at(job.submit_time,
                            functools.partial(session.policy.submit, job))
        with self._ingest_lock:
            self.jobs_admitted += len(batch)
        return len(batch)

    # ------------------------------------------------------------------
    # control plane (/checkpoint, /fork)
    # ------------------------------------------------------------------
    def _request_snapshot(self) -> Tuple[Optional[bytes], str, int]:
        """Handler thread: ask the engine for a world snapshot and
        wait.  Returns ``(bytes, error, status)``."""
        if not self._world_bound:
            return (None, "run world not bound (no policy/job list); "
                    "checkpointing needs the experiment runner's "
                    "bind_run", 503)
        request = _ControlRequest()
        with self._control_lock:
            self._control_queue.append(request)
        if not request.done.wait(CONTROL_TIMEOUT_S):
            return (None, "engine did not reach a slice boundary in "
                    f"{CONTROL_TIMEOUT_S:.0f}s", 503)
        if request.error is not None:
            return None, request.error, 500
        return request.result, "", 200

    def _service_control(self, sim: "Simulator") -> None:
        """Engine thread: serve queued snapshot requests while the
        simulation is paused at a slice boundary."""
        with self._control_lock:
            if not self._control_queue:
                return
            requests, self._control_queue = self._control_queue, []
        from repro.sim.checkpoint import snapshot_bytes
        session = self.session
        for request in requests:
            try:
                request.result = snapshot_bytes(
                    cluster=session.cluster, policy=session.policy,
                    collector=session.collector, jobs=session.jobs,
                    trace_name=session.trace_name or session.run_label)
            except Exception as exc:  # noqa: BLE001 - report to caller
                request.error = f"snapshot failed: {exc}"
            request.done.set()

    # ------------------------------------------------------------------
    # POST endpoint bodies (handler threads)
    # ------------------------------------------------------------------
    @staticmethod
    def _json_payload(obj, status: int) -> Payload:
        return ((json.dumps(obj, indent=2, sort_keys=True) + "\n")
                .encode("utf-8"), "application/json", status)

    def handle_submit(self, raw: bytes) -> Payload:
        if not self._world_bound:
            return self._json_payload(
                {"error": "run world not bound; job ingest needs the "
                          "experiment runner's bind_run"}, 503)
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError:
            return self._json_payload({"error": "body is not UTF-8"}, 400)
        specs: List[dict] = []
        try:
            parsed = json.loads(text)
            specs = parsed if isinstance(parsed, list) else [parsed]
        except ValueError:
            # JSONL fallback: one spec per line.
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    specs.append(json.loads(line))
                except ValueError:
                    return self._json_payload(
                        {"error": f"undecodable JSONL line: {line[:80]!r}"},
                        400)
        if not specs:
            return self._json_payload({"error": "no job specs in body"}, 400)
        accepted, errors = self.enqueue_jobs(specs)
        if errors:
            return self._json_payload(
                {"error": "invalid job specs", "details": errors}, 400)
        return self._json_payload({"accepted": accepted}, 202)

    def handle_checkpoint(self, raw: bytes) -> Payload:
        path = None
        if raw.strip():
            try:
                body = json.loads(raw.decode("utf-8"))
                path = body.get("path")
            except (ValueError, UnicodeDecodeError, AttributeError):
                return self._json_payload(
                    {"error": "body must be empty or a JSON object "
                              "with an optional 'path'"}, 400)
        data, error, status = self._request_snapshot()
        if data is None:
            return self._json_payload({"error": error}, status)
        if path is None:
            return data, "application/octet-stream", 200
        from repro.sim.checkpoint import _decode_envelope
        meta = _decode_envelope(data)["meta"]
        try:
            with open(path, "wb") as stream:
                stream.write(data)
        except OSError as exc:
            return self._json_payload(
                {"error": f"cannot write {path!r}: {exc}"}, 500)
        return self._json_payload(
            {"path": path, "bytes": len(data), "meta": meta}, 200)

    def handle_fork(self, raw: bytes) -> Payload:
        try:
            body = json.loads(raw.decode("utf-8")) if raw.strip() else {}
        except (ValueError, UnicodeDecodeError):
            return self._json_payload({"error": "body must be JSON"}, 400)
        if not isinstance(body, dict) or not body.get("policy"):
            return self._json_payload(
                {"error": "body must be a JSON object naming a "
                          "'policy' to fork to"}, 400)
        data, error, status = self._request_snapshot()
        if data is None:
            return self._json_payload({"error": error}, status)
        # The forked universe is private to this handler thread; the
        # live engine continues unperturbed.  advance_counters=False:
        # a replay creates no new jobs, and the live engine owns the
        # process-global id counters.
        import dataclasses

        from repro.sim.checkpoint import (CheckpointError, fork,
                                          restore_bytes, resume)
        try:
            restored = restore_bytes(data, advance_counters=False)
            restored = fork(restored, policy=body["policy"],
                            policy_kwargs=body.get("policy_kwargs"))
            forked_from = restored.meta.get("forked_from")
            result = resume(restored)
        except CheckpointError as exc:
            return self._json_payload({"error": str(exc)}, 400)
        except Exception as exc:  # noqa: BLE001 - report to caller
            return self._json_payload(
                {"error": f"fork replay failed: {exc}"}, 500)
        return self._json_payload(
            {"policy": result.summary.policy,
             "forked_from": forked_from,
             "forked_at": restored.meta.get("sim_now"),
             "summary": dataclasses.asdict(result.summary)}, 200)

    # ------------------------------------------------------------------
    # publishing (engine thread only)
    # ------------------------------------------------------------------
    def payload(self, path: str) -> Optional[Payload]:
        with self._lock:
            return self._payloads.get(path)

    def publish(self) -> None:
        """Render every endpoint's payload from current state and swap
        them in atomically.  Runs on the engine thread; handlers only
        ever see complete, immutable payloads."""
        session = self.session
        prom = StringIO()
        session.registry.write_prom(prom,
                                    labels={"run": session.run_label})
        metrics = (prom.getvalue().encode("utf-8"),
                   "text/plain; version=0.0.4; charset=utf-8", 200)

        now = (session.cluster.sim.now
               if session.cluster is not None else 0.0)
        snapshot = {}
        if session.window is not None:
            snapshot = session.window.snapshot(now)
            if self.pace > 0:
                snapshot["sim_lag_s"] = self.sim_lag_s
                snapshot["sim_lag_max_s"] = self.sim_lag_max_s
        with self._ingest_lock:
            snapshot["ingest"] = {
                "received": self.jobs_received,
                "admitted": self.jobs_admitted,
                "rejected": self.jobs_rejected,
                "queued": len(self._ingest_queue),
                "holds": self._ingest_holds,
            }
        snapshot_payload = (
            (json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
            .encode("utf-8"), "application/json", 200)

        if session.health is not None:
            verdict = session.health.verdict(now)
        else:
            verdict = {"status": "ok", "t": now, "rules": [],
                       "active": [], "incidents": 0,
                       "windows_evaluated": 0}
        health_status = 503 if verdict["status"] == "critical" else 200
        health_payload = (
            (json.dumps(verdict, indent=2, sort_keys=True) + "\n")
            .encode("utf-8"), "application/json", health_status)

        from repro.obs.report import render_live_dashboard
        history = (list(session.window.history)
                   if session.window is not None else [])
        incidents = (session.health.incident_records()
                     if session.health is not None else [])
        html = render_live_dashboard(
            title=f"Live run — {session.run_label}",
            snapshot=snapshot, history=history, verdict=verdict,
            incidents=incidents, refresh_s=self.refresh_s,
            paced=self.pace > 0)
        dashboard = (html.encode("utf-8"),
                     "text/html; charset=utf-8", 200)

        with self._lock:
            self._payloads = {
                "/metrics": metrics,
                "/snapshot.json": snapshot_payload,
                "/healthz": health_payload,
                "/dashboard": dashboard,
            }
        self.publishes += 1

    # ------------------------------------------------------------------
    # paced engine drive (engine thread)
    # ------------------------------------------------------------------
    def drive(self, sim: "Simulator",
              run_fn: Optional[Callable[..., float]] = None) -> None:
        """Advance the engine in bounded slices, publishing at every
        slice boundary and (when paced) sleeping to hold the
        sim-seconds-per-wall-second ratio."""
        if run_fn is None:
            run_fn = sim.run
        window = self.session.window
        if self.pace > 0:
            slice_sim = self.pace * SLICE_WALL_S
        elif window is not None:
            slice_sim = window.window_s
        else:
            slice_sim = 100.0
        wall_start = time.perf_counter()
        sim_start = sim.now
        registry = self.session.registry
        while True:
            # Slice boundary: the engine is paused, so this is the one
            # safe instant to serve snapshot requests and to turn
            # queued ingest specs into scheduled submissions.
            self._service_control(sim)
            admitted = self._admit_ingest(sim)
            if not sim.has_non_daemon_work and not admitted:
                with self._ingest_lock:
                    holding = self._ingest_holds > 0
                if not holding:
                    break
                # Simulation ran dry but an ingest source is still
                # open: idle at wall pace until jobs arrive or the
                # source closes.
                self.publish()
                time.sleep(SLICE_WALL_S)
                continue
            run_fn(until=sim.now + slice_sim)
            if self.pace > 0:
                expected = (sim.now - sim_start) / self.pace
                actual = time.perf_counter() - wall_start
                lag = actual - expected
                self.sim_lag_s = max(0.0, lag)
                if self.sim_lag_s > self.sim_lag_max_s:
                    self.sim_lag_max_s = self.sim_lag_s
                if window is not None:
                    window.record_sim_lag(self.sim_lag_s)
                registry.gauge("sim_lag_s").set(self.sim_lag_s)
                self.publish()
                if lag < 0:
                    time.sleep(min(-lag, SLICE_WALL_S))
            else:
                self.publish()
        # Final drain so a checkpoint request racing the last slice
        # cannot hang until its timeout.
        self._service_control(sim)
        self.publish()

    def aggregate(self) -> Dict[str, float]:
        """Flat gauges for ``RunSummary.extra`` (``obs.live_*``)."""
        out = {
            "live_publishes": float(self.publishes),
            "live_requests": float(self.requests_served),
        }
        if self.pace > 0:
            out["live_pace_sim_per_wall"] = self.pace
            out["live_sim_lag_max_s"] = self.sim_lag_max_s
        if self.jobs_received:
            out["live_jobs_received"] = float(self.jobs_received)
            out["live_jobs_admitted"] = float(self.jobs_admitted)
            out["live_jobs_rejected"] = float(self.jobs_rejected)
        return out


__all__ = ["LiveMonitor", "SLICE_WALL_S", "CONTROL_TIMEOUT_S",
           "validate_job_spec"]
