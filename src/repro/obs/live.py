"""Live monitoring plane: an HTTP server over a paced engine.

:class:`LiveMonitor` is the first brick of the digital-twin service
mode (ROADMAP item 1): it runs a stdlib :class:`ThreadingHTTPServer`
on an ephemeral (or chosen) port next to the simulation and drives
the engine in bounded real-time slices so the run can be *watched* —
by a human on ``/dashboard``, by a Prometheus scraper on
``/metrics``, by an orchestrator probe on ``/healthz``.

Endpoints:

* ``GET /metrics`` — Prometheus text exposition of the live metrics
  registry (the same :meth:`MetricsRegistry.write_prom` payload the
  batch path writes at the end of a run);
* ``GET /healthz`` — the health-rule engine's verdict as JSON;
  ``200`` while ok/degraded, ``503`` once a critical alert is active;
* ``GET /snapshot.json`` — the windowed aggregation snapshot (rates,
  cumulative totals, quantile sketches, staleness, sim lag);
* ``GET /dashboard`` (and ``/``) — a self-refreshing, self-contained
  inline-SVG page built from the same components as the batch HTML
  reports.

Threading model — the invariant that keeps this safe without slowing
the engine: **HTTP handler threads never touch live state.**  The
engine thread *publishes* fully rendered, immutable payload bytes
under a lock at every slice boundary; handlers only read the latest
published payloads.  Staleness is bounded by the slice width and the
engine never blocks on a scrape.

Pacing: ``pace`` is simulated seconds per wall second.  ``pace=0``
runs the engine as fast as possible (publishing between slices);
``pace>0`` sleeps between slices to hold the ratio, and reports
``sim_lag_s`` — how far (in wall seconds) the engine is behind its
real-time schedule — into the windowed snapshot and the metrics
registry, where a health rule can watch it.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from io import StringIO
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.session import ObsSession
    from repro.sim.engine import Simulator

#: Wall-clock width of one paced engine slice.
SLICE_WALL_S = 0.25

#: One published payload: (body bytes, content type, HTTP status).
Payload = Tuple[bytes, str, int]


class _LiveHandler(BaseHTTPRequestHandler):
    """Serves the monitor's published payloads (read-only)."""

    server_version = "repro-live/1.0"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        monitor: "LiveMonitor" = self.server.monitor  # type: ignore
        path = self.path.split("?", 1)[0].rstrip("/") or "/dashboard"
        payload = monitor.payload(path)
        if payload is None:
            body = b"not found; endpoints: /metrics /healthz " \
                   b"/snapshot.json /dashboard\n"
            self.send_response(404)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        body, content_type, status = payload
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)
        monitor.requests_served += 1

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes must not spam the run's stdout


class LiveMonitor:
    """HTTP monitoring server plus the paced engine drive loop."""

    def __init__(self, session: "ObsSession", port: int = 0,
                 pace: float = 0.0,
                 port_file: Optional[str] = None,
                 refresh_s: float = 2.0):
        if pace < 0:
            raise ValueError(f"pace must be >= 0 sim-s/wall-s: {pace!r}")
        self.session = session
        self.requested_port = port
        self.pace = float(pace)
        self.port_file = port_file
        self.refresh_s = refresh_s
        self.port: Optional[int] = None
        self.publishes = 0
        self.requests_served = 0
        self.sim_lag_s = 0.0
        self.sim_lag_max_s = 0.0
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._payloads: Dict[str, Payload] = {}

    # ------------------------------------------------------------------
    # server lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "LiveMonitor":
        """Bind the server, write the port file, start serving."""
        server = ThreadingHTTPServer(("127.0.0.1", self.requested_port),
                                     _LiveHandler)
        server.daemon_threads = True
        server.monitor = self  # type: ignore[attr-defined]
        self._server = server
        self.port = server.server_address[1]
        if self.port_file:
            with open(self.port_file, "w", encoding="utf-8") as stream:
                stream.write(f"{self.port}\n")
        thread = threading.Thread(target=server.serve_forever,
                                  name="repro-live-http", daemon=True)
        thread.start()
        self._thread = thread
        self.publish()  # endpoints answer before the first slice
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    # ------------------------------------------------------------------
    # publishing (engine thread only)
    # ------------------------------------------------------------------
    def payload(self, path: str) -> Optional[Payload]:
        with self._lock:
            return self._payloads.get(path)

    def publish(self) -> None:
        """Render every endpoint's payload from current state and swap
        them in atomically.  Runs on the engine thread; handlers only
        ever see complete, immutable payloads."""
        session = self.session
        prom = StringIO()
        session.registry.write_prom(prom,
                                    labels={"run": session.run_label})
        metrics = (prom.getvalue().encode("utf-8"),
                   "text/plain; version=0.0.4; charset=utf-8", 200)

        now = (session.cluster.sim.now
               if session.cluster is not None else 0.0)
        snapshot = {}
        if session.window is not None:
            snapshot = session.window.snapshot(now)
            if self.pace > 0:
                snapshot["sim_lag_s"] = self.sim_lag_s
                snapshot["sim_lag_max_s"] = self.sim_lag_max_s
        snapshot_payload = (
            (json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
            .encode("utf-8"), "application/json", 200)

        if session.health is not None:
            verdict = session.health.verdict(now)
        else:
            verdict = {"status": "ok", "t": now, "rules": [],
                       "active": [], "incidents": 0,
                       "windows_evaluated": 0}
        health_status = 503 if verdict["status"] == "critical" else 200
        health_payload = (
            (json.dumps(verdict, indent=2, sort_keys=True) + "\n")
            .encode("utf-8"), "application/json", health_status)

        from repro.obs.report import render_live_dashboard
        history = (list(session.window.history)
                   if session.window is not None else [])
        incidents = (session.health.incident_records()
                     if session.health is not None else [])
        html = render_live_dashboard(
            title=f"Live run — {session.run_label}",
            snapshot=snapshot, history=history, verdict=verdict,
            incidents=incidents, refresh_s=self.refresh_s,
            paced=self.pace > 0)
        dashboard = (html.encode("utf-8"),
                     "text/html; charset=utf-8", 200)

        with self._lock:
            self._payloads = {
                "/metrics": metrics,
                "/snapshot.json": snapshot_payload,
                "/healthz": health_payload,
                "/dashboard": dashboard,
            }
        self.publishes += 1

    # ------------------------------------------------------------------
    # paced engine drive (engine thread)
    # ------------------------------------------------------------------
    def drive(self, sim: "Simulator",
              run_fn: Optional[Callable[..., float]] = None) -> None:
        """Advance the engine in bounded slices, publishing at every
        slice boundary and (when paced) sleeping to hold the
        sim-seconds-per-wall-second ratio."""
        if run_fn is None:
            run_fn = sim.run
        window = self.session.window
        if self.pace > 0:
            slice_sim = self.pace * SLICE_WALL_S
        elif window is not None:
            slice_sim = window.window_s
        else:
            slice_sim = 100.0
        wall_start = time.perf_counter()
        sim_start = sim.now
        registry = self.session.registry
        while sim.has_non_daemon_work:
            run_fn(until=sim.now + slice_sim)
            if self.pace > 0:
                expected = (sim.now - sim_start) / self.pace
                actual = time.perf_counter() - wall_start
                lag = actual - expected
                self.sim_lag_s = max(0.0, lag)
                if self.sim_lag_s > self.sim_lag_max_s:
                    self.sim_lag_max_s = self.sim_lag_s
                if window is not None:
                    window.record_sim_lag(self.sim_lag_s)
                registry.gauge("sim_lag_s").set(self.sim_lag_s)
                self.publish()
                if lag < 0:
                    time.sleep(min(-lag, SLICE_WALL_S))
            else:
                self.publish()
        self.publish()

    def aggregate(self) -> Dict[str, float]:
        """Flat gauges for ``RunSummary.extra`` (``obs.live_*``)."""
        out = {
            "live_publishes": float(self.publishes),
            "live_requests": float(self.requests_served),
        }
        if self.pace > 0:
            out["live_pace_sim_per_wall"] = self.pace
            out["live_sim_lag_max_s"] = self.sim_lag_max_s
        return out


__all__ = ["LiveMonitor", "SLICE_WALL_S"]
