"""Streaming windowed aggregation over the obs event bus.

The batch obs stack (registry snapshots, lifecycle aggregates) only
answers questions *after* a run; the live telemetry plane needs
"what is the blocking rate *right now*" while the engine is mid-run.
:class:`WindowAggregator` subscribes to the bus channels that carry
scheduling signal and maintains:

* **rolling rate counters** (:class:`RollingCounter`) — submits,
  finishes, requeues, blocking detections, placements, migrations,
  load-info exchanges, closed per window into an events/s rate;
* **windowed gauges** (:class:`WindowedGauge`) — last/min/max of a
  value within the current window (directory staleness, sim lag);
* **quantile sketches** (:class:`P2Quantile`, the Jain & Chlamtac
  P² algorithm) — slowdown and placement-latency p50/p95 without
  retaining the observation stream: five markers per quantile, O(1)
  per observation.

A daemon tick (priority 5, like the cluster sampler) closes a window
every ``window_s`` simulated seconds, snapshots everything into a
plain-dict record keyed by sim time, appends it to a bounded history
ring (what the live dashboard charts), and hands the snapshot to any
registered window observers (the health-rule engine).

Cumulative totals ride along in every snapshot so the *final*
snapshot agrees with the end-of-run :class:`RunSummary` on
overlapping metrics (jobs finished, migrations, mean slowdown) — the
live view and the batch view can be cross-checked against each other.

Nothing here perturbs scheduling: the tick is a daemon event (it
never keeps an idle simulation alive) and the aggregator only reads
event payloads.
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from typing import (TYPE_CHECKING, Callable, Deque, Dict, List, Optional,
                    Tuple)

from repro.obs.bus import ObsEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster

#: Snapshot history ring length: at the default 50 s window this spans
#: a 12 000 s run, plenty for a dashboard chart.
HISTORY_LIMIT = 240

#: Default window width in simulated seconds.
DEFAULT_WINDOW_S = 50.0

#: Daemon priority of the window tick (after monitors at 3 and the
#: metrics collector at 4, alongside the cluster sampler).
TICK_PRIORITY = 5


class RollingCounter:
    """Event count folded per window plus a cumulative total.

    ``inc`` is the hot path (called from bus subscribers); ``roll``
    runs once per window tick and converts the open window's count
    into the closed-window rate.
    """

    __slots__ = ("total", "current", "last_count", "last_rate")

    def __init__(self):
        self.total = 0.0
        self.current = 0.0
        self.last_count = 0.0
        self.last_rate = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.total += amount
        self.current += amount

    def roll(self, window_s: float) -> None:
        self.last_count = self.current
        self.last_rate = self.current / window_s if window_s > 0 else 0.0
        self.current = 0.0


class WindowedGauge:
    """Last/min/max of a sampled value within the current window."""

    __slots__ = ("value", "window_min", "window_max", "samples")

    def __init__(self):
        self.value: Optional[float] = None
        self.window_min = math.inf
        self.window_max = -math.inf
        self.samples = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.samples += 1
        if value < self.window_min:
            self.window_min = value
        if value > self.window_max:
            self.window_max = value

    def roll(self) -> None:
        self.window_min = math.inf
        self.window_max = -math.inf
        self.samples = 0


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm
    (Jain & Chlamtac, CACM 1985).

    Five markers track the running estimate of the ``p``-quantile in
    O(1) memory and O(1) per observation; count/sum/min/max ride along
    so the mean is exact.  Below five observations the estimate is the
    nearest-rank quantile of the sorted buffer.
    """

    __slots__ = ("p", "count", "total", "min", "max", "_q", "_n", "_np",
                 "_dn")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1): {p!r}")
        self.p = p
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._q: List[float] = []
        self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._np = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._dn = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        q = self._q
        if self.count <= 5:
            bisect.insort(q, value)
            return
        n = self._n
        if value < q[0]:
            q[0] = value
            k = 0
        elif value >= q[4]:
            q[4] = value
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if value < q[i]:
                    break
                k = i
        for i in range(k + 1, 5):
            n[i] += 1.0
        np_ = self._np
        for i in range(5):
            np_[i] += self._dn[i]
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if ((d >= 1.0 and n[i + 1] - n[i] > 1.0)
                    or (d <= -1.0 and n[i - 1] - n[i] < -1.0)):
                d = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, d)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, d)
                q[i] = candidate
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1])
            / (n[i] - n[i - 1]))

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> Optional[float]:
        """Current estimate of the ``p``-quantile (None before any
        observation)."""
        if self.count == 0:
            return None
        if self.count <= 5:
            rank = min(self.count - 1,
                       int(round(self.p * (self.count - 1))))
            return self._q[rank]
        return self._q[2]

    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None


#: A window observer receives each closed-window snapshot.
WindowObserver = Callable[[dict], None]

#: (counter attribute, bus channel) wiring for the rate counters that
#: map one-to-one onto a channel's event stream.
_RATE_KEYS = ("submit", "finish", "requeue", "blocking",
              "placement_local", "placement_remote", "migration",
              "exchange")


class WindowAggregator:
    """Windowed live view of one run, fed by the obs event bus."""

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 history: int = HISTORY_LIMIT):
        if window_s <= 0:
            raise ValueError(f"window_s must be positive: {window_s!r}")
        self.window_s = float(window_s)
        self.history: Deque[dict] = deque(maxlen=history)
        self.counters: Dict[str, RollingCounter] = {
            key: RollingCounter() for key in _RATE_KEYS}
        self.slowdown = P2Quantile(0.95)
        self.slowdown_p50 = P2Quantile(0.50)
        self.placement_latency = P2Quantile(0.95)
        self.placement_latency_p50 = P2Quantile(0.50)
        self.sim_lag = WindowedGauge()
        self.windows_closed = 0
        self.cluster: Optional["Cluster"] = None
        self._observers: List[WindowObserver] = []
        #: job -> wall of queue entry (submit or requeue), popped at
        #: the next placement decision: feeds placement latency.
        self._pending_since: Dict[int, float] = {}
        #: job -> (original submit time, cpu_work_s): feeds slowdown.
        self._submitted: Dict[int, Tuple[float, float]] = {}
        self._last_exchange_t: Optional[float] = None
        self._last_domain_t: Optional[float] = None
        self._last_snapshot: Optional[dict] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, cluster: "Cluster") -> "WindowAggregator":
        """Subscribe to the cluster's bus and start the window tick."""
        if self.cluster is not None:
            raise ValueError("WindowAggregator is single-use; "
                             "already attached")
        self.cluster = cluster
        bus = cluster.obs
        bus.subscribe("cluster.job", self._on_job)
        bus.subscribe("cluster.placement", self._on_placement)
        bus.subscribe("cluster.migration", self._on_migration)
        bus.subscribe("reconfig.blocking", self._on_blocking)
        bus.subscribe("loadinfo.exchange", self._on_exchange)
        bus.subscribe("loadinfo.domain", self._on_domain)
        cluster.sim.schedule(self.window_s, self._tick,
                             priority=TICK_PRIORITY, daemon=True)
        return self

    def add_observer(self, observer: WindowObserver) -> None:
        """Register a callable invoked with each closed-window
        snapshot (the health engine's evaluation hook)."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # bus subscribers
    # ------------------------------------------------------------------
    def _on_job(self, event: ObsEvent) -> None:
        kind = event.kind
        if kind == "submit":
            job = event.data.get("job")
            self.counters["submit"].inc()
            self._pending_since[job] = event.time
            self._submitted[job] = (event.time,
                                    event.data.get("cpu_work_s") or 0.0)
        elif kind == "finish":
            job = event.data.get("job")
            self.counters["finish"].inc()
            self._pending_since.pop(job, None)
            record = self._submitted.pop(job, None)
            if record is not None and record[1] > 0:
                # Same formula as Job.slowdown(): wall / cpu_work_s.
                slowdown = (event.time - record[0]) / record[1]
                self.slowdown.observe(slowdown)
                self.slowdown_p50.observe(slowdown)
        elif kind == "requeue":
            job = event.data.get("job")
            self.counters["requeue"].inc()
            self._pending_since[job] = event.time

    def _on_placement(self, event: ObsEvent) -> None:
        key = ("placement_local" if event.kind == "local"
               else "placement_remote")
        self.counters[key].inc()
        since = self._pending_since.pop(event.data.get("job"), None)
        if since is not None:
            latency = event.time - since
            self.placement_latency.observe(latency)
            self.placement_latency_p50.observe(latency)

    def _on_migration(self, event: ObsEvent) -> None:
        self.counters["migration"].inc()

    def _on_blocking(self, event: ObsEvent) -> None:
        if event.kind != "activation-skipped":
            self.counters["blocking"].inc()

    def _on_exchange(self, event: ObsEvent) -> None:
        self.counters["exchange"].inc()
        self._last_exchange_t = event.time

    def _on_domain(self, event: ObsEvent) -> None:
        self._last_domain_t = event.time

    # ------------------------------------------------------------------
    # window tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        sim = self.cluster.sim
        snapshot = self._close_window(sim.now)
        for observer in self._observers:
            observer(snapshot)
        sim.schedule(self.window_s, self._tick,
                     priority=TICK_PRIORITY, daemon=True)

    def _close_window(self, now: float) -> dict:
        for counter in self.counters.values():
            counter.roll(self.window_s)
        self.windows_closed += 1
        snapshot = self._build_snapshot(now, closed=True)
        self.sim_lag.roll()
        self.history.append(snapshot)
        self._last_snapshot = snapshot
        return snapshot

    def _build_snapshot(self, now: float, closed: bool) -> dict:
        counters = self.counters
        if closed:
            rates = {key: counters[key].last_rate for key in _RATE_KEYS}
            counts = {key: counters[key].last_count for key in _RATE_KEYS}
        else:
            # Open-window view: scale the partial window as if closed
            # (used by on-demand snapshots between ticks).
            rates = {key: counters[key].current / self.window_s
                     for key in _RATE_KEYS}
            counts = {key: counters[key].current for key in _RATE_KEYS}
        quantiles = {
            "slowdown_p95": self.slowdown.value(),
            "slowdown_p50": self.slowdown_p50.value(),
            "slowdown_mean": self.slowdown.mean(),
            "slowdown_max": (self.slowdown.max
                             if self.slowdown.count else None),
            "placement_latency_p95": self.placement_latency.value(),
            "placement_latency_p50": self.placement_latency_p50.value(),
            "placement_latency_mean": self.placement_latency.mean(),
        }
        staleness = {
            "loadinfo_age_s": (now - self._last_exchange_t
                               if self._last_exchange_t is not None
                               else None),
            "domain_summary_age_s": (now - self._last_domain_t
                                     if self._last_domain_t is not None
                                     else None),
        }
        snapshot = {
            "t": now,
            "closed": closed,
            "window_s": self.window_s,
            "window": self.windows_closed,
            "rates": rates,
            "counts": counts,
            "totals": {
                "jobs_submitted": counters["submit"].total,
                "jobs_finished": counters["finish"].total,
                "requeues": counters["requeue"].total,
                "blocking_detections": counters["blocking"].total,
                "placements_local": counters["placement_local"].total,
                "placements_remote": counters["placement_remote"].total,
                "migrations": counters["migration"].total,
                "loadinfo_exchanges": counters["exchange"].total,
            },
            "quantiles": quantiles,
            "staleness": staleness,
            "pending_jobs": float(len(self._pending_since)),
        }
        if self.sim_lag.value is not None:
            snapshot["sim_lag_s"] = self.sim_lag.value
            snapshot["sim_lag_max_s"] = (
                self.sim_lag.window_max
                if self.sim_lag.samples else self.sim_lag.value)
        return snapshot

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def record_sim_lag(self, lag_s: float) -> None:
        """Record the engine's real-time lag (set by the pacer; sim
        seconds the engine is behind its wall-clock schedule)."""
        self.sim_lag.set(lag_s)

    def snapshot(self, now: Optional[float] = None) -> dict:
        """On-demand snapshot: the open window scaled to full width
        plus cumulative totals (what ``/snapshot.json`` serves)."""
        if now is None:
            now = self.cluster.sim.now if self.cluster is not None else 0.0
        return self._build_snapshot(now, closed=False)

    def last_snapshot(self) -> Optional[dict]:
        """The most recent closed-window snapshot (None before the
        first tick)."""
        return self._last_snapshot

    def aggregate(self) -> Dict[str, float]:
        """Flat aggregate view folded into ``RunSummary.extra`` by the
        session (``obs.window_*`` keys)."""
        out: Dict[str, float] = {
            "window_width_s": self.window_s,
            "window_count": float(self.windows_closed),
            "window_jobs_finished": self.counters["finish"].total,
            "window_requeues": self.counters["requeue"].total,
            "window_blocking_detections": self.counters["blocking"].total,
        }
        for name, sketch in (("slowdown", self.slowdown),
                             ("placement_latency", self.placement_latency)):
            if sketch.count:
                out[f"window_{name}_p95"] = sketch.value()
                out[f"window_{name}_mean"] = sketch.mean()
                out[f"window_{name}_samples"] = float(sketch.count)
        if self.sim_lag.value is not None:
            out["window_sim_lag_s"] = self.sim_lag.value
        return out


#: Counter key -> friendly name used in the snapshot ``totals`` dict.
_TOTAL_ALIASES = {
    "submit": "jobs_submitted", "finish": "jobs_finished",
    "requeue": "requeues", "blocking": "blocking_detections",
    "placement_local": "placements_local",
    "placement_remote": "placements_remote",
    "migration": "migrations", "exchange": "loadinfo_exchanges",
}


def resolve_metric(snapshot: dict, name: str) -> Optional[float]:
    """Resolve a dotted health-rule metric name against a snapshot.

    Grammar: ``<counter>.rate`` / ``<counter>.count`` /
    ``<counter>.total`` read the rate/count/total namespaces
    (``blocking.rate``, ``finish.count``, ``migration.total``);
    ``<sketch>.p95`` / ``.p50`` / ``.mean`` read the quantile sketches
    (``slowdown.p95``); ``loadinfo.age_s`` / ``domain.age_s`` read
    directory staleness; ``sim_lag`` reads the pacer's lag gauge; any
    other name falls through to a top-level snapshot key.  Unknown or
    not-yet-observed metrics resolve to None (absence).
    """
    if name == "sim_lag":
        return snapshot.get("sim_lag_s")
    if name == "loadinfo.age_s":
        return snapshot.get("staleness", {}).get("loadinfo_age_s")
    if name == "domain.age_s":
        return snapshot.get("staleness", {}).get("domain_summary_age_s")
    if "." in name:
        head, _, tail = name.partition(".")
        if tail == "rate":
            return snapshot.get("rates", {}).get(head)
        if tail == "count":
            return snapshot.get("counts", {}).get(head)
        if tail == "total":
            totals = snapshot.get("totals", {})
            return totals.get(_TOTAL_ALIASES.get(head, head),
                              totals.get(head))
        if tail in ("p95", "p50", "mean", "max"):
            return snapshot.get("quantiles", {}).get(f"{head}_{tail}")
    value = snapshot.get(name)
    return value if isinstance(value, (int, float)) else None


__all__ = ["DEFAULT_WINDOW_S", "HISTORY_LIMIT", "P2Quantile",
           "RollingCounter", "WindowAggregator", "WindowedGauge",
           "resolve_metric"]
