"""repro.obs — unified instrumentation layer.

A structured event bus threaded through every layer of the stack
(:mod:`repro.obs.bus`), a metrics registry
(:mod:`repro.obs.metrics`), Chrome-trace/JSONL exporters
(:mod:`repro.obs.trace_export`), per-job causal tracing with exact
slowdown attribution (:mod:`repro.obs.lifecycle`), periodic cluster
sampling (:mod:`repro.obs.sampler`), self-contained HTML reports
(:mod:`repro.obs.report`), and the per-run session object that ties
them together (:mod:`repro.obs.session`).

The live telemetry plane adds streaming windowed aggregation
(:mod:`repro.obs.window`), a declarative health-rule engine
(:mod:`repro.obs.health`), an HTTP monitoring server with paced
real-time execution (:mod:`repro.obs.live`), and engine
self-profiling (:mod:`repro.obs.profile`) — all opt-in via
``ObsSession(window_s=..., health_rules=..., serve=..., pace=...,
profile=True)``.

Observability is off by default and costs one boolean check per emit
site; enable it by attaching an :class:`ObsSession` to a run::

    from repro.obs import ObsSession
    obs = ObsSession(lifecycle=True, sample_period=10.0)
    result = run_experiment(..., obs=obs)
    obs.write_trace("trace.json")      # open in https://ui.perfetto.dev
    obs.write_log("run.jsonl")
    obs.write_report("run.html")       # slowdown attribution + timelines
    obs.write_prom("run.prom")         # Prometheus text exposition
    print(obs.finalize())              # metrics snapshot
"""

from repro.obs.bus import CHANNELS, Channel, EventBus, NULL_CHANNEL, ObsEvent
from repro.obs.health import (
    DEFAULT_RULES,
    HealthEngine,
    HealthRule,
    Incident,
    parse_rule,
)
from repro.obs.lifecycle import (
    ATTRIBUTION_KEYS,
    JobLifecycle,
    JobLifecycleTracker,
)
from repro.obs.live import LiveMonitor
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import EngineProfiler
from repro.obs.report import (
    render_comparison_report,
    render_live_dashboard,
    render_run_report,
    write_report,
)
from repro.obs.sampler import ClusterSampler
from repro.obs.session import EXTRA_PREFIX, TRACE_CHANNELS, ObsSession
from repro.obs.trace_export import chrome_trace, write_chrome_trace, write_jsonl
from repro.obs.window import P2Quantile, WindowAggregator, resolve_metric

__all__ = [
    "ATTRIBUTION_KEYS",
    "CHANNELS",
    "Channel",
    "ClusterSampler",
    "Counter",
    "DEFAULT_RULES",
    "EngineProfiler",
    "EventBus",
    "EXTRA_PREFIX",
    "Gauge",
    "HealthEngine",
    "HealthRule",
    "Histogram",
    "Incident",
    "JobLifecycle",
    "JobLifecycleTracker",
    "LiveMonitor",
    "MetricsRegistry",
    "NULL_CHANNEL",
    "ObsEvent",
    "ObsSession",
    "P2Quantile",
    "TRACE_CHANNELS",
    "WindowAggregator",
    "chrome_trace",
    "parse_rule",
    "render_comparison_report",
    "render_live_dashboard",
    "render_run_report",
    "resolve_metric",
    "write_chrome_trace",
    "write_jsonl",
    "write_report",
]
