"""repro — reproduction of "Adaptive and Virtual Reconfigurations for
Effective Dynamic Job Scheduling in Cluster Systems" (ICDCS 2002).

Public API overview
-------------------

Cluster substrate
    :class:`~repro.cluster.Cluster`,
    :class:`~repro.cluster.ClusterConfig`,
    :class:`~repro.cluster.Job`,
    :class:`~repro.cluster.MemoryProfile`

Scheduling policies
    :class:`~repro.scheduling.GLoadSharing` (the paper's baseline),
    :class:`~repro.core.VReconfiguration` (the contribution), plus
    :class:`~repro.scheduling.LocalPolicy`,
    :class:`~repro.scheduling.CpuBasedPolicy`,
    :class:`~repro.scheduling.MemoryBasedPolicy`,
    :class:`~repro.scheduling.SuspensionPolicy`

Workloads
    :func:`~repro.workload.build_trace` (the published traces),
    :data:`~repro.workload.SPEC_PROGRAMS`,
    :data:`~repro.workload.APP_PROGRAMS`

Experiments
    :func:`~repro.experiments.run_experiment`,
    :mod:`repro.experiments.figures`, ``python -m repro.experiments``

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.cluster import (
    Cluster,
    ClusterConfig,
    Job,
    MemoryProfile,
    WorkstationSpec,
)
from repro.core import VReconfiguration
from repro.scheduling import (
    CpuBasedPolicy,
    GLoadSharing,
    LocalPolicy,
    MemoryBasedPolicy,
    SuspensionPolicy,
)
from repro.workload import WorkloadGroup, build_trace

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterConfig",
    "CpuBasedPolicy",
    "GLoadSharing",
    "Job",
    "LocalPolicy",
    "MemoryBasedPolicy",
    "MemoryProfile",
    "SuspensionPolicy",
    "VReconfiguration",
    "WorkloadGroup",
    "WorkstationSpec",
    "build_trace",
    "__version__",
]
