"""Periodic cluster sampling.

The paper collects the total idle memory volume and the number of
active jobs in each workstation every second (§4.1-4.2), and verifies
that the averages are insensitive to the sampling interval (we expose
the interval so the benchmark suite can repeat that check).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class ClusterSample:
    """One sampling instant."""

    time: float
    total_idle_memory_mb: float
    #: Active job counts per node; reserved (and crashed) nodes hold
    #: None so that the balance skew is computed "among all
    #: non-reserved workstations".
    jobs_per_node: Tuple[Optional[int], ...]
    num_reserved: int
    pending_jobs: int

    @property
    def job_balance_skew(self) -> float:
        """Standard deviation of active jobs among non-reserved nodes."""
        counts = [c for c in self.jobs_per_node if c is not None]
        if not counts:
            return 0.0
        mean = sum(counts) / len(counts)
        return math.sqrt(sum((c - mean) ** 2 for c in counts) / len(counts))


class MetricsCollector:
    """Samples cluster state every ``sample_interval_s`` seconds."""

    def __init__(self, cluster: Cluster,
                 sample_interval_s: Optional[float] = None,
                 pending_probe=None):
        self.cluster = cluster
        self.sample_interval_s = (
            sample_interval_s if sample_interval_s is not None
            else cluster.config.sample_interval_s)
        if self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        #: Optional callable returning the current pending-queue length.
        self.pending_probe = pending_probe
        self.samples: List[ClusterSample] = []
        self._schedule()

    def _schedule(self) -> None:
        self.cluster.sim.schedule(self.sample_interval_s, self._tick,
                                  priority=4, daemon=True)

    def _tick(self) -> None:
        self.sample()
        self._schedule()

    def sample(self) -> ClusterSample:
        """Take one sample immediately (also used by tests)."""
        cluster = self.cluster
        jobs_per_node = tuple(
            None if (node.reserved or not node.alive) else node.num_running
            for node in cluster.nodes)
        pending = self.pending_probe() if self.pending_probe else 0
        sample = ClusterSample(
            time=cluster.sim.now,
            total_idle_memory_mb=cluster.total_idle_memory_mb(),
            jobs_per_node=jobs_per_node,
            num_reserved=len(cluster.reserved_nodes()),
            pending_jobs=pending,
        )
        self.samples.append(sample)
        return sample

    # ------------------------------------------------------------------
    def average_idle_memory_mb(self, until: Optional[float] = None) -> float:
        """Time-averaged total idle memory over the workload lifetime."""
        total = 0.0
        count = 0
        for s in self.samples:
            if until is not None and s.time > until:
                break
            total += s.total_idle_memory_mb
            count += 1
        return total / count if count else 0.0

    def average_job_balance_skew(self, until: Optional[float] = None
                                 ) -> float:
        """Time-averaged balance skew among non-reserved workstations."""
        total = 0.0
        count = 0
        for s in self.samples:
            if until is not None and s.time > until:
                break
            total += s.job_balance_skew
            count += 1
        return total / count if count else 0.0

    def reserved_node_seconds(self) -> float:
        """Integral of the reserved-node count (reconfiguration cost).

        Integrates over the *actual* spacing between samples: each
        sample's count is held for the interval since the previous one
        (left-closed step function from t=0), so manual :meth:`sample`
        calls between periodic ticks refine the integral instead of
        each being billed a full ``sample_interval_s``.
        """
        total = 0.0
        last_time = 0.0
        for s in self.samples:
            total += s.num_reserved * (s.time - last_time)
            last_time = s.time
        return total
