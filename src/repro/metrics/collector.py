"""Periodic cluster sampling.

The paper collects the total idle memory volume and the number of
active jobs in each workstation every second (§4.1-4.2), and verifies
that the averages are insensitive to the sampling interval (we expose
the interval so the benchmark suite can repeat that check).

The 1 Hz sample is the dominant scaling cost of large-cluster runs:
most simulated seconds see *no* node change (job events are sparse
compared to the tick), yet the per-object path walks all N nodes
three times per tick.  With the columnar
:class:`~repro.cluster.state.ClusterState` attached, the collector
instead subscribes to node change notifications and recomputes the
sample components only on ticks where something actually changed —
an unchanged tick reuses the previous components, which are identical
by construction (same inputs, same arithmetic).  Changed ticks read
the state columns rather than node properties.  Balance skew is
computed once per tick into a parallel series instead of per access,
so summarize-time averaging is O(ticks) instead of O(ticks x N).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.state import FLAG_ALIVE, FLAG_RESERVED


@dataclass(frozen=True)
class ClusterSample:
    """One sampling instant."""

    time: float
    total_idle_memory_mb: float
    #: Active job counts per node; reserved (and crashed) nodes hold
    #: None so that the balance skew is computed "among all
    #: non-reserved workstations".
    jobs_per_node: Tuple[Optional[int], ...]
    num_reserved: int
    pending_jobs: int

    @property
    def job_balance_skew(self) -> float:
        """Standard deviation of active jobs among non-reserved nodes."""
        return _skew_of(self.jobs_per_node)


#: Byte-translate tables over the packed flags column: C-speed
#: classification of all N nodes at once.  ``_EXCLUDED_TABLE`` marks
#: nodes whose job count is None in the skew vector (reserved or
#: dead); ``_RESERVED_TABLE`` marks reserved nodes.
_EXCLUDED_TABLE = bytes(
    1 if (b & FLAG_RESERVED or not b & FLAG_ALIVE) else 0
    for b in range(256))
_RESERVED_TABLE = bytes(1 if b & FLAG_RESERVED else 0 for b in range(256))


def _skew_of(jobs_per_node: Tuple[Optional[int], ...]) -> float:
    """Balance skew of one counts vector (shared by the per-sample
    property and the collector's per-tick cache so both produce the
    same floats)."""
    counts = [c for c in jobs_per_node if c is not None]
    if not counts:
        return 0.0
    mean = sum(counts) / len(counts)
    return math.sqrt(sum((c - mean) ** 2 for c in counts) / len(counts))


class PolicyPendingProbe:
    """Picklable pending-queue probe: ``probe()`` returns the policy's
    current pending count.  Used instead of a lambda so a collector
    wired to a policy can cross a checkpoint boundary; forks repoint
    :attr:`policy` at the successor."""

    __slots__ = ("policy",)

    def __init__(self, policy):
        self.policy = policy

    def __call__(self) -> int:
        return self.policy.pending_count


class MetricsCollector:
    """Samples cluster state every ``sample_interval_s`` seconds."""

    def __init__(self, cluster: Cluster,
                 sample_interval_s: Optional[float] = None,
                 pending_probe=None):
        self.cluster = cluster
        self.sample_interval_s = (
            sample_interval_s if sample_interval_s is not None
            else cluster.config.sample_interval_s)
        if self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        #: Optional callable returning the current pending-queue length.
        self.pending_probe = pending_probe
        self.samples: List[ClusterSample] = []
        #: Per-sample balance skew, parallel to ``samples`` (columnar
        #: mode only): computed once at sample time so summarize-time
        #: averaging does not revisit every counts vector.
        self._skews: List[float] = []
        self._state = cluster.state
        if self._state is not None:
            # Change-driven caching: any externally visible node change
            # flags the next tick for recomputation; clean ticks reuse
            # the previous components verbatim.  The pending-queue
            # length is NOT cached — enqueueing a pending job causes
            # no node change, so it is probed fresh every tick.
            self._dirty = True
            self._cached_idle = 0.0
            self._cached_jobs: Tuple[Optional[int], ...] = ()
            self._cached_skew = 0.0
            self._cached_reserved = 0
            for node in cluster.nodes:
                node.add_change_listener(self._mark_dirty)
        self._schedule()

    def _schedule(self) -> None:
        self.cluster.sim.schedule(self.sample_interval_s, self._tick,
                                  priority=4, daemon=True)

    def _tick(self) -> None:
        self.sample()
        self._schedule()

    def _mark_dirty(self, node) -> None:
        self._dirty = True

    def sample(self) -> ClusterSample:
        """Take one sample immediately (also used by tests)."""
        if self._state is not None:
            return self._sample_columnar()
        cluster = self.cluster
        jobs_per_node = tuple(
            None if (node.reserved or not node.alive) else node.num_running
            for node in cluster.nodes)
        pending = self.pending_probe() if self.pending_probe else 0
        sample = ClusterSample(
            time=cluster.sim.now,
            total_idle_memory_mb=cluster.total_idle_memory_mb(),
            jobs_per_node=jobs_per_node,
            num_reserved=len(cluster.reserved_nodes()),
            pending_jobs=pending,
        )
        self.samples.append(sample)
        self._skews.append(sample.job_balance_skew)
        return sample

    def _sample_columnar(self) -> ClusterSample:
        """Columnar sample: recompute components from the state
        columns only when a node changed since the last sample.

        Equivalence with the per-object path is exact: columns hold
        the property values bit-for-bit (written at the same change
        instants), the column sums run in the same node order, and a
        clean tick's reused components are what recomputation would
        produce (no node changed, so no input changed).
        """
        state = self._state
        if self._dirty:
            self._dirty = False
            num_running = state.num_running
            excluded = bytes(state.flags).translate(_EXCLUDED_TABLE)
            if excluded.count(1) == 0:
                # Common case: every node alive and unreserved, so the
                # jobs vector is the running-count column verbatim.
                self._cached_jobs = tuple(num_running)
                self._cached_reserved = 0
            else:
                self._cached_jobs = tuple(
                    None if excl else num_running[node_id]
                    for node_id, excl in enumerate(excluded))
                self._cached_reserved = bytes(state.flags).translate(
                    _RESERVED_TABLE).count(1)
            self._cached_idle = sum(state.idle_memory_mb)
            self._cached_skew = _skew_of(self._cached_jobs)
        pending = self.pending_probe() if self.pending_probe else 0
        sample = ClusterSample(
            time=self.cluster.sim.now,
            total_idle_memory_mb=self._cached_idle,
            jobs_per_node=self._cached_jobs,
            num_reserved=self._cached_reserved,
            pending_jobs=pending,
        )
        self.samples.append(sample)
        self._skews.append(self._cached_skew)
        return sample

    # ------------------------------------------------------------------
    def average_idle_memory_mb(self, until: Optional[float] = None) -> float:
        """Time-averaged total idle memory over the workload lifetime."""
        total = 0.0
        count = 0
        for s in self.samples:
            if until is not None and s.time > until:
                break
            total += s.total_idle_memory_mb
            count += 1
        return total / count if count else 0.0

    def average_job_balance_skew(self, until: Optional[float] = None
                                 ) -> float:
        """Time-averaged balance skew among non-reserved workstations.

        Uses the per-tick skew series cached at sample time (same
        floats as the per-sample property); samples injected directly
        into ``samples`` (tests) fall back to the property.
        """
        total = 0.0
        count = 0
        if len(self._skews) == len(self.samples):
            for s, skew in zip(self.samples, self._skews):
                if until is not None and s.time > until:
                    break
                total += skew
                count += 1
        else:
            for s in self.samples:
                if until is not None and s.time > until:
                    break
                total += s.job_balance_skew
                count += 1
        return total / count if count else 0.0

    def reserved_node_seconds(self) -> float:
        """Integral of the reserved-node count (reconfiguration cost).

        Integrates over the *actual* spacing between samples: each
        sample's count is held for the interval since the previous one
        (left-closed step function from t=0), so manual :meth:`sample`
        calls between periodic ticks refine the integral instead of
        each being billed a full ``sample_interval_s``.
        """
        total = 0.0
        last_time = 0.0
        for s in self.samples:
            total += s.num_reserved * (s.time - last_time)
            last_time = s.time
        return total
