"""Report rendering: paper-style comparison tables.

The evaluation figures all compare G-Loadsharing against
V-Reconfiguration across the five traces of a workload group and
report percentage reductions; :func:`comparison_table` produces that
layout for any metric, and :func:`render_table` pretty-prints rows for
the benchmark harness output.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.metrics.summary import RunSummary


def percentage_reduction(baseline: float, improved: float) -> float:
    """Reduction of ``improved`` relative to ``baseline`` in percent
    (positive = improvement)."""
    if baseline == 0:
        return 0.0
    return (baseline - improved) / baseline * 100.0


def comparison_table(baseline_runs: Sequence[RunSummary],
                     improved_runs: Sequence[RunSummary],
                     metric: Callable[[RunSummary], float],
                     metric_name: str) -> List[Dict[str, object]]:
    """Rows of {trace, baseline, improved, reduction_pct} for a metric."""
    if len(baseline_runs) != len(improved_runs):
        raise ValueError("run lists must pair up")
    rows: List[Dict[str, object]] = []
    for base, better in zip(baseline_runs, improved_runs):
        if base.trace != better.trace:
            raise ValueError(
                f"trace mismatch: {base.trace} vs {better.trace}")
        base_value = metric(base)
        better_value = metric(better)
        rows.append({
            "trace": base.trace,
            "metric": metric_name,
            base.policy: base_value,
            better.policy: better_value,
            "reduction_pct": percentage_reduction(base_value, better_value),
        })
    return rows


def render_bar_chart(rows: Sequence[Dict[str, object]],
                     label_key: str, value_keys: Sequence[str],
                     width: int = 40, title: str = "") -> str:
    """ASCII bar chart: one group of bars per row, one bar per value
    key — the paper's side-by-side G-vs-V figure style, in a
    terminal."""
    values = [float(row[key]) for row in rows for key in value_keys
              if row.get(key) is not None]
    peak = max(values) if values else 1.0
    if peak <= 0:
        peak = 1.0
    label_width = max((len(str(row[label_key])) for row in rows),
                      default=5)
    key_width = max(len(k) for k in value_keys)
    lines = [title] if title else []
    for row in rows:
        for i, key in enumerate(value_keys):
            value = float(row[key])
            bar = "#" * max(1, int(round(width * value / peak)))
            label = str(row[label_key]) if i == 0 else ""
            lines.append(f"{label:>{label_width}} {key:<{key_width}} "
                         f"|{bar} {value:,.1f}")
        lines.append("")
    return "\n".join(lines).rstrip()


def render_table(rows: Sequence[Dict[str, object]],
                 columns: Sequence[str],
                 title: str = "") -> str:
    """Fixed-width text table (benchmark harness output)."""
    widths = {col: len(col) for col in columns}
    formatted: List[List[str]] = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                text = f"{value:,.1f}"
            else:
                text = str(value)
            widths[col] = max(widths[col], len(text))
            cells.append(text)
        formatted.append(cells)
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for cells in formatted:
        lines.append("  ".join(cell.rjust(widths[col])
                               for cell, col in zip(cells, columns)))
    return "\n".join(lines)
