"""Exporters: run summaries and figure results to CSV / JSON.

A downstream user comparing against this reproduction should not have
to parse printed tables.  Every result object can be exported:

* :func:`summary_to_dict` / :func:`summaries_to_json` — run summaries;
* :func:`summaries_to_csv` — flat CSV, one row per (trace, policy);
* :func:`figure_to_csv` — a reproduced figure's comparison rows,
  including the paper-reported reductions where published.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, List, Optional, Sequence, TextIO, Union

from repro.metrics.summary import RunSummary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.figures import FigureResult

SUMMARY_FIELDS = (
    "trace", "policy", "num_jobs", "makespan_s",
    "total_execution_time_s", "total_queuing_time_s",
    "average_slowdown", "average_idle_memory_mb",
    "average_job_balance_skew", "total_cpu_time_s",
    "total_paging_time_s", "total_io_time_s",
    "total_migration_time_s", "total_pending_time_s",
    "migrations", "remote_submissions", "blocking_events",
)


def summary_to_dict(summary: RunSummary,
                    include_slowdowns: bool = False) -> dict:
    """Flatten a :class:`RunSummary` into plain JSON-able types."""
    data = {field: getattr(summary, field) for field in SUMMARY_FIELDS}
    data["extra"] = dict(summary.extra)
    if include_slowdowns:
        data["slowdowns"] = list(summary.slowdowns)
    return data


def summaries_to_json(summaries: Sequence[RunSummary],
                      target: Union[str, TextIO, None] = None,
                      include_slowdowns: bool = False) -> str:
    """Serialize summaries to JSON; write to ``target`` if given."""
    payload = json.dumps(
        [summary_to_dict(s, include_slowdowns) for s in summaries],
        indent=2, sort_keys=True)
    _write(payload, target)
    return payload


def summaries_to_csv(summaries: Sequence[RunSummary],
                     target: Union[str, TextIO, None] = None) -> str:
    """Serialize summaries to CSV (extra counters are JSON-encoded)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer,
                            fieldnames=list(SUMMARY_FIELDS) + ["extra"])
    writer.writeheader()
    for summary in summaries:
        row = {field: getattr(summary, field)
               for field in SUMMARY_FIELDS}
        row["extra"] = json.dumps(summary.extra, sort_keys=True)
        writer.writerow(row)
    _write(buffer.getvalue(), target)
    return buffer.getvalue()


def figure_to_csv(figure: "FigureResult",
                  target: Union[str, TextIO, None] = None) -> str:
    """Export a reproduced figure's panel rows as CSV."""
    buffer = io.StringIO()
    writer: Optional[csv.DictWriter] = None
    for panel, rows in figure.panels.items():
        for row in rows:
            record = {"figure": figure.figure, "panel": panel}
            record.update({str(k): v for k, v in row.items()})
            if writer is None:
                writer = csv.DictWriter(buffer,
                                        fieldnames=list(record.keys()))
                writer.writeheader()
            writer.writerow(record)
    _write(buffer.getvalue(), target)
    return buffer.getvalue()


def _write(payload: str, target: Union[str, TextIO, None]) -> None:
    if target is None:
        return
    if isinstance(target, str):
        with open(target, "w") as stream:
            stream.write(payload)
    else:
        target.write(payload)


def load_summaries_json(source: Union[str, TextIO]) -> List[dict]:
    """Read back a JSON export (dicts, not RunSummary objects)."""
    if isinstance(source, str):
        with open(source) as stream:
            return json.load(stream)
    return json.load(source)
