"""Metrics: sampling, per-run summaries, and report rendering.

Implements the paper's §4 measurements:

* **average slowdown** — wall-clock execution time over dedicated CPU
  execution time, averaged over all jobs of a trace;
* **total execution time** and its §5 breakdown (CPU, paging, queuing,
  migration);
* **average idle memory volume** — total idle memory sampled every
  second over the lifetime of the workload;
* **average job balance skew** — the per-second standard deviation of
  active job counts among non-reserved workstations, averaged over the
  lifetime.
"""

from repro.metrics.collector import ClusterSample, MetricsCollector
from repro.metrics.export import (
    figure_to_csv,
    summaries_to_csv,
    summaries_to_json,
    summary_to_dict,
)
from repro.metrics.summary import RunSummary, summarize_run
from repro.metrics.report import (
    comparison_table,
    percentage_reduction,
    render_table,
)

__all__ = [
    "ClusterSample",
    "MetricsCollector",
    "RunSummary",
    "comparison_table",
    "figure_to_csv",
    "percentage_reduction",
    "render_table",
    "summaries_to_csv",
    "summaries_to_json",
    "summarize_run",
    "summary_to_dict",
]
