"""Per-run summary: everything the paper's figures report for one
(trace, policy) execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.job import Job, total_accounting
from repro.metrics.collector import MetricsCollector
from repro.scheduling.base import LoadSharingPolicy


@dataclass
class RunSummary:
    """Aggregated results of running one trace under one policy."""

    policy: str
    trace: str
    num_jobs: int
    makespan_s: float

    # Figure 1 / 3 quantities
    total_execution_time_s: float       # sum of per-job wall times
    total_queuing_time_s: float         # T_que

    # Figure 2 / 4 quantities
    average_slowdown: float
    average_idle_memory_mb: float
    average_job_balance_skew: float

    # §5 breakdown
    total_cpu_time_s: float             # T_cpu
    total_paging_time_s: float          # T_page
    total_io_time_s: float
    total_migration_time_s: float       # T_mig
    total_pending_time_s: float

    # policy activity
    migrations: int
    remote_submissions: int
    blocking_events: int
    extra: Dict[str, float] = field(default_factory=dict)
    slowdowns: List[float] = field(default_factory=list)
    #: node id -> number of reservations placed there (policies with a
    #: reservation timeline only; lets sweep consumers reason about
    #: placement — e.g. §2.3's big-memory-node prediction — without
    #: holding the live policy object, which never crosses a process
    #: boundary in parallel sweeps.
    reservation_placements: Dict[int, int] = field(default_factory=dict)

    @property
    def max_slowdown(self) -> float:
        return max(self.slowdowns) if self.slowdowns else 0.0

    def slowdown_percentile(self, q: float) -> float:
        """Percentile of per-job slowdowns (q in [0, 100])."""
        if not self.slowdowns:
            return 0.0
        ordered = sorted(self.slowdowns)
        k = min(len(ordered) - 1, max(0, int(round(q / 100.0
                                                   * (len(ordered) - 1)))))
        return ordered[k]


def summarize_run(policy: LoadSharingPolicy, jobs: List[Job],
                  collector: MetricsCollector, trace_name: str
                  ) -> RunSummary:
    """Build a :class:`RunSummary` after the simulation has drained."""
    unfinished = [job for job in jobs if not job.finished]
    if unfinished:
        raise ValueError(
            f"{len(unfinished)} jobs never finished (first: "
            f"{unfinished[0]!r}); the simulation did not drain")
    totals = total_accounting(jobs)
    placements: Dict[int, int] = {}
    for event in getattr(policy, "reservation_timeline", ()):
        if event.kind == "reserve":
            placements[event.node_id] = placements.get(event.node_id, 0) + 1
    slowdowns = [job.slowdown() for job in jobs]
    makespan = max(job.finish_time for job in jobs) if jobs else 0.0
    total_exec = sum(job.finish_time - job.submit_time for job in jobs)
    return RunSummary(
        policy=policy.name,
        trace=trace_name,
        num_jobs=len(jobs),
        makespan_s=makespan,
        total_execution_time_s=total_exec,
        total_queuing_time_s=totals.queue_s,
        average_slowdown=(sum(slowdowns) / len(slowdowns)
                          if slowdowns else 0.0),
        average_idle_memory_mb=collector.average_idle_memory_mb(
            until=makespan),
        average_job_balance_skew=collector.average_job_balance_skew(
            until=makespan),
        total_cpu_time_s=totals.cpu_s,
        total_paging_time_s=totals.page_s,
        total_io_time_s=totals.io_s,
        total_migration_time_s=totals.migration_s,
        total_pending_time_s=totals.pending_s,
        migrations=policy.stats.migrations,
        remote_submissions=policy.stats.remote_submissions,
        blocking_events=policy.stats.blocking_events,
        extra=dict(policy.stats.extra),
        slowdowns=slowdowns,
        reservation_placements=placements,
    )
