"""Unit tests for the execution tracer (paper §3.1 analog)."""

import pytest

from repro.scheduling import GLoadSharing
from repro.tracing import ExecutionTracer, lifetime_breakdown_table

from helpers import drive, job, tiny_cluster


def traced_run(jobs=None, **cluster_kwargs):
    cluster = tiny_cluster(**cluster_kwargs)
    policy = GLoadSharing(cluster)
    tracer = ExecutionTracer(cluster)
    tracer.watch_policy(policy)
    if jobs is None:
        jobs = [job(work=20.0, home=i % 4, submit=float(i))
                for i in range(5)]
    drive(policy, jobs)
    cluster.sim.run()
    return tracer, jobs, policy


class TestEventCapture:
    def test_submissions_recorded(self):
        tracer, jobs, _ = traced_run()
        submits = tracer.events_of_kind("submit")
        assert len(submits) == len(jobs)
        assert {event.job_id for event in submits} == \
            {j.job_id for j in jobs}

    def test_starts_and_finishes_recorded(self):
        tracer, jobs, _ = traced_run()
        assert len(tracer.events_of_kind("start")) == len(jobs)
        assert len(tracer.events_of_kind("finish")) == len(jobs)
        assert len(tracer.finished_jobs()) == len(jobs)

    def test_events_are_time_ordered(self):
        tracer, _, _ = traced_run()
        times = [event.time for event in tracer.events]
        assert times == sorted(times)

    def test_job_timeline_filters_by_job(self):
        tracer, jobs, _ = traced_run()
        timeline = tracer.job_timeline(jobs[0].job_id)
        assert timeline
        assert all(event.job_id == jobs[0].job_id for event in timeline)
        kinds = [event.kind for event in timeline]
        assert kinds[0] == "submit"
        assert kinds[-1] == "finish"

    def test_migration_recorded(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        policy = GLoadSharing(cluster, migration_cooldown_s=0.0,
                              min_remaining_for_migration_s=1.0)
        tracer = ExecutionTracer(cluster)
        tracer.watch_policy(policy)
        hog = job(work=300.0, demand=90.0)
        small = job(work=300.0, demand=60.0)
        cluster.nodes[0].add_job(hog)
        cluster.nodes[0].add_job(small)
        cluster.sim.run(until=200.0)
        migrations = tracer.events_of_kind("migrate")
        assert migrations
        assert "->" in migrations[0].detail

    def test_placement_delay(self):
        tracer, jobs, _ = traced_run()
        for record in tracer.records.values():
            delay = record.placement_delay_s
            assert delay is not None and delay >= 0.0

    def test_nodes_visited_tracked(self):
        tracer, jobs, _ = traced_run()
        for record in tracer.records.values():
            assert record.nodes_visited


class TestRendering:
    def test_render_timeline(self):
        tracer, jobs, _ = traced_run()
        text = tracer.render_timeline()
        assert "submit" in text
        assert "finish" in text

    def test_render_timeline_filtered_and_limited(self):
        tracer, _, _ = traced_run()
        text = tracer.render_timeline(limit=2, kinds=["finish"])
        assert text.count("finish") == 2
        assert "submit" not in text

    def test_lifetime_breakdown_table(self):
        tracer, jobs, _ = traced_run()
        table = lifetime_breakdown_table(tracer.finished_jobs())
        assert "Per-job lifetime breakdown" in table
        assert "slowdown" in table

    def test_breakdown_top_n(self):
        tracer, jobs, _ = traced_run()
        table = lifetime_breakdown_table(tracer.finished_jobs(), top=2)
        # header + separator + title + 2 rows
        assert len(table.splitlines()) == 5
