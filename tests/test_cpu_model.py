"""Unit and property tests for the CPU sharing model."""

import math

from hypothesis import given, strategies as st

from repro.cluster.cpu import progress_rates, waterfill


class TestWaterfill:
    def test_empty(self):
        assert waterfill(1.0, []) == []

    def test_single_uncapped(self):
        assert waterfill(1.0, [5.0]) == [1.0]

    def test_single_capped(self):
        assert waterfill(1.0, [0.25]) == [0.25]

    def test_equal_split(self):
        alloc = waterfill(1.0, [1.0, 1.0, 1.0, 1.0])
        assert all(math.isclose(a, 0.25) for a in alloc)

    def test_capped_consumer_returns_excess(self):
        # cap 0.1 < fair share 0.5; the other consumer gets the rest
        alloc = waterfill(1.0, [0.1, 1.0])
        assert math.isclose(alloc[0], 0.1)
        assert math.isclose(alloc[1], 0.9)

    def test_cascading_caps(self):
        alloc = waterfill(1.0, [0.05, 0.2, 1.0, 1.0])
        assert math.isclose(alloc[0], 0.05)
        assert math.isclose(alloc[1], 0.2)
        assert math.isclose(alloc[2], 0.375)
        assert math.isclose(alloc[3], 0.375)

    def test_all_caps_below_capacity(self):
        alloc = waterfill(10.0, [0.5, 0.5])
        assert alloc == [0.5, 0.5]

    def test_zero_cap_consumer_gets_nothing(self):
        alloc = waterfill(1.0, [0.0, 1.0])
        assert alloc[0] == 0.0
        assert math.isclose(alloc[1], 1.0)

    @given(
        capacity=st.floats(min_value=0.0, max_value=100.0),
        caps=st.lists(st.floats(min_value=0.0, max_value=10.0),
                      min_size=1, max_size=20),
    )
    def test_properties(self, capacity, caps):
        alloc = waterfill(capacity, caps)
        assert len(alloc) == len(caps)
        # feasibility
        for a, c in zip(alloc, caps):
            assert -1e-9 <= a <= c + 1e-9
        total = sum(alloc)
        assert total <= capacity + 1e-6
        # work conservation: either capacity exhausted or everyone capped
        if sum(caps) >= capacity:
            assert math.isclose(total, capacity, rel_tol=1e-6, abs_tol=1e-6)
        else:
            assert math.isclose(total, sum(caps), rel_tol=1e-6, abs_tol=1e-6)

    @given(
        caps=st.lists(st.floats(min_value=0.01, max_value=10.0),
                      min_size=2, max_size=10),
    )
    def test_uncapped_consumers_get_equal_share(self, caps):
        capacity = 1.0
        alloc = waterfill(capacity, caps)
        uncapped = [a for a, c in zip(alloc, caps) if a < c - 1e-9]
        if len(uncapped) >= 2:
            assert max(uncapped) - min(uncapped) < 1e-6


class TestProgressRates:
    def test_no_jobs(self):
        assert progress_rates(1.0, 0.001, []) == []

    def test_lone_job_without_stalls_runs_at_full_speed(self):
        # No context-switch tax with a single job.
        rates = progress_rates(1.0, 0.001, [0.0])
        assert rates == [1.0]

    def test_lone_stalled_job_is_capped(self):
        # 1 second of stall per cpu second -> half speed.
        rates = progress_rates(1.0, 0.001, [1.0])
        assert math.isclose(rates[0], 0.5)

    def test_two_jobs_pay_context_switch_tax(self):
        tax = 0.001
        rates = progress_rates(1.0, tax, [0.0, 0.0])
        expected = (1.0 - tax) / 2
        assert all(math.isclose(r, expected) for r in rates)

    def test_stalled_job_yields_cpu_to_others(self):
        # Job 0 stalls heavily; job 1 should pick up almost the full CPU.
        rates = progress_rates(1.0, 0.0, [9.0, 0.0])
        assert math.isclose(rates[0], 0.1)
        assert math.isclose(rates[1], 0.9)

    def test_speed_factor_scales_capacity(self):
        rates = progress_rates(2.0, 0.0, [0.0, 0.0])
        assert all(math.isclose(r, 1.0) for r in rates)

    def test_slow_node_with_stall(self):
        # speed 0.5: alone, 1 cpu-second of work takes 2s wall; with a
        # 1 s/work stall it takes 3s wall -> rate 1/3.
        rates = progress_rates(0.5, 0.0, [1.0])
        assert math.isclose(rates[0], 1.0 / 3.0)

    @given(
        stalls=st.lists(st.floats(min_value=0.0, max_value=50.0),
                        min_size=1, max_size=15),
        speed=st.floats(min_value=0.1, max_value=4.0),
    )
    def test_rates_are_feasible_and_positive(self, stalls, speed):
        tax = 0.001
        rates = progress_rates(speed, tax, stalls)
        effective_tax = tax if len(stalls) > 1 else 0.0
        assert sum(rates) <= speed * (1 - effective_tax) + 1e-6
        for rate, stall in zip(rates, stalls):
            assert rate > 0  # nobody starves under round-robin
            # per-job wall budget: cpu share + stall time <= 1s per 1s
            assert rate * (1.0 / speed + stall) <= 1.0 + 1e-6
