"""Unit tests for the §5 analytical model."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.model import (
    ExecutionTimeModel,
    ReservedQueueModel,
    gain_condition,
    unsuccessful_conditions,
    verify_against_run,
)
from repro.metrics.summary import RunSummary


def make_summary(cpu=1000.0, page=100.0, queue=500.0, migration=10.0,
                 io=0.0, slowdown=2.0):
    return RunSummary(
        policy="p", trace="t", num_jobs=10, makespan_s=1000.0,
        total_execution_time_s=cpu + page + queue + migration + io,
        total_queuing_time_s=queue, average_slowdown=slowdown,
        average_idle_memory_mb=100.0, average_job_balance_skew=1.0,
        total_cpu_time_s=cpu, total_paging_time_s=page,
        total_io_time_s=io, total_migration_time_s=migration,
        total_pending_time_s=0.0, migrations=0, remote_submissions=0,
        blocking_events=0)


class TestExecutionTimeModel:
    def test_total(self):
        model = ExecutionTimeModel(cpu_s=1.0, page_s=2.0, queue_s=3.0,
                                   migration_s=4.0)
        assert model.total_s == 10.0

    def test_from_summary_folds_io_into_page(self):
        model = ExecutionTimeModel.from_summary(
            make_summary(page=100.0, io=50.0))
        assert model.page_s == 150.0


class TestReservedQueueModel:
    def test_empty_queue(self):
        assert ReservedQueueModel([]).queuing_bound_s() == 0.0

    def test_single_job_no_wait(self):
        # Q=1: (1-1)*w = 0
        assert ReservedQueueModel([5.0]).queuing_bound_s() == 0.0

    def test_bound_formula(self):
        # Q=3: (3-1)*w1 + (3-2)*w2 + (3-3)*w3
        model = ReservedQueueModel([1.0, 2.0, 3.0])
        assert model.queuing_bound_s() == pytest.approx(2.0 + 2.0)

    def test_srpt_order_minimizes(self):
        waits = [10.0, 1.0, 5.0]
        assert (ReservedQueueModel.minimal_bound_s(waits)
                <= ReservedQueueModel(waits).queuing_bound_s())

    def test_is_minimized_ordering(self):
        assert ReservedQueueModel([1.0, 2.0, 3.0]).is_minimized_ordering()
        assert not ReservedQueueModel([3.0, 1.0]).is_minimized_ordering()

    def test_negative_waits_rejected(self):
        with pytest.raises(ValueError):
            ReservedQueueModel([-1.0])

    @given(waits=st.lists(st.floats(min_value=0.0, max_value=100.0),
                          min_size=1, max_size=10))
    def test_minimal_bound_property(self, waits):
        """Sorting ascending always gives the minimum bound (§5: the
        bound is minimized when w_k1 < w_k2 < ...)."""
        assert (ReservedQueueModel.minimal_bound_s(waits)
                <= ReservedQueueModel(waits).queuing_bound_s() + 1e-9)


class TestGainCondition:
    def test_positive_gain(self):
        base = ExecutionTimeModel(cpu_s=100.0, page_s=50.0,
                                  queue_s=200.0, migration_s=5.0)
        gain = gain_condition(base,
                              reconfigured_nonreserved_queue_s=100.0,
                              reserved_queue_bounds_s=[20.0])
        assert gain == pytest.approx(80.0)

    def test_negative_gain_when_reserved_queues_dominate(self):
        base = ExecutionTimeModel(cpu_s=100.0, page_s=0.0,
                                  queue_s=50.0, migration_s=0.0)
        gain = gain_condition(base,
                              reconfigured_nonreserved_queue_s=45.0,
                              reserved_queue_bounds_s=[30.0])
        assert gain < 0


class TestVerifyAgainstRun:
    def test_consistent_pair(self):
        base = make_summary(cpu=1000.0, page=200.0, queue=600.0)
        reco = make_summary(cpu=1000.0, page=100.0, queue=400.0)
        check = verify_against_run(base, reco)
        assert check.consistent
        assert check.paging_reduced
        assert check.measured_gain_s == pytest.approx(300.0)

    def test_cpu_divergence_flagged(self):
        base = make_summary(cpu=1000.0)
        reco = make_summary(cpu=1100.0)
        check = verify_against_run(base, reco, cpu_tolerance=0.01)
        assert not check.consistent
        assert check.cpu_invariant_error == pytest.approx(0.1)

    def test_paging_increase_reported(self):
        base = make_summary(page=100.0)
        reco = make_summary(page=150.0)
        check = verify_against_run(base, reco)
        assert not check.paging_reduced


class TestUnsuccessfulConditions:
    def test_light_load_detected(self):
        summary = make_summary(slowdown=1.1, page=0.0)
        reasons = unsuccessful_conditions(summary)
        assert any("lightly loaded" in reason for reason in reasons)

    def test_heavy_paging_not_flagged(self):
        summary = make_summary(slowdown=5.0, page=500.0)
        assert unsuccessful_conditions(summary) == []
