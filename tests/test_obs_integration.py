"""Integration tests: the obs layer observing real runs.

Covers the acceptance path end to end: an instrumented
V-Reconfiguration run produces a Perfetto-loadable trace with
reservation spans and per-node migration events, the metrics snapshot
reaches ``RunSummary.extra`` (and therefore the exporters and the
parallel-sweep process boundary), and instrumentation never changes
scheduling behavior.
"""

import dataclasses
import io
import json

import pytest

from repro.experiments.parallel import (
    RunSpec,
    disable_progress,
    enable_progress,
    pop_sweep_timings,
    render_sweep_timings,
    run_specs,
    set_obs_default,
)
from repro.experiments.runner import run_experiment
from repro.experiments.scenario import run_blocking_scenario
from repro.obs.session import EXTRA_PREFIX, TRACE_CHANNELS, ObsSession
from repro.tracing.tracer import ExecutionTracer
from repro.workload.programs import WorkloadGroup

from helpers import job, tiny_cluster


@pytest.fixture(scope="module")
def scenario_obs():
    """One instrumented scenario run shared by the read-only tests."""
    obs = ObsSession(record_events=True, run_label="scenario-test")
    result = run_blocking_scenario("v-reconfiguration", obs=obs)
    return obs, result


class TestObsSession:
    def test_attach_is_single_use(self):
        obs = ObsSession()
        obs.attach(tiny_cluster())
        with pytest.raises(ValueError, match="single-use"):
            obs.attach(tiny_cluster())

    def test_sim_events_excluded_from_trace_channels(self):
        assert "sim.event" not in TRACE_CHANNELS

    def test_record_sim_events_opt_in(self):
        cluster = tiny_cluster()
        obs = ObsSession(record_events=False, record_sim_events=True)
        obs.attach(cluster)
        cluster.nodes[0].add_job(job(work=5.0, demand=10.0))
        cluster.sim.run()
        snapshot = obs.finalize()
        assert snapshot["sim_events_observed"] == \
            snapshot["sim_events_executed"]
        assert snapshot["sim_events_observed"] > 0

    def test_phase_records_wall_time(self):
        obs = ObsSession()
        with obs.phase("demo"):
            pass
        assert obs.finalize()["phase_demo_wall_s"] >= 0.0

    def test_finalize_merges_into_extra(self, scenario_obs):
        _, result = scenario_obs
        extra = result.summary.extra
        obs_keys = [k for k in extra if k.startswith(EXTRA_PREFIX)]
        assert obs_keys
        assert extra["obs.reservation_reserve"] >= 1
        assert extra["obs.migrations"] >= 1
        assert extra["obs.sim_events_executed"] == \
            result.cluster.sim.event_count
        json.dumps(extra)  # exporter-safe

    def test_scenario_metrics(self, scenario_obs):
        obs, _ = scenario_obs
        snapshot = obs.finalize()
        assert snapshot["blocking_detections"] >= 1
        assert snapshot["thrashing_transitions"] >= 2
        assert snapshot["loadinfo_exchanges"] >= 1
        assert snapshot["migration_mb"] > 0
        assert snapshot["reservation_lifetime_s_count"] >= 1
        assert snapshot["placements_local"] > 0


class TestPerfettoTrace:
    def test_reservation_spans_present(self, scenario_obs):
        obs, _ = scenario_obs
        buffer = io.StringIO()
        document = obs.write_trace(buffer)
        assert json.loads(buffer.getvalue()) == document
        spans = [e for e in document["traceEvents"]
                 if e.get("ph") == "X"
                 and e["name"].startswith("reservation")]
        assert len(spans) >= 1
        assert all(e["dur"] >= 0 for e in spans)

    def test_migration_events_land_on_node_tracks(self, scenario_obs):
        obs, _ = scenario_obs
        document = obs.write_trace(io.StringIO())
        outs = [e for e in document["traceEvents"]
                if e["name"].startswith("migrate-out")]
        arrivals = [e for e in document["traceEvents"]
                    if e["name"].startswith("migrate-in")]
        assert outs and arrivals
        for event in outs:
            assert event["pid"] == 1
            assert event["tid"] == event["args"]["source"]
        for event in arrivals:
            assert event["tid"] == event["args"]["dest"]

    def test_jsonl_log_round_trips(self, scenario_obs):
        obs, _ = scenario_obs
        buffer = io.StringIO()
        count = obs.write_log(buffer)
        records = [json.loads(line)
                   for line in buffer.getvalue().splitlines()]
        assert len(records) == count == len(obs.events)
        channels = {record["channel"] for record in records}
        assert "reconfig.reservation" in channels
        assert "cluster.migration" in channels


class TestDeterminism:
    def test_obs_does_not_change_scheduling(self):
        plain = run_experiment(WorkloadGroup.SPEC, 1, seed=0, scale=0.1,
                               policy="v-reconfiguration")
        obs = ObsSession(record_events=False)
        instrumented = run_experiment(WorkloadGroup.SPEC, 1, seed=0,
                                      scale=0.1,
                                      policy="v-reconfiguration", obs=obs)
        stripped = dataclasses.replace(
            instrumented.summary,
            extra={k: v for k, v in instrumented.summary.extra.items()
                   if not k.startswith(EXTRA_PREFIX)})
        assert stripped == plain.summary


class TestSweepTelemetry:
    SPEC = dict(group=WorkloadGroup.SPEC, trace_index=1, seed=0, scale=0.1)

    def test_run_spec_obs_flag(self):
        pop_sweep_timings()
        summaries = run_specs([RunSpec(obs=True, **self.SPEC)], jobs=1)
        assert any(k.startswith(EXTRA_PREFIX)
                   for k in summaries[0].extra)
        timings = pop_sweep_timings()
        assert len(timings) == 1
        assert timings[0].events > 0
        assert timings[0].wall_s > 0
        assert timings[0].events_per_s > 0

    def test_obs_default_covers_parallel_workers(self):
        pop_sweep_timings()
        set_obs_default(True)
        try:
            specs = [RunSpec(policy=p, **self.SPEC)
                     for p in ("local", "g-loadsharing")]
            summaries = run_specs(specs, jobs=2)
        finally:
            set_obs_default(False)
        for summary in summaries:
            assert any(k.startswith(EXTRA_PREFIX) for k in summary.extra)
        assert len(pop_sweep_timings()) == 2

    def test_timings_preserve_submission_order(self):
        pop_sweep_timings()
        specs = [RunSpec(label=f"run-{i}", **self.SPEC) for i in range(3)]
        run_specs(specs, jobs=2)
        assert [t.label for t in pop_sweep_timings()] == \
            ["run-0", "run-1", "run-2"]

    def test_progress_line(self):
        stream = io.StringIO()
        enable_progress(stream)
        try:
            run_specs([RunSpec(label="p", **self.SPEC)] * 2, jobs=1)
        finally:
            disable_progress()
        text = stream.getvalue()
        assert "[1/2]" in text and "[2/2]" in text
        assert text.endswith("\n")  # final tick closes the line

    def test_render_sweep_timings_table(self):
        pop_sweep_timings()
        run_specs([RunSpec(label="timed-run", **self.SPEC)], jobs=1,
                  progress=False)
        table = render_sweep_timings(pop_sweep_timings())
        assert "timed-run" in table
        assert "TOTAL" in table
        assert "ev/s" in table


class TestTracerDecisions:
    """Satellite: reconfiguration *non*-events surface in the tracer."""

    def _vpolicy(self, cluster):
        from repro.core.reconfiguration import VReconfiguration

        return VReconfiguration(cluster, blocking_persistence=1,
                                reservation_backoff_s=10.0,
                                migration_cooldown_s=0.0,
                                min_remaining_for_migration_s=1.0)

    def test_activation_skipped_recorded(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0,
                               cpu_threshold=3)
        policy = self._vpolicy(cluster)
        tracer = ExecutionTracer(cluster)
        tracer.watch_policy(policy)
        for node_id in range(2):
            cluster.nodes[node_id].add_job(job(work=300.0, demand=60.0))
            cluster.nodes[node_id].add_job(job(work=300.0, demand=60.0))
        cluster.sim.run(until=20.0)
        skipped = tracer.events_of_kind("activation-skipped")
        assert len(skipped) >= 1
        assert skipped[0].node_id is not None
        assert "avg-user=" in skipped[0].detail
        assert len(skipped) == policy.stats.extra["activation_skipped"]

    def test_backoff_cancel_recorded(self):
        cluster = tiny_cluster(num_nodes=3, memory_mb=100.0)
        policy = self._vpolicy(cluster)
        tracer = ExecutionTracer(cluster)
        tracer.watch_policy(policy)
        # Reserving an idle node completes the reserving period at
        # once; with no blocked victim anywhere the policy adaptively
        # cancels with backoff — the path under test.
        reservation = policy.reservations.reserve(cluster.nodes[2],
                                                  needed_mb=50.0)
        cancels = tracer.events_of_kind("backoff-cancel")
        assert len(cancels) == 1
        assert cancels[0].node_id == 2
        assert f"reservation={reservation.reservation_id}" in \
            cancels[0].detail
        assert policy.stats.extra["backoff_cancellations"] == 1


class TestCli:
    def test_runner_cli_obs_exports(self, tmp_path, capsys):
        from repro.experiments.runner import main

        trace_out = str(tmp_path / "run.trace.json")
        metrics_out = str(tmp_path / "run.metrics.json")
        csv_out = str(tmp_path / "run.csv")
        code = main(["--trace", "1", "--scale", "0.1",
                     "--policy", "v-reconfiguration",
                     "--trace-out", trace_out,
                     "--obs-metrics", metrics_out,
                     "--export-csv", csv_out])
        assert code == 0
        out = capsys.readouterr().out
        assert "obs:" in out
        with open(trace_out) as stream:
            document = json.load(stream)
        assert document["traceEvents"]
        with open(metrics_out) as stream:
            snapshot = json.load(stream)
        assert snapshot["sim_events_executed"] > 0
        with open(csv_out) as stream:
            header = stream.readline()
        assert header.startswith("trace,policy")

    def test_experiments_cli_scenario_trace(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        trace_out = str(tmp_path / "scenario.trace.json")
        code = main(["scenario", "--trace-out", trace_out])
        assert code == 0
        assert "[wrote Perfetto trace" in capsys.readouterr().out
        with open(trace_out) as stream:
            document = json.load(stream)
        spans = [e for e in document["traceEvents"]
                 if e.get("ph") == "X"
                 and e["name"].startswith("reservation")]
        assert spans  # the acceptance criterion's reservation spans

    def test_experiments_cli_rejects_orphan_trace_out(self, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["table1", "--trace-out", "/tmp/nope.json"])

    def test_experiments_cli_obs_sweep_prints_timing_table(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["figure3", "--scale", "0.06", "--obs"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep timing" in out
        assert "TOTAL" in out
        disable_progress()
        set_obs_default(False)
