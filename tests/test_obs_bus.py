"""Unit tests for the obs layer: event bus, metrics, exporters."""

import io
import json

import pytest

from repro.obs.bus import CHANNELS, NULL_CHANNEL, Channel, EventBus, ObsEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace_export import chrome_trace, write_chrome_trace, write_jsonl


class TestChannel:
    def test_disabled_until_subscribed(self):
        channel = Channel("test")
        assert not channel.enabled
        seen = []
        channel.subscribe(seen.append)
        assert channel.enabled
        channel.unsubscribe(seen.append)
        assert not channel.enabled

    def test_emit_delivers_structured_event(self):
        channel = Channel("test")
        seen = []
        channel.subscribe(seen.append)
        channel.emit(12.5, "place", job=7, node=3)
        assert seen == [ObsEvent("test", 12.5, "place",
                                 {"job": 7, "node": 3})]

    def test_emit_without_subscribers_is_noop(self):
        channel = Channel("test")
        channel.emit(0.0, "anything")  # must not raise

    def test_null_channel_is_shared_and_disabled(self):
        assert not NULL_CHANNEL.enabled

    def test_multiple_subscribers_all_receive(self):
        channel = Channel("test")
        a, b = [], []
        channel.subscribe(a.append)
        channel.subscribe(b.append)
        channel.emit(1.0, "x")
        assert len(a) == len(b) == 1
        channel.unsubscribe(a.append)
        assert channel.enabled  # b is still attached


class TestEventBus:
    def test_known_channels(self):
        bus = EventBus()
        for name in CHANNELS:
            assert bus.channel(name).name == name

    def test_unknown_channel_raises(self):
        bus = EventBus()
        with pytest.raises(KeyError, match="unknown obs channel"):
            bus.channel("no.such.channel")

    def test_extra_channels(self):
        bus = EventBus(extra_channels=("custom.stream",))
        assert not bus.channel("custom.stream").enabled

    def test_subscribe_many_and_unsubscribe_all(self):
        bus = EventBus()
        seen = []
        bus.subscribe_many(("cluster.placement", "cluster.migration"),
                           seen.append)
        bus.channel("cluster.placement").emit(0.0, "local")
        bus.channel("cluster.migration").emit(0.0, "migrate")
        bus.channel("memory.fault").emit(0.0, "thrash-on")  # not subscribed
        assert [e.channel for e in seen] == ["cluster.placement",
                                             "cluster.migration"]
        bus.unsubscribe_all(seen.append)
        assert all(not ch.enabled for ch in bus.channels())

    def test_subscribe_many_none_means_all(self):
        bus = EventBus()
        bus.subscribe_many(None, lambda event: None)
        assert all(ch.enabled for ch in bus.channels())

    def test_buses_are_independent(self):
        first, second = EventBus(), EventBus()
        first.subscribe("cluster.placement", lambda event: None)
        assert not second.channel("cluster.placement").enabled


class TestObsEvent:
    def test_to_jsonable_flattens(self):
        event = ObsEvent("cluster.migration", 3.0, "migrate",
                         {"job": 1, "image_mb": 40.0})
        record = event.to_jsonable()
        assert record == {"t": 3.0, "channel": "cluster.migration",
                          "kind": "migrate", "job": 1, "image_mb": 40.0}
        json.dumps(record)


class TestMetricsRegistry:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.counter("migrations").inc()
        registry.counter("migrations").inc(2.0)
        assert registry.snapshot() == {"migrations": 3.0}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            MetricsRegistry().counter("c").inc(-1.0)

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(4)
        registry.gauge("depth").set(2)
        assert registry.snapshot() == {"depth": 2.0}

    def test_histogram_snapshot(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lifetime_s")
        for value in (10.0, 30.0, 20.0):
            hist.observe(value)
        snapshot = registry.snapshot()
        assert snapshot["lifetime_s_count"] == 3.0
        assert snapshot["lifetime_s_sum"] == 60.0
        assert snapshot["lifetime_s_min"] == 10.0
        assert snapshot["lifetime_s_max"] == 30.0
        assert snapshot["lifetime_s_avg"] == 20.0

    def test_empty_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.histogram("unused")
        assert registry.snapshot() == {"unused_count": 0.0}

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        assert list(registry.snapshot()) == ["alpha", "zeta"]


def _events():
    return [
        ObsEvent("cluster.placement", 1.0, "local", {"job": 5, "node": 2}),
        ObsEvent("reconfig.reservation", 2.0, "reserve",
                 {"node": 3, "reservation": 0, "needed_mb": 100.0,
                  "mode": "first-fit", "job": None}),
        ObsEvent("cluster.migration", 4.0, "migrate",
                 {"job": 5, "source": 2, "dest": 3, "image_mb": 100.0,
                  "delay_s": 2.0, "dedicated": True}),
        ObsEvent("reconfig.reservation", 9.0, "release",
                 {"node": 3, "reservation": 0, "needed_mb": 100.0,
                  "mode": "first-fit", "job": None}),
        ObsEvent("reconfig.reservation", 10.0, "reserve",
                 {"node": 1, "reservation": 1, "needed_mb": 50.0,
                  "mode": "first-fit", "job": None}),
    ]


class TestChromeTrace:
    def test_reservation_span_pairs_reserve_and_release(self):
        document = chrome_trace(_events(), run_label="unit")
        spans = [e for e in document["traceEvents"]
                 if e.get("ph") == "X" and "reservation r0" in e["name"]]
        assert len(spans) == 1
        assert spans[0]["ts"] == pytest.approx(2.0e6)
        assert spans[0]["dur"] == pytest.approx(7.0e6)
        assert spans[0]["tid"] == 3

    def test_open_reservation_closed_at_end(self):
        spans = [e for e in chrome_trace(_events())["traceEvents"]
                 if e.get("ph") == "X" and "reservation r1" in e["name"]]
        assert len(spans) == 1
        assert "(open)" in spans[0]["name"]
        assert spans[0]["dur"] == pytest.approx(0.0)  # end_time == 10.0

    def test_migration_renders_three_events(self):
        events = [e for e in chrome_trace(_events())["traceEvents"]
                  if "migrate" in e["name"]]
        phases = sorted(e["ph"] for e in events)
        assert phases == ["X", "i", "i"]
        span = next(e for e in events if e["ph"] == "X")
        assert span["pid"] == 2  # network track
        out = next(e for e in events if e["name"].startswith("migrate-out"))
        arrival = next(e for e in events
                       if e["name"].startswith("migrate-in"))
        assert out["tid"] == 2 and arrival["tid"] == 3
        assert arrival["ts"] - out["ts"] == pytest.approx(2.0e6)

    def test_node_tracks_are_named(self):
        document = chrome_trace(_events(), run_label="unit")
        thread_names = {e["tid"]: e["args"]["name"]
                        for e in document["traceEvents"]
                        if e.get("ph") == "M"
                        and e["name"] == "thread_name" and e["pid"] == 1}
        assert thread_names[2] == "node 2"
        assert thread_names[3] == "node 3"

    def test_events_sorted_by_timestamp(self):
        stamps = [e["ts"] for e in chrome_trace(_events())["traceEvents"]
                  if "ts" in e]
        assert stamps == sorted(stamps)

    def test_write_to_path(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(_events(), path, run_label="unit")
        with open(path) as stream:
            document = json.load(stream)
        assert document["otherData"]["run"] == "unit"


class TestJsonl:
    def test_round_trip(self):
        buffer = io.StringIO()
        count = write_jsonl(_events(), buffer)
        lines = buffer.getvalue().splitlines()
        assert count == len(lines) == len(_events())
        first = json.loads(lines[0])
        assert first["channel"] == "cluster.placement"
        assert first["t"] == 1.0

    def test_empty_stream(self):
        buffer = io.StringIO()
        assert write_jsonl([], buffer) == 0
        assert buffer.getvalue() == ""
