"""Unit tests for the SRPT oracle reference policy."""

import pytest

from repro.scheduling import GLoadSharing, SrptOracle

from helpers import drive, job, tiny_cluster


def run_queueing_workload(policy_class):
    """One node, one slot: four jobs with very different lengths all
    pending behind the first — the classic SRPT separation case."""
    cluster = tiny_cluster(num_nodes=1, cpu_threshold=1)
    policy = policy_class(cluster)
    lengths = [100.0, 5.0, 50.0, 10.0]
    jobs = [job(work=w, home=0, submit=0.1 * i)
            for i, w in enumerate(lengths)]
    drive(policy, jobs)
    cluster.sim.run()
    return jobs


def mean_slowdown(jobs):
    return sum(j.slowdown() for j in jobs) / len(jobs)


class TestSrptOracle:
    def test_short_jobs_overtake_long_pending_jobs(self):
        jobs = run_queueing_workload(SrptOracle)
        by_work = sorted(jobs[1:], key=lambda j: j.cpu_work_s)
        finishes = [j.finish_time for j in by_work]
        # among the pending jobs, shorter work finishes earlier
        assert finishes == sorted(finishes)

    def test_beats_fifo_on_mean_slowdown(self):
        """Schrage's optimality ([8]): SRPT minimizes mean response
        time, so the oracle cannot lose to the FIFO pending queue."""
        fifo = mean_slowdown(run_queueing_workload(GLoadSharing))
        srpt = mean_slowdown(run_queueing_workload(SrptOracle))
        assert srpt <= fifo + 1e-9
        assert srpt < fifo  # strictly better on this workload

    def test_fifo_order_differs(self):
        fifo_jobs = run_queueing_workload(GLoadSharing)
        srpt_jobs = run_queueing_workload(SrptOracle)
        fifo_order = sorted(range(4),
                            key=lambda i: fifo_jobs[i].finish_time)
        srpt_order = sorted(range(4),
                            key=lambda i: srpt_jobs[i].finish_time)
        assert fifo_order != srpt_order

    def test_all_jobs_finish(self):
        jobs = run_queueing_workload(SrptOracle)
        assert all(j.finished for j in jobs)
