"""Unit tests for the lifetime analysis (paper's [5] foundation)."""

import random

import pytest

from repro.analysis.lifetimes import (
    analyze_lifetimes,
    doubling_survival,
    expected_remaining_life,
    survival_fraction,
)


class TestSurvival:
    def test_survival_fraction(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert survival_fraction(sample, 0.0) == 1.0
        assert survival_fraction(sample, 2.5) == 0.5
        assert survival_fraction(sample, 10.0) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            survival_fraction([], 1.0)
        with pytest.raises(ValueError):
            analyze_lifetimes([])


class TestDoublingSurvival:
    def test_pareto_sample_is_heavy_tailed(self):
        """A Pareto(1) sample has P(L>2t|L>t) = 0.5 — the [5] law."""
        rng = random.Random(1)
        sample = [1.0 / max(1e-6, rng.random()) for _ in range(5000)]
        value = doubling_survival(sample)
        assert value == pytest.approx(0.5, abs=0.1)

    def test_deterministic_sample_is_light_tailed(self):
        sample = [10.0] * 1000
        assert doubling_survival(sample) < 0.1

    def test_exponential_between(self):
        rng = random.Random(2)
        sample = [rng.expovariate(1.0) for _ in range(5000)]
        value = doubling_survival(sample)
        assert 0.0 < value < 0.5

    def test_stats_flags(self):
        rng = random.Random(3)
        pareto = [1.0 / max(1e-6, rng.random()) for _ in range(3000)]
        assert analyze_lifetimes(pareto).heavy_tailed
        assert not analyze_lifetimes([5.0] * 100).heavy_tailed


class TestExpectedRemainingLife:
    def test_c_half_predicts_age(self):
        """[5]: a job of age t is expected to run ~t more."""
        assert expected_remaining_life(100.0, 0.5) == pytest.approx(100.0)

    def test_light_tail_predicts_less(self):
        # c = 0.25 -> a = 2 -> remaining = t
        assert expected_remaining_life(100.0, 0.25) == pytest.approx(100.0)
        # c = 0.125 -> a = 3 -> remaining = t/2
        assert expected_remaining_life(100.0, 0.125) == pytest.approx(50.0)

    def test_monotone_in_age(self):
        values = [expected_remaining_life(t, 0.4) for t in (1, 10, 100)]
        assert values == sorted(values)

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            expected_remaining_life(-1.0)


class TestOnWorkloads:
    def test_generated_traces_are_lifetime_diverse(self):
        """Our reconstructed workloads span two orders of magnitude in
        lifetime, like the paper's tables."""
        from repro.workload.generator import build_trace
        from repro.workload.programs import WorkloadGroup
        trace = build_trace(WorkloadGroup.SPEC, 3)
        stats = analyze_lifetimes([j.lifetime_s for j in trace.jobs])
        assert stats.p90_s < 2619.0
        assert stats.mean_s > stats.median_s  # right-skewed
