"""Prometheus text-exposition conformance for ``write_prom``.

Checks the guarantees the exporter documents: HELP/TYPE exactly once
per family and before that family's first sample, label escaping,
name sanitization (including collision handling), and the single
trailing newline scrapers expect."""

import re
from io import StringIO

import pytest

from repro.obs.metrics import MetricsRegistry, _prom_escape, _prom_name

SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*="          # optional label set
    r'"(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" -?[0-9].*$")


def render(registry, **kwargs):
    out = StringIO()
    samples = registry.write_prom(out, **kwargs)
    return out.getvalue(), samples


def populated_registry():
    registry = MetricsRegistry()
    registry.counter("migrations").inc(3)
    registry.gauge("pending_jobs").set(7.5)
    hist = registry.histogram("migration_delay_s")
    hist.observe(1.0)
    hist.observe(3.0)
    return registry


class TestExposition:
    def test_every_line_is_comment_or_valid_sample(self):
        payload, _ = render(populated_registry(),
                            labels={"run": "conformance"})
        for line in payload.splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][\w:]* .+$",
                                line), line
            else:
                assert SAMPLE_RE.match(line), line

    def test_help_and_type_once_per_family_before_samples(self):
        payload, _ = render(populated_registry())
        seen_families = []
        sampled_families = set()
        for line in payload.splitlines():
            if line.startswith("# HELP "):
                family = line.split()[2]
                assert family not in seen_families, f"duplicate {family}"
                assert family not in sampled_families, \
                    f"{family} header after its samples"
                seen_families.append(family)
            elif not line.startswith("#"):
                sampled_families.add(
                    line.split("{")[0].split(" ")[0]
                    .rsplit("_count", 1)[0].rsplit("_sum", 1)[0])
        # one family per instrument plus min/max/avg gauge families
        assert "repro_migrations" in seen_families
        assert "repro_migration_delay_s" in seen_families
        assert "repro_migration_delay_s_max" in seen_families

    def test_histogram_renders_as_summary_family(self):
        payload, samples = render(populated_registry())
        assert "# TYPE repro_migration_delay_s summary" in payload
        assert "repro_migration_delay_s_count 2" in payload
        assert "repro_migration_delay_s_sum 4" in payload
        assert "repro_migration_delay_s_avg 2" in payload
        # counter + gauge + count/sum/min/max/avg
        assert samples == 7

    def test_single_trailing_newline(self):
        payload, _ = render(populated_registry())
        assert payload.endswith("\n")
        assert not payload.endswith("\n\n")

    def test_empty_registry_is_empty_payload(self):
        payload, samples = render(MetricsRegistry())
        assert payload == ""
        assert samples == 0

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        payload, _ = render(
            registry, labels={"trace": 'quo"te\\back\nslash'})
        assert r'trace="quo\"te\\back\nslash"' in payload
        assert SAMPLE_RE.match(
            [line for line in payload.splitlines()
             if not line.startswith("#")][0])

    def test_labels_sorted_and_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        payload, _ = render(registry, labels={"b-key": "2", "a": "1"})
        assert '{a="1",b_key="2"}' in payload

    def test_name_sanitization_collision_keeps_one_header(self):
        registry = MetricsRegistry()
        registry.counter("odd.name").inc()
        registry.counter("odd-name").inc(2)
        payload, samples = render(registry)
        assert payload.count("# TYPE repro_odd_name counter") == 1
        assert payload.count("# HELP repro_odd_name ") == 1
        assert samples == 2  # both samples still exported

    def test_leading_digit_names_are_prefixed(self):
        assert _prom_name("9lives") == "_9lives"
        registry = MetricsRegistry()
        registry.counter("9lives").inc()
        payload, _ = render(registry)
        assert "repro__9lives 1" in payload

    def test_escape_helper_round_trip(self):
        raw = 'a"b\\c\nd'
        escaped = _prom_escape(raw)
        assert escaped == r'a\"b\\c\nd'

    def test_namespace_override(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(1.0)
        payload, _ = render(registry, namespace="twin")
        assert "twin_depth 1" in payload
        assert "repro_" not in payload

    def test_file_target(self, tmp_path):
        target = tmp_path / "metrics.prom"
        registry = populated_registry()
        samples = registry.write_prom(str(target))
        text = target.read_text()
        assert samples == 7
        assert text.endswith("\n")
        assert "# TYPE repro_migrations counter" in text
