"""Unit tests for the job and memory-profile models."""

import pytest

from repro.cluster.job import (
    Job,
    JobAccounting,
    JobState,
    MemoryProfile,
    Phase,
    total_accounting,
)


class TestMemoryProfile:
    def test_constant_profile(self):
        profile = MemoryProfile.constant(100.0)
        assert profile.demand_at(0.0) == 100.0
        assert profile.demand_at(1e9) == 100.0
        assert profile.peak_demand_mb == 100.0
        assert profile.next_boundary(0.0) is None

    def test_phased_profile(self):
        profile = MemoryProfile.from_pairs([(0.0, 10.0), (5.0, 50.0),
                                            (20.0, 30.0)])
        assert profile.demand_at(0.0) == 10.0
        assert profile.demand_at(4.9) == 10.0
        assert profile.demand_at(5.0) == 50.0
        assert profile.demand_at(19.0) == 50.0
        assert profile.demand_at(25.0) == 30.0
        assert profile.peak_demand_mb == 50.0

    def test_next_boundary_progression(self):
        profile = MemoryProfile.from_pairs([(0.0, 10.0), (5.0, 50.0),
                                            (20.0, 30.0)])
        assert profile.next_boundary(0.0) == 5.0
        assert profile.next_boundary(5.0) == 20.0
        assert profile.next_boundary(20.0) is None

    def test_boundary_tolerates_float_error(self):
        profile = MemoryProfile.from_pairs([(0.0, 10.0), (5.0, 50.0)])
        # progress epsilon below the boundary counts as having crossed it
        assert profile.demand_at(5.0 - 1e-12) == 50.0
        assert profile.next_boundary(5.0 - 1e-12) is None

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            MemoryProfile([])

    def test_unsorted_phases_rejected(self):
        with pytest.raises(ValueError):
            MemoryProfile([Phase(0.0, 1.0), Phase(5.0, 2.0), Phase(3.0, 1.0)])

    def test_duplicate_starts_rejected(self):
        with pytest.raises(ValueError):
            MemoryProfile([Phase(0.0, 1.0), Phase(0.0, 2.0)])

    def test_profile_must_start_at_zero(self):
        with pytest.raises(ValueError):
            MemoryProfile([Phase(1.0, 1.0)])

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            Phase(-1.0, 5.0)
        with pytest.raises(ValueError):
            Phase(0.0, -5.0)


class TestJob:
    def make_job(self, **kwargs):
        defaults = dict(program="gzip", cpu_work_s=100.0,
                        memory=MemoryProfile.constant(50.0))
        defaults.update(kwargs)
        return Job(**defaults)

    def test_initial_state(self):
        job = self.make_job()
        assert job.state is JobState.PENDING
        assert job.remaining_work_s == 100.0
        assert not job.finished
        assert job.current_demand_mb == 50.0
        assert job.peak_demand_mb == 50.0

    def test_job_ids_are_unique(self):
        a, b = self.make_job(), self.make_job()
        assert a.job_id != b.job_id

    def test_progress_tracks_demand(self):
        profile = MemoryProfile.from_pairs([(0.0, 10.0), (50.0, 90.0)])
        job = self.make_job(memory=profile)
        assert job.current_demand_mb == 10.0
        job.progress_s = 60.0
        assert job.current_demand_mb == 90.0
        assert job.remaining_work_s == 40.0

    def test_slowdown(self):
        job = self.make_job(submit_time=10.0)
        job.finish_time = 310.0
        assert job.slowdown() == 3.0

    def test_slowdown_before_finish_raises(self):
        job = self.make_job()
        with pytest.raises(ValueError):
            job.slowdown()

    def test_invalid_work_rejected(self):
        with pytest.raises(ValueError):
            self.make_job(cpu_work_s=0.0)

    def test_negative_io_stall_rejected(self):
        with pytest.raises(ValueError):
            self.make_job(io_stall_per_cpu_s=-0.1)


class TestAccounting:
    def test_wall_sums_components(self):
        acct = JobAccounting(cpu_s=10.0, page_s=2.0, io_s=1.0,
                             queue_s=5.0, migration_s=0.5)
        assert acct.wall_s == pytest.approx(18.5)

    def test_total_accounting_aggregates(self):
        jobs = []
        for i in range(3):
            job = Job(program="p", cpu_work_s=10.0,
                      memory=MemoryProfile.constant(1.0))
            job.acct.cpu_s = 10.0
            job.acct.queue_s = float(i)
            jobs.append(job)
        total = total_accounting(jobs)
        assert total.cpu_s == pytest.approx(30.0)
        assert total.queue_s == pytest.approx(3.0)
