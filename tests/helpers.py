"""Shared test fixtures: tiny clusters and jobs with known behaviour."""

from repro.cluster import Cluster, ClusterConfig, WorkstationSpec
from repro.cluster.job import Job, MemoryProfile


def tiny_config(num_nodes=4, memory_mb=100.0, cpu_threshold=3,
                **kwargs) -> ClusterConfig:
    defaults = dict(
        num_nodes=num_nodes,
        spec=WorkstationSpec(memory_mb=memory_mb, swap_mb=memory_mb),
        kernel_reserved_mb=0.0,
        load_exchange_interval_s=0.0,   # fresh load info for determinism
        monitor_interval_s=0.5,
        cpu_threshold=cpu_threshold,
    )
    defaults.update(kwargs)
    return ClusterConfig(**defaults)


def tiny_cluster(**kwargs) -> Cluster:
    return Cluster(tiny_config(**kwargs))


def job(work=50.0, demand=30.0, home=0, submit=0.0, **kwargs) -> Job:
    return Job(program=kwargs.pop("program", "t"), cpu_work_s=work,
               memory=MemoryProfile.constant(demand),
               home_node=home, submit_time=submit, **kwargs)


def drive(policy, jobs):
    """Schedule submissions for ``jobs`` through ``policy``."""
    sim = policy.cluster.sim
    for j in jobs:
        sim.schedule_at(j.submit_time, lambda j=j: policy.submit(j))
