"""Live monitoring HTTP server: endpoint payloads, health statuses,
paced driving, and agreement between ``/snapshot.json`` and the run
summary."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.experiments.scenario import run_blocking_scenario
from repro.obs.live import SLICE_WALL_S, LiveMonitor
from repro.obs.session import ObsSession

from helpers import job, tiny_cluster


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers, resp.read()


@pytest.fixture(scope="module")
def served_run():
    """One scenario run served on an ephemeral port; the server keeps
    answering after finalize (until ``close``), so tests probe it
    post-run without racing the engine."""
    obs = ObsSession(record_events=False, window_s=100.0, serve=0,
                     run_label="live-test")
    result = run_blocking_scenario("v-reconfiguration", obs=obs)
    yield obs, result
    obs.close()


class TestEndpoints:
    def test_metrics_exposition(self, served_run):
        obs, _ = served_run
        status, headers, body = fetch(f"{obs.live.url}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert text.endswith("\n")
        assert "# TYPE repro_blocking_detections counter" in text
        assert 'run="live-test"' in text

    def test_healthz(self, served_run):
        obs, _ = served_run
        status, headers, body = fetch(f"{obs.live.url}/healthz")
        assert status == 200  # ok or degraded both answer 200
        assert headers["Content-Type"].startswith("application/json")
        verdict = json.loads(body)
        assert verdict["status"] in ("ok", "degraded")
        assert verdict["windows_evaluated"] == obs.health.windows_evaluated

    def test_snapshot_agrees_with_summary(self, served_run):
        obs, result = served_run
        status, _, body = fetch(f"{obs.live.url}/snapshot.json")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["totals"]["jobs_finished"] == result.summary.num_jobs
        assert snapshot["totals"]["migrations"] == result.summary.migrations
        assert snapshot["t"] == result.cluster.sim.now

    def test_dashboard_html(self, served_run):
        obs, _ = served_run
        status, headers, body = fetch(f"{obs.live.url}/dashboard")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        html = body.decode()
        assert "<svg" in html
        assert "live-test" in html

    def test_root_serves_dashboard(self, served_run):
        obs, _ = served_run
        _, headers, _ = fetch(f"{obs.live.url}/")
        assert headers["Content-Type"].startswith("text/html")

    def test_unknown_path_404_lists_endpoints(self, served_run):
        obs, _ = served_run
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{obs.live.url}/nope")
        assert excinfo.value.code == 404
        assert b"/snapshot.json" in excinfo.value.read()

    def test_payloads_are_uncacheable(self, served_run):
        obs, _ = served_run
        _, headers, _ = fetch(f"{obs.live.url}/metrics")
        assert headers["Cache-Control"] == "no-store"

    def test_requests_are_counted(self, served_run):
        obs, _ = served_run
        before = obs.live.requests_served
        fetch(f"{obs.live.url}/healthz")
        assert obs.live.requests_served == before + 1

    def test_live_aggregates_reach_summary(self, served_run):
        obs, result = served_run
        extra = result.summary.extra
        assert extra["obs.live_publishes"] >= 1
        assert "obs.live_requests" in extra


class TestLiveMonitorUnit:
    def test_port_file(self, tmp_path):
        port_file = tmp_path / "port.txt"
        obs = ObsSession(record_events=False, serve=0,
                         serve_port_file=str(port_file))
        cluster = tiny_cluster()
        obs.attach(cluster)
        try:
            assert int(port_file.read_text().strip()) == obs.live.port
        finally:
            obs.close()

    def test_stopped_server_refuses_connections(self):
        obs = ObsSession(record_events=False, serve=0)
        cluster = tiny_cluster()
        obs.attach(cluster)
        url = obs.live.url
        fetch(f"{url}/healthz")  # answers before any engine slice
        obs.close()
        with pytest.raises(urllib.error.URLError):
            fetch(f"{url}/healthz")

    def test_critical_health_returns_503(self):
        obs = ObsSession(record_events=False, window_s=5.0, serve=0,
                         health_rules=["critical: pending_jobs >= 0"])
        cluster = tiny_cluster()
        obs.attach(cluster)
        try:
            cluster.nodes[0].add_job(job(work=20.0, demand=10.0))
            obs.run_engine(cluster.sim)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(f"{obs.live.url}/healthz")
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["status"] == "critical"
        finally:
            obs.close()


class TestPacedDrive:
    def test_paced_run_reaches_real_time(self):
        # 20 sim-seconds of work at 40 sim-s per wall-s: roughly half a
        # second of wall time, a couple of publish slices.
        obs = ObsSession(record_events=False, window_s=5.0, serve=0,
                         pace=40.0)
        cluster = tiny_cluster()
        obs.attach(cluster)
        try:
            cluster.nodes[0].add_job(job(work=20.0, demand=10.0))
            polled = []

            def poll():
                try:
                    _, _, body = fetch(f"{obs.live.url}/snapshot.json")
                    polled.append(json.loads(body))
                except urllib.error.URLError:
                    pass

            timer = threading.Timer(SLICE_WALL_S * 1.2, poll)
            timer.start()
            obs.run_engine(cluster.sim)
            timer.join()
            assert cluster.sim.now >= 20.0
            assert obs.live.publishes >= 2
            # Mid-run poll observed a consistent, partially advanced run.
            if polled:
                assert 0.0 <= polled[0]["t"] <= cluster.sim.now
            snap = obs.window.snapshot(cluster.sim.now)
            assert snap["totals"]["jobs_finished"] == 1.0
            assert "sim_lag_s" in snap
        finally:
            obs.close()

    def test_unpaced_drive_uses_window_slices(self):
        obs = ObsSession(record_events=False, window_s=5.0, serve=0)
        cluster = tiny_cluster()
        obs.attach(cluster)
        try:
            cluster.nodes[0].add_job(job(work=20.0, demand=10.0))
            obs.run_engine(cluster.sim)
            # One publish per 5 s window slice plus the initial and
            # final ones.
            assert obs.live.publishes >= 4
            assert obs.live.sim_lag_max_s == 0.0
        finally:
            obs.close()

    def test_pace_requires_positive_value(self):
        obs = ObsSession(record_events=False, serve=0, pace=-1.0)
        with pytest.raises(ValueError, match="pace"):
            obs.attach(tiny_cluster())
