"""Unit tests for blocking-problem detection (contribution 1)."""

import pytest

from repro.core.blocking import BlockingDetector

from helpers import job, tiny_cluster


def wedge_node(cluster, node_id=0, hog_demand=90.0, small_demand=60.0):
    """Put a node into the thrashing state with a dominant hog."""
    hog = job(work=500.0, demand=hog_demand)
    small = job(work=500.0, demand=small_demand)
    cluster.nodes[node_id].add_job(hog)
    cluster.nodes[node_id].add_job(small)
    return hog, small


class TestNodeBlocked:
    def test_healthy_node_not_blocked(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        detector = BlockingDetector(cluster)
        cluster.nodes[0].add_job(job(demand=30.0))
        assert detector.node_blocked(cluster.nodes[0]) is None

    def test_thrashing_node_with_destination_not_blocked(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        detector = BlockingDetector(cluster)
        hog, _ = wedge_node(cluster)
        # node 1 is empty: a qualified destination for the hog exists
        assert detector.node_blocked(cluster.nodes[0]) is None

    def test_thrashing_node_without_destination_is_blocked(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0, cpu_threshold=2)
        detector = BlockingDetector(cluster)
        hog, _ = wedge_node(cluster)
        # node 1 full by slots -> no destination
        cluster.nodes[1].add_job(job(demand=10.0))
        cluster.nodes[1].add_job(job(demand=10.0))
        stuck = detector.node_blocked(cluster.nodes[0])
        assert stuck is hog

    def test_destination_without_memory_does_not_count(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        detector = BlockingDetector(cluster)
        hog, _ = wedge_node(cluster, hog_demand=90.0)
        cluster.nodes[1].add_job(job(demand=50.0))  # only 50MB idle left
        assert detector.node_blocked(cluster.nodes[0]) is hog

    def test_reserved_node_never_reported_blocked(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0, cpu_threshold=2)
        detector = BlockingDetector(cluster)
        wedge_node(cluster)
        cluster.nodes[1].add_job(job(demand=10.0))
        cluster.nodes[1].add_job(job(demand=10.0))
        cluster.nodes[0].reserved = True
        assert detector.node_blocked(cluster.nodes[0]) is None

    def test_reserved_node_not_a_destination(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        detector = BlockingDetector(cluster)
        hog, _ = wedge_node(cluster)
        cluster.nodes[1].reserved = True  # the empty node is reserved
        assert detector.node_blocked(cluster.nodes[0]) is hog


class TestAssess:
    def blocked_cluster(self):
        cluster = tiny_cluster(num_nodes=3, memory_mb=100.0, cpu_threshold=2)
        hog, _ = wedge_node(cluster, node_id=0)
        for node_id in (1, 2):
            cluster.nodes[node_id].add_job(job(demand=10.0, work=500.0))
            cluster.nodes[node_id].add_job(job(demand=10.0, work=500.0))
        return cluster, hog

    def test_report_lists_blocked_nodes_and_stuck_jobs(self):
        cluster, hog = self.blocked_cluster()
        report = BlockingDetector(cluster).assess()
        assert report.blocking
        assert report.blocked_nodes == (0,)
        assert report.stuck_jobs == (hog.job_id,)

    def test_report_idle_memory_accounting(self):
        cluster, _ = self.blocked_cluster()
        report = BlockingDetector(cluster).assess()
        # nodes 1 and 2 have 80MB idle each; node 0 is over-subscribed
        assert report.total_idle_memory_mb == pytest.approx(160.0)
        assert report.average_user_memory_mb == pytest.approx(100.0)

    def test_reconfiguration_worthwhile_condition(self):
        """The paper's activation rule: accumulated idle memory must
        exceed the average user memory of a workstation."""
        cluster, _ = self.blocked_cluster()
        report = BlockingDetector(cluster).assess()
        assert report.reconfiguration_worthwhile  # 160 > 100

    def test_not_worthwhile_without_blocking(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        report = BlockingDetector(cluster).assess()
        assert not report.blocking
        assert not report.reconfiguration_worthwhile

    def test_blocking_exists_fast_path(self):
        cluster, _ = self.blocked_cluster()
        assert BlockingDetector(cluster).blocking_exists()

    def test_most_memory_intensive_stuck_job(self):
        cluster = tiny_cluster(num_nodes=3, memory_mb=100.0, cpu_threshold=2)
        hog_a, _ = wedge_node(cluster, node_id=0, hog_demand=80.0)
        hog_b, _ = wedge_node(cluster, node_id=1, hog_demand=95.0)
        cluster.nodes[2].add_job(job(demand=10.0, work=500.0))
        cluster.nodes[2].add_job(job(demand=10.0, work=500.0))
        victim = BlockingDetector(cluster).most_memory_intensive_stuck_job()
        assert victim is not None
        assert victim[0] is hog_b
        assert victim[1].node_id == 1

    def test_no_stuck_job_when_cluster_healthy(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        assert (BlockingDetector(cluster).most_memory_intensive_stuck_job()
                is None)
