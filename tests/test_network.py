"""Unit tests for the network model."""

import pytest

from repro.cluster.network import BITS_PER_MB, Network
from repro.sim import Simulator


def test_transfer_time_matches_bandwidth():
    net = Network(Simulator(), bandwidth_mbps=10.0)
    # 100 MB at 10 Mbps
    expected = 100.0 * BITS_PER_MB / 10e6
    assert net.transfer_time_s(100.0) == pytest.approx(expected)


def test_migration_cost_is_r_plus_d_over_b():
    """The paper's §3.3.1 cost model: r + D/B with r=0.1s, B=10Mbps."""
    net = Network(Simulator(), bandwidth_mbps=10.0,
                  remote_submission_cost_s=0.1)
    assert net.migration_cost_s(0.0) == pytest.approx(0.1)
    # 190 MB working set (mcf-sized image)
    expected = 0.1 + 190.0 * BITS_PER_MB / 10e6
    assert net.migration_cost_s(190.0) == pytest.approx(expected)


def test_remote_submission_fires_after_r():
    sim = Simulator()
    net = Network(sim, remote_submission_cost_s=0.1)
    fired = []
    delay = net.submit_remote(lambda: fired.append(sim.now))
    assert delay == pytest.approx(0.1)
    sim.run()
    assert fired == [pytest.approx(0.1)]


def test_additive_migrations_do_not_interact():
    sim = Simulator()
    net = Network(sim, bandwidth_mbps=10.0, contention=False)
    done = []
    d1 = net.migrate(10.0, lambda: done.append(("a", sim.now)))
    d2 = net.migrate(10.0, lambda: done.append(("b", sim.now)))
    assert d1 == pytest.approx(d2)
    sim.run()
    assert done[0][1] == pytest.approx(done[1][1])


def test_contending_migrations_serialize():
    sim = Simulator()
    net = Network(sim, bandwidth_mbps=10.0, contention=True)
    done = []
    wire = net.transfer_time_s(10.0)
    net.migrate(10.0, lambda: done.append(sim.now))
    net.migrate(10.0, lambda: done.append(sim.now))
    sim.run()
    assert done[0] == pytest.approx(0.1 + wire)
    assert done[1] == pytest.approx(0.1 + 2 * wire)


def test_faster_network_reduces_migration_cost():
    slow = Network(Simulator(), bandwidth_mbps=10.0)
    fast = Network(Simulator(), bandwidth_mbps=100.0)
    assert fast.migration_cost_s(50.0) < slow.migration_cost_s(50.0)


def test_transfer_statistics():
    sim = Simulator()
    net = Network(sim)
    net.migrate(10.0, lambda: None)
    net.migrate(5.0, lambda: None)
    sim.run()
    assert net.transfers == 2
    assert net.bytes_transferred == pytest.approx(15.0 * 1024 * 1024)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        Network(Simulator(), bandwidth_mbps=0.0)
    with pytest.raises(ValueError):
        Network(Simulator(), remote_submission_cost_s=-1.0)
    net = Network(Simulator())
    with pytest.raises(ValueError):
        net.transfer_time_s(-1.0)
