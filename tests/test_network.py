"""Unit tests for the network model."""

import pytest

from helpers import job, tiny_cluster

from repro.cluster.job import JobState
from repro.cluster.network import BITS_PER_MB, Network
from repro.faults import FaultConfig
from repro.scheduling import GLoadSharing
from repro.sim import Simulator


def test_transfer_time_matches_bandwidth():
    net = Network(Simulator(), bandwidth_mbps=10.0)
    # 100 MB at 10 Mbps
    expected = 100.0 * BITS_PER_MB / 10e6
    assert net.transfer_time_s(100.0) == pytest.approx(expected)


def test_migration_cost_is_r_plus_d_over_b():
    """The paper's §3.3.1 cost model: r + D/B with r=0.1s, B=10Mbps."""
    net = Network(Simulator(), bandwidth_mbps=10.0,
                  remote_submission_cost_s=0.1)
    assert net.migration_cost_s(0.0) == pytest.approx(0.1)
    # 190 MB working set (mcf-sized image)
    expected = 0.1 + 190.0 * BITS_PER_MB / 10e6
    assert net.migration_cost_s(190.0) == pytest.approx(expected)


def test_remote_submission_fires_after_r():
    sim = Simulator()
    net = Network(sim, remote_submission_cost_s=0.1)
    fired = []
    delay = net.submit_remote(lambda: fired.append(sim.now))
    assert delay == pytest.approx(0.1)
    sim.run()
    assert fired == [pytest.approx(0.1)]


def test_additive_migrations_do_not_interact():
    sim = Simulator()
    net = Network(sim, bandwidth_mbps=10.0, contention=False)
    done = []
    d1 = net.migrate(10.0, lambda: done.append(("a", sim.now)))
    d2 = net.migrate(10.0, lambda: done.append(("b", sim.now)))
    assert d1 == pytest.approx(d2)
    sim.run()
    assert done[0][1] == pytest.approx(done[1][1])


def test_contending_migrations_serialize():
    sim = Simulator()
    net = Network(sim, bandwidth_mbps=10.0, contention=True)
    done = []
    wire = net.transfer_time_s(10.0)
    net.migrate(10.0, lambda: done.append(sim.now))
    net.migrate(10.0, lambda: done.append(sim.now))
    sim.run()
    assert done[0] == pytest.approx(0.1 + wire)
    assert done[1] == pytest.approx(0.1 + 2 * wire)


def test_faster_network_reduces_migration_cost():
    slow = Network(Simulator(), bandwidth_mbps=10.0)
    fast = Network(Simulator(), bandwidth_mbps=100.0)
    assert fast.migration_cost_s(50.0) < slow.migration_cost_s(50.0)


def test_transfer_statistics():
    sim = Simulator()
    net = Network(sim)
    net.migrate(10.0, lambda: None)
    net.migrate(5.0, lambda: None)
    sim.run()
    assert net.transfers == 2
    assert net.bytes_transferred == pytest.approx(15.0 * 1024 * 1024)


def test_unit_convention_binary_mb_over_decimal_mbps():
    """The pinned unit convention: images in *binary* megabytes
    (8 * 1024 * 1024 bits) over *decimal* megabits per second
    (1e6 bits/s).  1 MB at the paper's 10 Mbps Ethernet is exactly
    0.8388608 s — anyone 'simplifying' either constant to the other
    convention breaks this equality."""
    net = Network(Simulator(), bandwidth_mbps=10.0)
    assert net.transfer_time_s(1.0) == 0.8388608
    assert BITS_PER_MB == 8.0 * 1024.0 * 1024.0
    assert net.bandwidth_bps == 10.0 * 1e6


def test_busy_s_is_exact_link_busy_time_under_contention():
    sim = Simulator()
    net = Network(sim, bandwidth_mbps=10.0, contention=True)
    sizes = [10.0, 2.5, 30.0]
    done = []
    for size in sizes:
        net.migrate(size, lambda: done.append(sim.now))
    sim.run()
    wire_total = sum(net.transfer_time_s(s) for s in sizes)
    # The FIFO serializes transfers, so accumulated wire seconds equal
    # the link's busy time: last bit leaves the wire at wire_total.
    assert net.busy_s == pytest.approx(wire_total)
    assert done[-1] == pytest.approx(wire_total + net.remote_cost_s)
    # Additive mode accumulates the same wire seconds (a utilization
    # figure there, not an occupancy interval).
    sim2 = Simulator()
    additive = Network(sim2, bandwidth_mbps=10.0, contention=False)
    for size in sizes:
        additive.migrate(size, lambda: None)
    sim2.run()
    assert additive.busy_s == pytest.approx(wire_total)


def test_failed_transfer_retry_requeues_behind_later_transfers():
    """Contention + fault injection: a failed transfer's retry does not
    keep its old place at the head of the link — it re-enters the FIFO
    behind transfers that queued during its backoff."""
    cluster = tiny_cluster(
        network_contention=True, network_bandwidth_mbps=100.0,
        faults=FaultConfig(mtbf_s=None, migration_failure_prob=0.0,
                           migration_max_retries=2,
                           migration_backoff_base_s=1.0))
    policy = GLoadSharing(cluster)
    net = cluster.network
    # Script the failure sequence: only job A's first attempt fails.
    script = iter([True])
    cluster.faults.migration_transfer_fails = (
        lambda: next(script, False))
    job_a = job(work=500.0, demand=30.0, home=0)
    job_b = job(work=500.0, demand=30.0, home=2)
    cluster.nodes[0].add_job(job_a)
    cluster.nodes[2].add_job(job_b)
    arrivals = {}
    wire = net.transfer_time_s(30.0)
    r = net.remote_cost_s

    policy.migrate(job_a, cluster.nodes[0], cluster.nodes[1],
                   on_arrival=lambda j: arrivals.setdefault("a", cluster.sim.now))
    # A's attempt occupies the wire over [0, wire], fails on arrival at
    # wire + r, and schedules its retry for wire + r + 1.0 (backoff).
    # B queues at t = 3.0, before A's retry fires.
    cluster.sim.schedule(
        3.0, lambda: policy.migrate(
            job_b, cluster.nodes[2], cluster.nodes[3],
            on_arrival=lambda j: arrivals.setdefault("b", cluster.sim.now)))
    cluster.sim.run(until=30.0)

    assert cluster.faults.counters["migration_failures"] == 1
    assert cluster.faults.counters["migration_retries"] == 1
    # B grabbed the link at 3.0 and finished its wire time first; A's
    # retry found the link busy and queued behind it.
    assert arrivals["b"] == pytest.approx(3.0 + wire + r)
    assert arrivals["b"] < arrivals["a"]
    # A retried at wire + r + 1.0, waited for the link to free at
    # 3.0 + wire, then spent another full wire time + r.
    assert arrivals["a"] == pytest.approx(3.0 + 2 * wire + r)
    assert job_a.state is JobState.RUNNING and job_a.node_id == 1
    assert job_b.state is JobState.RUNNING and job_b.node_id == 3
    # The failed attempt's wire seconds still count as link busy time.
    assert net.busy_s == pytest.approx(3 * wire)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        Network(Simulator(), bandwidth_mbps=0.0)
    with pytest.raises(ValueError):
        Network(Simulator(), remote_submission_cost_s=-1.0)
    net = Network(Simulator())
    with pytest.raises(ValueError):
        net.transfer_time_s(-1.0)
