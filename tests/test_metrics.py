"""Unit tests for metrics collection, summaries, and reporting."""

import math

import pytest

from repro.metrics.collector import ClusterSample, MetricsCollector
from repro.metrics.report import (
    comparison_table,
    percentage_reduction,
    render_table,
)
from repro.metrics.summary import summarize_run
from repro.scheduling import GLoadSharing

from helpers import drive, job, tiny_cluster


class TestClusterSample:
    def make(self, jobs_per_node):
        return ClusterSample(time=0.0, total_idle_memory_mb=0.0,
                             jobs_per_node=tuple(jobs_per_node),
                             num_reserved=0, pending_jobs=0)

    def test_skew_zero_for_balanced(self):
        assert self.make([2, 2, 2, 2]).job_balance_skew == 0.0

    def test_skew_population_std(self):
        sample = self.make([0, 4])
        assert sample.job_balance_skew == pytest.approx(2.0)

    def test_skew_excludes_reserved_nodes(self):
        """The paper computes the skew among non-reserved workstations."""
        with_reserved = self.make([2, 2, None, 10])
        without = self.make([2, 2, 10])
        assert (with_reserved.job_balance_skew
                == pytest.approx(without.job_balance_skew))

    def test_skew_all_reserved(self):
        assert self.make([None, None]).job_balance_skew == 0.0


class TestCollector:
    def test_samples_on_interval(self):
        cluster = tiny_cluster()
        collector = MetricsCollector(cluster, sample_interval_s=2.0)
        cluster.nodes[0].add_job(job(work=10.0))
        cluster.sim.run(until=9.0)
        times = [sample.time for sample in collector.samples]
        assert times == [2.0, 4.0, 6.0, 8.0]

    def test_idle_memory_average(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        collector = MetricsCollector(cluster, sample_interval_s=1.0)
        cluster.nodes[0].add_job(job(work=100.0, demand=60.0))
        cluster.sim.run(until=5.5)
        assert collector.average_idle_memory_mb() == pytest.approx(140.0)

    def test_until_filter(self):
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        collector = MetricsCollector(cluster, sample_interval_s=1.0)
        cluster.nodes[0].add_job(job(work=3.0, demand=60.0))
        cluster.sim.run(until=10.0)
        early = collector.average_idle_memory_mb(until=2.5)
        late = collector.average_idle_memory_mb()
        assert early < late  # memory freed after the job finished

    def test_pending_probe(self):
        cluster = tiny_cluster()
        collector = MetricsCollector(cluster, sample_interval_s=1.0,
                                     pending_probe=lambda: 7)
        cluster.nodes[0].add_job(job(work=2.0))
        cluster.sim.run(until=1.5)
        assert collector.samples[0].pending_jobs == 7

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            MetricsCollector(tiny_cluster(), sample_interval_s=0.0)

    def test_interval_insensitivity(self):
        """The paper verified averages are insensitive to the sampling
        interval (§4.1); a steady workload reproduces that."""
        results = []
        for interval in (1.0, 10.0):
            cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
            collector = MetricsCollector(cluster,
                                         sample_interval_s=interval)
            cluster.nodes[0].add_job(job(work=500.0, demand=50.0))
            cluster.sim.run(until=400.0)
            results.append(collector.average_idle_memory_mb())
        assert results[0] == pytest.approx(results[1], rel=0.05)


class TestSummaries:
    def run_small(self):
        cluster = tiny_cluster()
        policy = GLoadSharing(cluster)
        jobs = [job(work=20.0, home=i % 4, submit=float(i))
                for i in range(6)]
        collector = MetricsCollector(cluster)
        drive(policy, jobs)
        cluster.sim.run()
        return policy, jobs, collector

    def test_summary_fields(self):
        policy, jobs, collector = self.run_small()
        summary = summarize_run(policy, jobs, collector, "unit-trace")
        assert summary.num_jobs == 6
        assert summary.trace == "unit-trace"
        assert summary.policy == "G-Loadsharing"
        assert summary.average_slowdown >= 1.0
        assert summary.makespan_s >= 20.0
        assert len(summary.slowdowns) == 6

    def test_total_execution_is_sum_of_walls(self):
        policy, jobs, collector = self.run_small()
        summary = summarize_run(policy, jobs, collector, "t")
        expected = sum(j.finish_time - j.submit_time for j in jobs)
        assert summary.total_execution_time_s == pytest.approx(expected)

    def test_unfinished_jobs_rejected(self):
        cluster = tiny_cluster()
        policy = GLoadSharing(cluster)
        stuck = job(work=100.0)
        collector = MetricsCollector(cluster)
        with pytest.raises(ValueError):
            summarize_run(policy, [stuck], collector, "t")

    def test_percentiles(self):
        policy, jobs, collector = self.run_small()
        summary = summarize_run(policy, jobs, collector, "t")
        assert summary.slowdown_percentile(0) == min(summary.slowdowns)
        assert summary.slowdown_percentile(100) == max(summary.slowdowns)
        assert summary.max_slowdown == max(summary.slowdowns)


class TestReport:
    def test_percentage_reduction(self):
        assert percentage_reduction(100.0, 70.0) == pytest.approx(30.0)
        assert percentage_reduction(100.0, 130.0) == pytest.approx(-30.0)
        assert percentage_reduction(0.0, 10.0) == 0.0

    def test_comparison_table(self):
        policy, jobs, collector = self.run_pair()
        base = summarize_run(policy, jobs, collector, "T")
        rows = comparison_table([base], [base],
                                lambda s: s.average_slowdown, "slowdown")
        assert rows[0]["reduction_pct"] == pytest.approx(0.0)

    def run_pair(self):
        cluster = tiny_cluster()
        policy = GLoadSharing(cluster)
        jobs = [job(work=10.0, home=i % 4) for i in range(4)]
        collector = MetricsCollector(cluster)
        drive(policy, jobs)
        cluster.sim.run()
        return policy, jobs, collector

    def test_comparison_table_validates_pairing(self):
        policy, jobs, collector = self.run_pair()
        a = summarize_run(policy, jobs, collector, "A")
        b = summarize_run(policy, jobs, collector, "B")
        with pytest.raises(ValueError):
            comparison_table([a], [b], lambda s: 1.0, "x")
        with pytest.raises(ValueError):
            comparison_table([a, a], [a], lambda s: 1.0, "x")

    def test_render_table(self):
        rows = [{"trace": "T-1", "value": 1234.5}]
        text = render_table(rows, ("trace", "value"), title="demo")
        assert "demo" in text
        assert "T-1" in text
        assert "1,234.5" in text


class TestReservedNodeSeconds:
    def make(self, time, num_reserved):
        return ClusterSample(time=time, total_idle_memory_mb=0.0,
                             jobs_per_node=(0,), num_reserved=num_reserved,
                             pending_jobs=0)

    def test_uniform_ticks_match_interval_product(self):
        """With periodic sampling only, the integral equals
        count x interval, as before."""
        cluster = tiny_cluster()
        collector = MetricsCollector(cluster, sample_interval_s=2.0)
        collector.samples = [self.make(2.0, 1), self.make(4.0, 1),
                             self.make(6.0, 3)]
        assert collector.reserved_node_seconds() == pytest.approx(
            1 * 2.0 + 1 * 2.0 + 3 * 2.0)

    def test_manual_samples_integrate_actual_spacing(self):
        """A manual sample() between ticks must refine the integral,
        not be billed a full interval."""
        cluster = tiny_cluster()
        collector = MetricsCollector(cluster, sample_interval_s=2.0)
        collector.samples = [self.make(2.0, 1), self.make(2.5, 2),
                             self.make(4.0, 2)]
        # [0,2]: 1 node; (2,2.5]: 2 nodes; (2.5,4]: 2 nodes
        assert collector.reserved_node_seconds() == pytest.approx(
            1 * 2.0 + 2 * 0.5 + 2 * 1.5)

    def test_empty(self):
        collector = MetricsCollector(tiny_cluster())
        assert collector.reserved_node_seconds() == 0.0

    def test_average_until_filter_single_pass(self):
        """until= filtering must agree with the list-based definition."""
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        collector = MetricsCollector(cluster, sample_interval_s=1.0)
        cluster.nodes[0].add_job(job(work=100.0, demand=60.0))
        cluster.sim.run(until=6.5)
        expected = [s.total_idle_memory_mb for s in collector.samples
                    if s.time <= 3.5]
        assert collector.average_idle_memory_mb(until=3.5) == pytest.approx(
            sum(expected) / len(expected))
