"""Tests for the ``python -m repro.experiments`` CLI."""

import pytest

from repro.experiments.__main__ import TARGETS, main


class TestCli:
    def test_tables_run(self, capsys):
        assert main(["table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "apsi" in out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9"])

    def test_export_requires_single_figure(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["table1", "--export-csv", str(tmp_path / "x.csv")])

    def test_figure_quick_run_with_chart_and_export(self, tmp_path,
                                                    capsys):
        path = str(tmp_path / "fig.csv")
        assert main(["figure3", "--scale", "0.06", "--chart",
                     "--export-csv", path]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "|#" in out  # bar chart rendered
        with open(path) as stream:
            header = stream.readline()
        assert "figure" in header and "panel" in header

    def test_targets_inventory(self):
        assert "scenario" in TARGETS
        assert "heterogeneity" in TARGETS
        assert "ablations" in TARGETS
        assert {"figure1", "figure2", "figure3", "figure4"} <= set(TARGETS)
