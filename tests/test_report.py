"""Self-contained HTML run/sweep reports.

No browser in CI, so the checks are structural: every inline SVG must
be well-formed XML with finite coordinates, every chart ships its
legend and table view, and the page references nothing external.
"""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.experiments.scenario import run_blocking_scenario
from repro.obs.lifecycle import ATTRIBUTION_KEYS
from repro.obs.report import (
    comparison_row,
    line_chart,
    render_comparison_report,
    render_run_report,
    reservation_gantt,
    stacked_bars,
    write_report,
)
from repro.obs.session import ObsSession

SVG_RE = re.compile(r"<svg.*?</svg>", re.S)
NUMBER_RE = re.compile(r"-?\d+(?:\.\d+)?(?:e-?\d+)?$")


def assert_svgs_well_formed(html_text, minimum=1):
    """Parse every inline SVG; all numeric geometry must be finite."""
    blocks = SVG_RE.findall(html_text)
    assert len(blocks) >= minimum
    for block in blocks:
        root = ET.fromstring(block)
        for element in root.iter():
            for attr in ("x", "y", "width", "height", "cx", "cy", "r",
                         "x1", "x2", "y1", "y2"):
                value = element.get(attr)
                if value is None or value.endswith("%"):
                    continue
                assert NUMBER_RE.match(value), \
                    f"non-finite {attr}={value!r} in <{element.tag}>"
    return blocks


def assert_self_contained(html_text):
    assert "http://" not in html_text
    assert "https://" not in html_text
    assert "<script" not in html_text
    assert "<link" not in html_text
    assert "@media (prefers-color-scheme: dark)" in html_text


@pytest.fixture(scope="module")
def run_report():
    obs = ObsSession(record_events=False, lifecycle=True,
                     sample_period=25.0, run_label="report-test")
    run_blocking_scenario("v-reconfiguration", obs=obs)
    import dataclasses

    summary = dataclasses.asdict(obs._summary)
    return render_run_report("Report test", summary, obs.lifecycle,
                             obs.sampler), obs


class TestRunReport:
    def test_page_and_svgs(self, run_report):
        html_text, _ = run_report
        assert html_text.startswith("<!DOCTYPE html>")
        assert_self_contained(html_text)
        # attribution bars + idle memory + node state + gantt
        assert_svgs_well_formed(html_text, minimum=4)

    def test_sections_present(self, run_report):
        html_text, _ = run_report
        assert "Slowdown attribution" in html_text
        assert "Idle memory" in html_text
        assert "Reservation timeline" in html_text
        assert "Per-job detail" in html_text

    def test_every_chart_has_a_table_view(self, run_report):
        html_text, _ = run_report
        assert html_text.count("<details") >= \
            len(SVG_RE.findall(html_text))

    def test_legend_names_every_bucket(self, run_report):
        html_text, _ = run_report
        for label in ("CPU service", "Page-fault stalls", "Queue wait",
                      "Migration transfer"):
            assert label in html_text

    def test_tooltips_on_marks(self, run_report):
        html_text, _ = run_report
        assert html_text.count("<title>") > 10

    def test_write_report_requires_lifecycle(self, tmp_path):
        obs = ObsSession(record_events=False)
        with pytest.raises(ValueError, match="lifecycle"):
            obs.write_report(str(tmp_path / "r.html"))

    def test_session_write_report(self, run_report, tmp_path):
        _, obs = run_report
        target = str(tmp_path / "session.html")
        assert obs.write_report(target) == target
        with open(target) as stream:
            text = stream.read()
        assert "report-test" in text
        assert_svgs_well_formed(text, minimum=4)


class TestComparisonReport:
    def rows(self):
        rows = []
        for policy, base in (("G", 3.0), ("V", 2.0)):
            for i, x in enumerate((0.0, 2.0, 5.0)):
                extra = {f"obs.lifecycle_slowdown_{k}": 0.2 + 0.1 * i
                         for k in ATTRIBUTION_KEYS}
                rows.append(comparison_row(
                    f"{policy} @ {x:g}", policy, x,
                    {"average_slowdown": base + i, "makespan_s": 100.0 + x,
                     "total_queuing_time_s": 5.0, "migrations": i,
                     "extra": extra}))
        return rows

    def test_renders_policy_series_and_bars(self):
        html_text = render_comparison_report(
            "Sweep", self.rows(), x_label="crash rate")
        assert_self_contained(html_text)
        # slowdown lines + makespan lines + attribution bars
        assert_svgs_well_formed(html_text, minimum=3)
        assert "Slowdown attribution per run" in html_text
        assert "crash rate" in html_text
        assert "All runs" in html_text

    def test_incomplete_series_dropped_from_lines(self):
        rows = self.rows()[:-1]  # V is missing its last sweep point
        html_text = render_comparison_report("Sweep", rows)
        svgs = assert_svgs_well_formed(html_text, minimum=3)
        # the line charts only plot G; V still appears in bars/table
        assert 'polyline' in svgs[0] or 'path' in svgs[0]
        assert "V @ 2" in html_text

    def test_empty_sweep(self):
        html_text = render_comparison_report("Sweep", [])
        assert "No runs" in html_text

    def test_comparison_row_from_run_summary(self, tmp_path):
        obs = ObsSession(record_events=False, lifecycle=True)
        result = run_blocking_scenario("v-reconfiguration", obs=obs)
        row = comparison_row("V", "V", 0.0, result.summary)
        assert row["average_slowdown"] == result.summary.average_slowdown
        parts = sum(row[f"slowdown_{k}"] for k in ATTRIBUTION_KEYS)
        assert parts == pytest.approx(result.summary.average_slowdown)

    def test_write_report_round_trip(self, tmp_path):
        target = str(tmp_path / "cmp.html")
        html_text = render_comparison_report("Sweep", self.rows())
        assert write_report(target, html_text) == target
        with open(target) as stream:
            assert stream.read() == html_text


class TestChartPrimitives:
    def test_stacked_bars_empty_rows(self):
        assert "no data" in stacked_bars([]).lower()

    def test_line_chart_single_point(self):
        svg = line_chart([1.0], [("only", "var(--c-cpu)", [2.0])])
        ET.fromstring(SVG_RE.search(svg).group(0))

    def test_gantt_empty(self):
        assert "no reservations" in \
            reservation_gantt([], t_max=10.0).lower()

    def test_gantt_open_reservation_clamped(self):
        records = [{"reservation": 1, "node": 3, "reserved_at": 2.0,
                    "ready_at": None, "closed_at": None,
                    "outcome": None, "jobs": [], "needed_mb": 10.0}]
        svg = reservation_gantt(records, t_max=10.0)
        ET.fromstring(SVG_RE.search(svg).group(0))
