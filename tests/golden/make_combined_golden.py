"""Regenerate the combined-path golden summaries.

The combined path runs every optional engine layer at once — columnar
state, 8 load-info domains, the all-fault-classes failure model — on
the 32-node blocking scenario.  Run only after a *deliberate* change
to the simulated behavior of any of those layers::

    PYTHONPATH=src python tests/golden/make_combined_golden.py
"""

import dataclasses
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

from test_determinism import combined_config  # noqa: E402

from repro.experiments.scenario import run_blocking_scenario  # noqa: E402

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    golden = {}
    for policy in ("g-loadsharing", "v-reconfiguration"):
        result = run_blocking_scenario(policy, seed=0,
                                       config=combined_config())
        golden[f"scenario-combined-{policy}"] = json.loads(
            json.dumps(dataclasses.asdict(result.summary),
                       sort_keys=True))
    path = os.path.join(GOLDEN_DIR, "summaries_combined.json")
    with open(path, "w") as stream:
        json.dump(golden, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
