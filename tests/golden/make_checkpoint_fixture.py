"""Regenerate the committed checkpoint fixture.

Run only after a *deliberate* checkpoint-schema change (bumping
``repro.sim.checkpoint.SCHEMA_VERSION``)::

    PYTHONPATH=src python tests/golden/make_checkpoint_fixture.py

Writes ``checkpoint_v<schema>.ckpt`` (a V-Reconfiguration blocking
scenario, 8 nodes, seed 0, snapshotted at t=250s) and the pinned
post-restore summary next to it.  The equivalence tests restore the
committed file and compare against the pin, so an *accidental* change
to the world layout fails loudly instead of silently invalidating
every checkpoint users have on disk.
"""

import dataclasses
import json
import os

from repro.experiments.scenario import (SCENARIO_CLUSTER,
                                        run_blocking_scenario)
from repro.sim.checkpoint import SCHEMA_VERSION, load_checkpoint, resume

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))
CHECKPOINT_AT = 250.0


def main() -> None:
    ckpt = os.path.join(GOLDEN_DIR, f"checkpoint_v{SCHEMA_VERSION}.ckpt")
    summary_path = os.path.join(
        GOLDEN_DIR, f"checkpoint_v{SCHEMA_VERSION}_summary.json")
    cfg = SCENARIO_CLUSTER.replace(num_nodes=8)
    run_blocking_scenario("v-reconfiguration", seed=0, config=cfg,
                          checkpoint_at=CHECKPOINT_AT, checkpoint_to=ckpt)
    restored = load_checkpoint(ckpt)
    meta = dict(restored.meta)
    result = resume(restored)
    pinned = {
        "meta": meta,
        "event_count": result.cluster.sim.event_count,
        "summary": json.loads(json.dumps(
            dataclasses.asdict(result.summary), sort_keys=True)),
    }
    with open(summary_path, "w") as stream:
        json.dump(pinned, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print(f"wrote {ckpt} ({os.path.getsize(ckpt)} bytes)")
    print(f"wrote {summary_path}")


if __name__ == "__main__":
    main()
