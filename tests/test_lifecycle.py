"""Job-lifecycle causal tracing and slowdown attribution.

The acceptance criterion of the lifecycle tracker is the partition
invariant: for **every** job of a 32-node paper-trace run — with and
without fault injection — the top-level spans tile the job's wall
time exactly (float-exact boundary contiguity, residual at float-
summation noise) and the six attribution buckets sum back to it.
"""

import json
import math

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.scenario import run_blocking_scenario
from repro.faults.config import FaultConfig
from repro.obs.lifecycle import (
    ATTRIBUTION_KEYS,
    JobLifecycle,
    JobLifecycleTracker,
    Span,
)
from repro.obs.session import ObsSession
from repro.scheduling import GLoadSharing
from repro.workload.programs import WorkloadGroup

from helpers import drive, job, tiny_cluster

#: Residual tolerance: math.fsum over ~dozens of spans of O(1e3)
#: seconds keeps the error many orders below this.
RESIDUAL_TOL = 1e-6


def traced_experiment(policy, faults=None):
    obs = ObsSession(record_events=False, lifecycle=True)
    result = run_experiment(WorkloadGroup.APP, 1, policy=policy, seed=3,
                            obs=obs, faults=faults)
    return obs.lifecycle, result


@pytest.fixture(scope="module")
def scenario_tracker():
    """One traced blocking-scenario V run shared by the causal tests."""
    obs = ObsSession(record_events=False, lifecycle=True)
    result = run_blocking_scenario("v-reconfiguration", obs=obs)
    return obs.lifecycle, result


class TestPartitionInvariant:
    """The acceptance property, on the paper's own workload."""

    @pytest.mark.parametrize("policy", ["g-loadsharing",
                                        "v-reconfiguration"])
    @pytest.mark.parametrize("faulty", [False, True],
                             ids=["clean", "faults"])
    def test_every_job_partitions_exactly(self, policy, faulty):
        faults = (FaultConfig(mtbf_s=4000.0, mttr_s=300.0)
                  if faulty else None)
        tracker, result = traced_experiment(policy, faults=faults)
        finished = tracker.finished_jobs()
        assert len(finished) == result.summary.num_jobs
        for life in finished:
            life.check_partition()  # float-exact contiguity
            assert abs(life.partition_residual_s()) <= RESIDUAL_TOL
            attribution = life.attribution()
            assert set(attribution) == set(ATTRIBUTION_KEYS)
            assert abs(math.fsum(attribution.values()) - life.wall_s) \
                <= RESIDUAL_TOL
            assert abs(math.fsum(life.slowdown_attribution().values())
                       - life.slowdown()) <= RESIDUAL_TOL

    def test_slowdown_matches_the_paper_metric(self):
        tracker, result = traced_experiment("g-loadsharing")
        by_id = {life.job_id: life for life in tracker.finished_jobs()}
        for job_obj in result.cluster.finished_jobs:
            life = by_id[job_obj.job_id]
            assert life.slowdown() == pytest.approx(job_obj.slowdown())
            assert life.cpu_work_s == job_obj.cpu_work_s
            assert life.submit_time == job_obj.submit_time
            assert life.finish_time == job_obj.finish_time


class TestCausalLinks:
    """Blocking -> reservation -> transfer -> dedicated run."""

    def test_reservations_recorded(self, scenario_tracker):
        tracker, result = scenario_tracker
        assert len(tracker.reservations) == \
            result.summary.extra["reservations"]
        for record in tracker.reservations.values():
            assert record.reserved_at >= 0.0
            assert record.needed_mb > 0.0
            if record.outcome == "release":
                assert record.closed_at >= record.reserved_at

    def test_dedicated_runs_carry_the_reservation_cause(
            self, scenario_tracker):
        tracker, _ = scenario_tracker
        dedicated = [(life, span)
                     for life in tracker.finished_jobs()
                     for span in life.spans
                     if span.kind == "run-dedicated"]
        assert dedicated  # the scenario deterministically rescues
        for life, span in dedicated:
            assert span.cause["type"] == "reservation"
            rid = span.cause["reservation"]
            assert life.job_id in tracker.reservations[rid].job_ids
            assert span.cause["blocked_from"] is not None
            assert life.reservation_wait_s > 0.0
            assert span.detail["reservation_wait_s"] == pytest.approx(
                span.start - span.cause["blocked_from"])

    def test_rescue_transfer_caused_by_the_same_reservation(
            self, scenario_tracker):
        tracker, _ = scenario_tracker
        for life in tracker.finished_jobs():
            spans = life.spans
            for i, span in enumerate(spans):
                if span.kind != "run-dedicated":
                    continue
                transfer = spans[i - 1]
                assert transfer.category == "transfer"
                assert transfer.cause["type"] == "reservation"
                assert transfer.cause["reservation"] == \
                    span.cause["reservation"]

    def test_blocked_overlay_spans(self, scenario_tracker):
        tracker, _ = scenario_tracker
        blocked = [child
                   for life in tracker.finished_jobs()
                   for span in life.spans
                   for child in span.children
                   if child.kind == "blocked"]
        assert blocked
        for child in blocked:
            assert child.duration_s > 0.0
            assert child.cause == {"type": "blocking"}
        total = math.fsum(child.duration_s for child in blocked)
        assert total == pytest.approx(math.fsum(
            life.blocked_s for life in tracker.finished_jobs()))

    def test_tracker_json_round_trips(self, scenario_tracker):
        tracker, _ = scenario_tracker
        document = json.loads(json.dumps(tracker.to_jsonable()))
        assert len(document["jobs"]) == len(tracker.jobs)
        assert len(document["reservations"]) == len(tracker.reservations)
        sample = document["jobs"][0]
        assert sample["spans"]
        assert sample["attribution"] is not None


class TestAggregates:
    def test_aggregate_reaches_summary_extra(self, scenario_tracker):
        tracker, result = scenario_tracker
        extra = result.summary.extra
        agg = tracker.aggregate()
        assert extra["obs.lifecycle_jobs"] == agg["lifecycle_jobs"]
        assert agg["lifecycle_jobs"] == result.summary.num_jobs
        assert agg["lifecycle_residual_max_s"] <= RESIDUAL_TOL
        for key in ATTRIBUTION_KEYS:
            assert f"lifecycle_{key}_s" in agg
            assert extra[f"obs.lifecycle_slowdown_{key}"] == \
                agg[f"lifecycle_slowdown_{key}"]

    def test_mean_slowdown_decomposition_sums_to_the_mean(
            self, scenario_tracker):
        tracker, result = scenario_tracker
        agg = tracker.aggregate()
        mean = math.fsum(agg[f"lifecycle_slowdown_{key}"]
                         for key in ATTRIBUTION_KEYS)
        assert mean == pytest.approx(result.summary.average_slowdown)

    def test_empty_tracker_aggregate(self):
        agg = JobLifecycleTracker().aggregate()
        assert agg["lifecycle_jobs"] == 0.0
        assert agg["lifecycle_residual_max_s"] == 0.0
        for key in ATTRIBUTION_KEYS:
            assert agg[f"lifecycle_slowdown_{key}"] == 0.0


class TestTinyClusterLifecycles:
    def traced_drive(self, jobs, **cluster_kwargs):
        cluster = tiny_cluster(**cluster_kwargs)
        tracker = JobLifecycleTracker().attach(cluster.obs)
        policy = GLoadSharing(cluster)
        drive(policy, jobs)
        cluster.sim.run()
        tracker.finalize(end_time=cluster.sim.now)
        return tracker

    def test_simple_job_span_shape(self):
        tracker = self.traced_drive([job(work=20.0, submit=1.0)])
        (life,) = tracker.finished_jobs()
        kinds = [span.kind for span in life.spans]
        assert kinds[0] == "queued"
        assert kinds[-1] == "run"
        life.check_partition()
        assert life.spans[0].start == 1.0

    def test_implicit_submit_from_direct_add_job(self):
        cluster = tiny_cluster()
        tracker = JobLifecycleTracker().attach(cluster.obs)
        cluster.nodes[0].add_job(job(work=10.0, demand=10.0))
        cluster.sim.run()
        (life,) = tracker.finished_jobs()
        life.check_partition()  # first sight becomes the submit instant
        assert life.attribution()["cpu"] > 0.0

    def test_crash_requeue_partitions(self):
        obs = ObsSession(record_events=False, lifecycle=True)
        result = run_experiment(
            WorkloadGroup.APP, 1, policy="g-loadsharing", seed=3,
            obs=obs, faults=FaultConfig(mtbf_s=1500.0, mttr_s=120.0))
        tracker = obs.lifecycle
        requeued = [life for life in tracker.finished_jobs()
                    if life.requeues > 0]
        assert requeued  # the harsh MTBF guarantees casualties
        for life in requeued:
            life.check_partition()
            assert any(span.kind in ("crash-requeue", "requeue-wait")
                       for span in life.spans)

    def test_finalize_closes_open_spans(self):
        tracker = JobLifecycleTracker()
        life = JobLifecycle(7, submit_time=0.0)
        tracker.jobs[7] = life
        life.open_span(Span("queued", "pending", 0.0))
        tracker.finalize(end_time=5.0)
        assert life.spans[-1].end == 5.0
        assert not life.finished  # never finished, only closed
