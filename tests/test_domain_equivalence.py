"""Domain sharding contracts — pinned here.

``ClusterConfig.domains`` partitions the load directory into K
per-domain shards with compact cross-domain summaries
(:mod:`repro.cluster.domains`).  Two things must stay true forever:

* ``domains=1`` is *byte-identical* to the flat directory for every
  policy — the cluster builds the flat :class:`LoadInfoDirectory`
  unchanged, so the default path cannot drift (differential-tested
  the same way the ``columnar=`` and ``indexed_selection=`` escape
  hatches are);
* ``domains>1`` is a deterministic *model change*: same config twice
  gives the same summary, and the two-level orderings respect the
  partition, summary ranking, and staleness semantics pinned below.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import Cluster, ClusterConfig, WorkstationSpec
from repro.cluster.domains import DomainDirectory
from repro.cluster.loadinfo import LoadInfoDirectory
from repro.experiments.runner import default_config, run_experiment
from repro.workload.programs import WorkloadGroup

#: Every policy the repo ships — all must honor the domain contracts.
POLICIES = ["cpu", "memory", "g-loadsharing", "v-reconfiguration",
            "suspension"]


def summary_for(policy, domains=None, staleness=None, seed=0, nodes=None,
                scale=0.1):
    cfg = default_config(WorkloadGroup.SPEC)
    if domains is not None:
        cfg = cfg.replace(domains=domains)
    if staleness is not None:
        cfg = cfg.replace(domain_exchange_interval_s=staleness)
    result = run_experiment(WorkloadGroup.SPEC, 3, policy=policy,
                            seed=seed, scale=scale, config=cfg,
                            nodes=nodes)
    return result.summary, result.cluster.sim.event_count


def small_cluster(domains=4, nodes=8, **kwargs):
    defaults = dict(
        num_nodes=nodes,
        spec=WorkstationSpec(memory_mb=100.0, swap_mb=100.0),
        kernel_reserved_mb=0.0,
        load_exchange_interval_s=1.0,
        domains=domains)
    defaults.update(kwargs)
    return Cluster(ClusterConfig(**defaults))


# ----------------------------------------------------------------------
# domains=1 is the flat directory, byte-identical
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", POLICIES)
def test_domains_one_matches_flat(policy):
    flat, flat_events = summary_for(policy)
    one, one_events = summary_for(policy, domains=1)
    assert one == flat
    assert one_events == flat_events


def test_domains_one_builds_flat_directory():
    """``domains=1`` must not even construct the sharded facade — the
    identity holds by construction, not by equivalence-of-code-paths."""
    cluster = small_cluster(domains=1)
    assert isinstance(cluster.directory, LoadInfoDirectory)
    sharded = small_cluster(domains=4)
    assert isinstance(sharded.directory, DomainDirectory)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=7),
       nodes=st.integers(min_value=8, max_value=48),
       policy=st.sampled_from(POLICIES),
       domains=st.sampled_from([1, 2, 4]),
       staleness=st.sampled_from([0.0, 5.0, 20.0]))
def test_domained_runs_deterministic_random(seed, nodes, policy, domains,
                                            staleness):
    """Fuzz over (seed, nodes, policy, domains, staleness): the run is
    reproducible, and K=1 cells additionally match the flat path."""
    first, first_events = summary_for(policy, domains=domains,
                                      staleness=staleness, seed=seed,
                                      nodes=nodes, scale=0.05)
    second, second_events = summary_for(policy, domains=domains,
                                        staleness=staleness, seed=seed,
                                        nodes=nodes, scale=0.05)
    assert first == second
    assert first_events == second_events
    if domains == 1:
        flat, flat_events = summary_for(policy, seed=seed, nodes=nodes,
                                        scale=0.05)
        assert first == flat
        assert first_events == flat_events


# ----------------------------------------------------------------------
# partition geometry
# ----------------------------------------------------------------------
def test_domain_partition_covers_all_nodes():
    directory = small_cluster(domains=3, nodes=8).directory
    bounds = [directory.domain_bounds(d) for d in range(3)]
    assert bounds[0][0] == 0 and bounds[-1][1] == 8
    for (a_lo, a_hi), (b_lo, b_hi) in zip(bounds, bounds[1:]):
        assert a_hi == b_lo  # contiguous, non-overlapping
    for node_id in range(8):
        d = directory.domain_of(node_id)
        lo, hi = directory.domain_bounds(d)
        assert lo <= node_id < hi


def test_shards_cover_their_slices():
    directory = small_cluster(domains=4, nodes=8).directory
    for d in range(4):
        lo, hi = directory.domain_bounds(d)
        ids = [snap.node_id for snap in directory.shard(d).snapshots()]
        assert ids == list(range(lo, hi))


def test_snapshots_concatenate_in_node_order():
    directory = small_cluster(domains=3, nodes=7).directory
    assert [s.node_id for s in directory.snapshots()] == list(range(7))


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
def test_config_rejects_bad_domain_counts():
    with pytest.raises(ValueError):
        small_cluster(domains=0)
    with pytest.raises(ValueError):
        small_cluster(domains=9, nodes=8)
    with pytest.raises(ValueError):
        small_cluster(domains=2, domain_exchange_interval_s=-1.0)


def test_config_requires_indexed_selection():
    with pytest.raises(ValueError):
        small_cluster(domains=2, indexed_selection=False)
    # flat is fine without the index (the seed path)
    small_cluster(domains=1, indexed_selection=False)


# ----------------------------------------------------------------------
# two-level candidate orderings
# ----------------------------------------------------------------------
def test_accepting_ids_local_domain_first():
    cluster = small_cluster(domains=4, nodes=8)
    directory = cluster.directory
    for d in range(4):
        ids = directory.accepting_ids(local_domain=d)
        lo, hi = directory.domain_bounds(d)
        assert set(ids) == set(range(8))
        assert ids[:hi - lo] == directory.shard(d).accepting_ids()


def test_accepting_ids_global_view_includes_everyone():
    directory = small_cluster(domains=4, nodes=8).directory
    assert set(directory.accepting_ids()) == set(range(8))
    assert set(directory.load_order_ids()) == set(range(8))


def test_remote_domains_ranked_by_summary_idle():
    from repro.cluster.job import Job, MemoryProfile

    cluster = small_cluster(domains=4, nodes=8,
                            domain_exchange_interval_s=0.0)
    # Load domain 2 (nodes 4-5) so it publishes the least idle memory.
    for node_id in (4, 5):
        cluster.nodes[node_id].add_job(
            Job(program="t", cpu_work_s=50.0,
                memory=MemoryProfile.constant(80.0)))
    cluster.directory.refresh()
    ranked = cluster.directory.ranked_remote_domains(0)
    assert 0 not in ranked
    assert ranked[-1] == 2  # the loaded domain ranks last
    ids = cluster.directory.accepting_ids(local_domain=0)
    assert ids[:2] == [0, 1]  # local slice first


def test_stale_empty_remote_domain_is_skipped():
    """A remote domain whose summary (staleness!) says zero accepting
    nodes is not consulted at all from a local viewpoint — but the
    global view (no local domain) always includes everything."""
    from repro.cluster.job import Job, MemoryProfile

    cluster = small_cluster(domains=4, nodes=8,
                            domain_exchange_interval_s=0.0)
    for node_id in (6, 7):  # fill domain 3 completely
        cluster.nodes[node_id].add_job(
            Job(program="t", cpu_work_s=50.0,
                memory=MemoryProfile.constant(100.0)))
    cluster.directory.refresh()
    assert not set(cluster.directory.accepting_ids(local_domain=0)) & {6, 7}
    assert set(cluster.directory.load_order_ids(local_domain=0)) \
        == set(range(8))


# ----------------------------------------------------------------------
# summary staleness semantics
# ----------------------------------------------------------------------
def test_summaries_are_stale_between_rounds():
    cluster = small_cluster(domains=2, nodes=8,
                            load_exchange_interval_s=1.0,
                            domain_exchange_interval_s=10.0)
    from repro.cluster.job import Job, MemoryProfile
    cluster.nodes[0].add_job(
        Job(program="t", cpu_work_s=500.0,
            memory=MemoryProfile.constant(40.0)))
    # Intra-domain exchange has happened, summary round has not.
    cluster.sim.run(until=2.5)
    assert cluster.directory.shard(0).snapshot(0).num_jobs == 1
    assert cluster.directory.summaries()[0].idle_memory_mb \
        == pytest.approx(400.0)  # still the t=0 view
    cluster.sim.run(until=10.5)
    assert cluster.directory.summaries()[0].idle_memory_mb \
        == pytest.approx(360.0)


def test_zero_summary_interval_recomputes_on_access():
    cluster = small_cluster(domains=2, nodes=8,
                            load_exchange_interval_s=1.0,
                            domain_exchange_interval_s=0.0)
    from repro.cluster.job import Job, MemoryProfile
    cluster.nodes[0].add_job(
        Job(program="t", cpu_work_s=500.0,
            memory=MemoryProfile.constant(40.0)))
    cluster.sim.run(until=1.5)  # shard exchange published the change
    assert cluster.directory.summaries()[0].idle_memory_mb \
        == pytest.approx(360.0)


def test_summary_version_bumps_only_on_change():
    cluster = small_cluster(domains=2, nodes=8,
                            domain_exchange_interval_s=0.0)
    directory = cluster.directory
    directory.summaries()
    version = directory.order_version
    directory.summaries()  # nothing changed: version stable
    assert directory.order_version == version


def test_unchanged_domain_keeps_summary_object():
    cluster = small_cluster(domains=2, nodes=8,
                            domain_exchange_interval_s=0.0)
    directory = cluster.directory
    before = directory.summaries()[1]
    from repro.cluster.job import Job, MemoryProfile
    cluster.nodes[0].add_job(
        Job(program="t", cpu_work_s=500.0,
            memory=MemoryProfile.constant(40.0)))
    directory.refresh()
    after = directory.summaries()
    assert after[0].idle_memory_mb == pytest.approx(360.0)
    assert after[1] is before  # untouched domain: no rebuild


# ----------------------------------------------------------------------
# membership (evict/readmit) through the facade
# ----------------------------------------------------------------------
def test_evict_and_readmit_delegate_to_owning_shard():
    cluster = small_cluster(domains=4, nodes=8)
    directory = cluster.directory
    cluster.nodes[5].crash()
    directory.evict(5)
    assert 5 not in directory.accepting_ids()
    assert 5 not in directory.shard(directory.domain_of(5)).accepting_ids()
    assert not directory.snapshot(5).alive
    cluster.nodes[5].recover()
    directory.readmit(5)
    assert 5 in directory.accepting_ids()
    assert directory.snapshot(5).alive


def test_fault_hook_fans_out_to_every_shard():
    directory = small_cluster(domains=4, nodes=8).directory
    hook = lambda node_id: (None, 0.0)  # noqa: E731
    directory.fault_hook = hook
    assert directory.fault_hook is hook
    assert all(directory.shard(d).fault_hook is hook for d in range(4))


# ----------------------------------------------------------------------
# cross-domain escalation surfaces in the summary
# ----------------------------------------------------------------------
def test_cross_domain_reservations_counted():
    """A V-reconfiguration run under domains reports the escalation
    counter (possibly zero) and completes every job."""
    summary, _ = summary_for("v-reconfiguration", domains=4,
                             staleness=5.0, nodes=16, scale=0.1)
    assert summary.num_jobs > 0
    assert summary.extra.get("cross_domain_reservations", 0.0) >= 0.0


# ----------------------------------------------------------------------
# sampler domain views
# ----------------------------------------------------------------------
def test_sampler_domain_views_partition_the_totals():
    from repro.obs.session import ObsSession

    obs = ObsSession(record_events=False, sample_period=10.0)
    cfg = default_config(WorkloadGroup.SPEC).replace(domains=4)
    run_experiment(WorkloadGroup.SPEC, 3, policy="memory", seed=0,
                   scale=0.1, config=cfg, nodes=16, obs=obs)
    sampler = obs.sampler
    assert sampler.domains == 4
    totals = sampler.totals("idle_mb")
    per_domain = [sampler.domain_totals("idle_mb", d) for d in range(4)]
    for tick, total in enumerate(totals):
        assert sum(col[tick] for col in per_domain) \
            == pytest.approx(total)
    aggregate = sampler.aggregate()
    assert aggregate["sampler_domains"] == 4.0
    assert "sampler_mean_domain_idle_spread_mb" in aggregate
    jsonable = sampler.to_jsonable()
    assert jsonable["domains"] == 4
    assert len(jsonable["domain_idle_mb"]) == 4


def test_sampler_csv_has_per_domain_columns():
    import io

    from repro.obs.session import ObsSession

    obs = ObsSession(record_events=False, sample_period=10.0)
    cfg = default_config(WorkloadGroup.SPEC).replace(domains=2)
    run_experiment(WorkloadGroup.SPEC, 3, policy="memory", seed=0,
                   scale=0.1, config=cfg, nodes=8, obs=obs)
    stream = io.StringIO()
    obs.sampler.write_csv(stream)
    header = stream.getvalue().splitlines()[0].split(",")
    for d in range(2):
        assert f"idle_mb_d{d}" in header
        assert f"running_d{d}" in header
        assert f"thrashing_d{d}" in header
