"""Edge cases and adversarial conditions across the stack."""

import pytest

from repro.cluster import Cluster, ClusterConfig, Job, MemoryProfile
from repro.cluster.config import WorkstationSpec
from repro.core import VReconfiguration
from repro.scheduling import GLoadSharing

from helpers import drive, job, tiny_cluster


class TestOversizedJobs:
    def test_job_larger_than_any_node_still_finishes(self):
        """§2.3: 'this job may not be suitable in this cluster' — it
        thrashes hard but must not hang the simulation."""
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        policy = GLoadSharing(cluster)
        monster = job(work=20.0, demand=400.0)
        drive(policy, [monster])
        cluster.sim.run()
        assert monster.finished
        assert monster.acct.page_s > 0
        assert monster.slowdown() > 2.0

    def test_vreconf_gives_oversized_job_dedicated_service(self):
        """§2.3: 'the virtual reconfiguration method will provide a
        reserved workstation for dedicated service, where its page
        faults will not affect performance of other jobs'."""
        cluster = tiny_cluster(num_nodes=3, memory_mb=100.0,
                               cpu_threshold=2,
                               network_bandwidth_mbps=1000.0)
        policy = VReconfiguration(cluster, blocking_persistence=1,
                                  reservation_backoff_s=0.0,
                                  migration_cooldown_s=0.0,
                                  min_remaining_for_migration_s=1.0)
        monster = job(work=300.0, demand=150.0)
        bystander = job(work=300.0, demand=40.0)
        cluster.nodes[0].add_job(monster)
        cluster.nodes[0].add_job(bystander)
        for node_id in (1, 2):
            for _ in range(2):
                cluster.nodes[node_id].add_job(job(work=120.0,
                                                   demand=10.0))
        cluster.sim.run()
        assert monster.finished and bystander.finished
        # the monster was given a reserved workstation
        if policy.stats.extra.get("reconfiguration_migrations", 0):
            assert monster.migrations >= 1


class TestDegenerateConfigs:
    def test_single_node_cluster(self):
        cluster = tiny_cluster(num_nodes=1)
        policy = GLoadSharing(cluster)
        jobs = [job(work=10.0, home=0) for _ in range(6)]
        drive(policy, jobs)
        cluster.sim.run()
        assert all(j.finished for j in jobs)

    def test_single_slot_nodes(self):
        cluster = tiny_cluster(num_nodes=2, cpu_threshold=1)
        policy = GLoadSharing(cluster)
        jobs = [job(work=10.0, home=i % 2) for i in range(5)]
        drive(policy, jobs)
        cluster.sim.run()
        assert all(j.finished for j in jobs)

    def test_vreconf_on_two_node_cluster(self):
        """max_reserved clamps to n-1; nothing deadlocks."""
        cluster = tiny_cluster(num_nodes=2, memory_mb=100.0)
        policy = VReconfiguration(cluster, max_reserved=8)
        assert policy.reservations.max_reserved == 1
        jobs = [job(work=20.0, demand=60.0, home=i % 2)
                for i in range(4)]
        drive(policy, jobs)
        cluster.sim.run()
        assert all(j.finished for j in jobs)

    def test_network_contention_mode(self):
        config = ClusterConfig(
            num_nodes=2,
            spec=WorkstationSpec(memory_mb=100.0, swap_mb=100.0),
            kernel_reserved_mb=0.0,
            network_contention=True,
            load_exchange_interval_s=0.0,
        )
        cluster = Cluster(config)
        policy = GLoadSharing(cluster, migration_cooldown_s=0.0,
                              min_remaining_for_migration_s=1.0)
        hog = job(work=300.0, demand=90.0)
        small = job(work=300.0, demand=60.0)
        cluster.nodes[0].add_job(hog)
        cluster.nodes[0].add_job(small)
        cluster.sim.run()
        assert hog.finished and small.finished

    def test_zero_speed_rejected(self):
        with pytest.raises(ValueError):
            WorkstationSpec(speed_factor=0.0)

    def test_monitor_effectively_disabled(self):
        cluster = tiny_cluster(monitor_interval_s=1e9)
        policy = GLoadSharing(cluster)
        jobs = [job(work=5.0, home=i % 4) for i in range(4)]
        drive(policy, jobs)
        cluster.sim.run()
        assert all(j.finished for j in jobs)
        assert policy.stats.migrations == 0


class TestBurstSubmissions:
    def test_simultaneous_burst_all_placed(self):
        """100 jobs at the same instant: committed-slot tracking must
        prevent over-commitment and everything must drain."""
        cluster = tiny_cluster(num_nodes=4, cpu_threshold=3)
        policy = GLoadSharing(cluster)
        jobs = [job(work=5.0, demand=5.0, home=i % 4, submit=1.0)
                for i in range(100)]
        drive(policy, jobs)
        cluster.sim.run(until=1.5)
        for node in cluster.nodes:
            assert node.committed_jobs <= cluster.config.cpu_threshold
        cluster.sim.run()
        assert all(j.finished for j in jobs)

    def test_growing_jobs_under_burst(self):
        cluster = tiny_cluster(num_nodes=4, memory_mb=100.0)
        policy = VReconfiguration(cluster)
        jobs = []
        for i in range(12):
            grower = Job(program="g", cpu_work_s=30.0,
                         memory=MemoryProfile.from_pairs(
                             [(0.0, 10.0), (10.0, 60.0)]),
                         submit_time=1.0 + 0.1 * i, home_node=i % 4)
            jobs.append(grower)
        drive(policy, jobs)
        cluster.sim.run()
        assert all(j.finished for j in jobs)
