"""Edge cases in event recording and trace export.

Unmatched span pairs must still produce a loadable trace, a raising
subscriber must not corrupt its peers, and run-log serialization must
survive payloads that are not JSON-native.
"""

import io
import json
import warnings

import pytest

from repro.obs.bus import Channel, EventBus, ObsEvent, jsonable
from repro.obs.trace_export import chrome_trace, write_chrome_trace


def ev(channel, time, kind, **data):
    return ObsEvent(channel, time, kind, data)


class TestUnmatchedSpans:
    def test_reserve_without_release_closes_at_end(self):
        events = [
            ev("reconfig.reservation", 1.0, "reserve",
               reservation=7, node=2, needed_mb=40.0),
            ev("cluster.placement", 9.0, "local", job=1, node=0),
        ]
        document = chrome_trace(events)
        spans = [e for e in document["traceEvents"]
                 if e.get("ph") == "X"]
        (span,) = spans
        assert span["name"] == "reservation r7 (open)"
        assert span["ts"] == pytest.approx(1.0e6)
        assert span["dur"] == pytest.approx(8.0e6)  # clamped to the end

    def test_release_without_reserve_is_zero_length(self):
        events = [ev("reconfig.reservation", 5.0, "release",
                     reservation=3, node=1)]
        document = chrome_trace(events)
        (span,) = [e for e in document["traceEvents"]
                   if e.get("ph") == "X"]
        assert span["dur"] == 0.0  # start falls back to the end event

    def test_thrash_on_without_off(self):
        events = [
            ev("memory.fault", 2.0, "thrash-on", node=4),
            ev("cluster.placement", 6.0, "local", job=1, node=4),
        ]
        document = chrome_trace(events)
        (span,) = [e for e in document["traceEvents"]
                   if e.get("ph") == "X"]
        assert span["name"] == "thrashing"
        assert span["dur"] == pytest.approx(4.0e6)

    def test_thrash_off_without_on(self):
        document = chrome_trace([ev("memory.fault", 3.0, "thrash-off",
                                    node=0)])
        (span,) = [e for e in document["traceEvents"]
                   if e.get("ph") == "X"]
        assert span["dur"] == 0.0

    def test_empty_stream_serializes(self):
        buffer = io.StringIO()
        document = write_chrome_trace([], buffer)
        assert json.loads(buffer.getvalue()) == document
        assert document["otherData"]["events"] == 0


class TestBrokenSubscribers:
    def test_raising_subscriber_is_isolated_and_unsubscribed(self):
        channel = Channel("test")
        seen_before, seen_after = [], []

        def bad(event):
            raise RuntimeError("boom")

        channel.subscribe(seen_before.append)
        channel.subscribe(bad)
        channel.subscribe(seen_after.append)
        with pytest.warns(RuntimeWarning, match="boom"):
            channel.emit(1.0, "kind", node=0)
        # Both peers received the event the offender raised on...
        assert len(seen_before) == len(seen_after) == 1
        # ...the offender is gone, and later emits are warning-free.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            channel.emit(2.0, "kind", node=1)
        assert len(seen_before) == len(seen_after) == 2
        assert channel.enabled

    def test_all_subscribers_broken_disables_the_channel(self):
        channel = Channel("test")

        def bad(event):
            raise ValueError("nope")

        channel.subscribe(bad)
        with pytest.warns(RuntimeWarning):
            channel.emit(0.0, "kind")
        assert not channel.enabled

    def test_same_subscriber_on_many_channels(self):
        bus = EventBus()

        def bad(event):
            raise RuntimeError("dual")

        bus.subscribe_many(("cluster.job", "cluster.migration"), bad)
        with pytest.warns(RuntimeWarning):
            bus.channel("cluster.job").emit(0.0, "submit", job=1)
        # Only the raising channel drops it; the other stays wired.
        assert not bus.channel("cluster.job").enabled
        assert bus.channel("cluster.migration").enabled


class TestNonJsonPayloads:
    def test_jsonable_coercions(self):
        assert jsonable({"a", "b"}) in (["a", "b"], ["b", "a"])
        assert jsonable((1, 2)) == [1, 2]
        assert jsonable({1: object()})["1"].startswith("<object")
        assert jsonable(None) is None

    def test_event_with_rich_payload_survives_dumps(self):
        class Node:
            def __str__(self):
                return "node-3"

        event = ObsEvent("cluster.migration", 1.5, "migrate",
                         {"node": Node(), "path": (0, 3),
                          "tags": {"hot"}, "nested": {"obj": Node()}})
        record = json.loads(json.dumps(event.to_jsonable()))
        assert record["node"] == "node-3"
        assert record["path"] == [0, 3]
        assert record["tags"] == ["hot"]
        assert record["nested"]["obj"] == "node-3"
        assert record["t"] == 1.5
