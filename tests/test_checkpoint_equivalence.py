"""Restore-equivalence harness for checkpoint/restore.

The contract under test (DESIGN.md "Checkpoint/restore"): a run that
is paused, serialized to a snapshot, restored — in the same process or
another one — and resumed produces *byte-identical* results to the
uninterrupted run: same ``RunSummary`` (canonical JSON form), same
executed-event count.  Three layers of pins:

* **grid pin** — every cell of {policy G,V} x {faults off,on} x
  {domains 1,8} x {columnar off,on} checkpoints mid-run and must
  resume byte-identically (and the act of checkpointing must not
  perturb the run that continues past the save);
* **fuzz property** — hypothesis drives (seed, fault_seed, checkpoint
  time); identity must hold at any cut point, not just the curated
  one;
* **golden fixture** — ``tests/golden/checkpoint_v1.ckpt`` is a
  committed schema-1 snapshot; it must keep restoring to the pinned
  summary in ``tests/golden/checkpoint_v1_summary.json``, and
  unknown/newer schemas must fail with a clear error *before* any
  world bytes are unpickled.  Regenerate both (only after a
  deliberate schema bump) with::

      PYTHONPATH=src python tests/golden/make_checkpoint_fixture.py
"""

import dataclasses
import gzip
import json
import os
import pickle
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.job import Job, MemoryProfile
from repro.experiments.runner import run_trace
from repro.experiments.scenario import (SCENARIO_CLUSTER,
                                        run_blocking_scenario)
from repro.faults import FaultConfig
from repro.sim.checkpoint import (MAGIC, SCHEMA_VERSION, CheckpointError,
                                  fork, load_checkpoint, peek_meta,
                                  restore_bytes, resume, save_checkpoint,
                                  snapshot_bytes)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_CKPT = os.path.join(GOLDEN_DIR, "checkpoint_v1.ckpt")
GOLDEN_SUMMARY = os.path.join(GOLDEN_DIR, "checkpoint_v1_summary.json")

#: Same all-fault-classes model as tests/test_determinism.py.
FULL_FAULTS = FaultConfig(mtbf_s=300.0, mttr_s=30.0,
                          crash_policy="checkpoint",
                          loadinfo_drop_prob=0.1,
                          loadinfo_delay_prob=0.1,
                          migration_failure_prob=0.3)

#: Mid-run cut point: wedges detected and starving, filler churn and
#: (in faulted cells) crash/recovery cycles in flight, most work ahead.
CHECKPOINT_AT = 250.0


def canonical(summary) -> dict:
    """JSON round-trip of a RunSummary: the byte-identity currency."""
    return json.loads(json.dumps(dataclasses.asdict(summary),
                                 sort_keys=True))


def cell_config(domains: int, columnar: bool, faulted: bool):
    cfg = SCENARIO_CLUSTER.replace(num_nodes=8, domains=domains,
                                   columnar=columnar)
    if faulted:
        cfg = cfg.replace(faults=FULL_FAULTS)
    return cfg


# ----------------------------------------------------------------------
# grid pin: every configuration axis that changes the event stream
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["g-loadsharing", "v-reconfiguration"])
@pytest.mark.parametrize("faulted", [False, True],
                         ids=["nofaults", "faults"])
@pytest.mark.parametrize("domains", [1, 8],
                         ids=["flat", "domained"])
@pytest.mark.parametrize("columnar", [True, False],
                         ids=["columnar", "objects"])
def test_restore_resumes_byte_identically(policy, faulted, domains,
                                          columnar, tmp_path):
    cfg = cell_config(domains, columnar, faulted)
    path = str(tmp_path / "cell.ckpt")

    baseline = run_blocking_scenario(policy, seed=1, config=cfg)
    checkpointed = run_blocking_scenario(policy, seed=1, config=cfg,
                                         checkpoint_at=CHECKPOINT_AT,
                                         checkpoint_to=path)
    # Writing the snapshot must not perturb the run that continues.
    assert canonical(checkpointed.summary) == canonical(baseline.summary)
    assert (checkpointed.cluster.sim.event_count
            == baseline.cluster.sim.event_count)

    resumed = resume(load_checkpoint(path))
    assert canonical(resumed.summary) == canonical(baseline.summary), \
        f"restore diverged: {policy} faulted={faulted} " \
        f"domains={domains} columnar={columnar}"
    assert (resumed.cluster.sim.event_count
            == baseline.cluster.sim.event_count)
    assert resumed.summary.trace == baseline.summary.trace


# ----------------------------------------------------------------------
# fuzz property: identity at arbitrary cut points and seeds
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 3), fault_seed=st.integers(0, 3),
       cut=st.floats(40.0, 420.0),
       policy=st.sampled_from(["g-loadsharing", "v-reconfiguration"]))
def test_restore_identity_fuzzed(seed, fault_seed, cut, policy):
    cfg = cell_config(domains=8, columnar=True, faulted=False).replace(
        faults=FULL_FAULTS.replace(fault_seed=fault_seed))
    baseline = run_blocking_scenario(policy, seed=seed, config=cfg)
    handle, path = tempfile.mkstemp(suffix=".ckpt")
    os.close(handle)
    try:
        run_blocking_scenario(policy, seed=seed, config=cfg,
                              checkpoint_at=cut, checkpoint_to=path)
        resumed = resume(load_checkpoint(path))
    finally:
        os.unlink(path)
    assert canonical(resumed.summary) == canonical(baseline.summary)
    assert (resumed.cluster.sim.event_count
            == baseline.cluster.sim.event_count)


# ----------------------------------------------------------------------
# snapshot mechanics
# ----------------------------------------------------------------------
def test_peek_meta_reads_without_restoring(tmp_path):
    path = str(tmp_path / "meta.ckpt")
    run_blocking_scenario("v-reconfiguration", seed=0,
                          config=cell_config(1, True, False),
                          checkpoint_at=CHECKPOINT_AT, checkpoint_to=path)
    meta = peek_meta(path)
    assert meta["sim_now"] == CHECKPOINT_AT
    assert meta["policy"] == "V-Reconfiguration"
    assert meta["num_nodes"] == 8
    assert meta["num_jobs"] > 0
    assert meta["event_count"] > 0
    assert meta["faults"] is False


def test_restore_advances_global_job_counter(tmp_path):
    path = str(tmp_path / "ids.ckpt")
    run_blocking_scenario("g-loadsharing", seed=0,
                          config=cell_config(1, True, False),
                          checkpoint_at=CHECKPOINT_AT, checkpoint_to=path)
    restored = load_checkpoint(path)
    existing = {job.job_id for job in restored.jobs}
    fresh = Job(program="post-restore", cpu_work_s=1.0,
                memory=MemoryProfile.constant(10.0))
    assert fresh.job_id not in existing, \
        "a job created after restore collided with a checkpointed id"


def test_save_checkpoint_returns_meta(tmp_path):
    result = run_blocking_scenario("g-loadsharing", seed=0,
                                   config=cell_config(1, True, False))
    path = str(tmp_path / "done.ckpt")
    meta = save_checkpoint(path, cluster=result.cluster,
                           policy=result.policy,
                           collector=result.collector,
                           jobs=result.cluster.finished_jobs,
                           trace_name=result.summary.trace)
    assert meta == peek_meta(path)
    assert meta["finished_jobs"] == len(result.cluster.finished_jobs)


def test_unpicklable_world_raises_checkpoint_error():
    result = run_blocking_scenario("g-loadsharing", seed=0,
                                   config=cell_config(1, True, False))
    result.cluster.sim.schedule(1.0, lambda: None)  # closure on the heap
    with pytest.raises(CheckpointError, match="not picklable"):
        snapshot_bytes(cluster=result.cluster, policy=result.policy,
                       collector=result.collector, jobs=[],
                       trace_name="broken")


# ----------------------------------------------------------------------
# schema versioning: clear errors before any world unpickling
# ----------------------------------------------------------------------
def test_newer_schema_is_rejected_with_clear_error():
    envelope = {"format": MAGIC, "schema": SCHEMA_VERSION + 1,
                "meta": {}, "world": b"never-unpickled"}
    data = gzip.compress(pickle.dumps(envelope, protocol=4))
    with pytest.raises(CheckpointError, match="schema"):
        restore_bytes(data)


def test_missing_schema_is_rejected():
    envelope = {"format": MAGIC, "meta": {}, "world": b""}
    data = gzip.compress(pickle.dumps(envelope, protocol=4))
    with pytest.raises(CheckpointError, match="schema"):
        restore_bytes(data)


def test_non_checkpoint_bytes_are_rejected():
    with pytest.raises(CheckpointError, match="gzip"):
        restore_bytes(b"definitely not a checkpoint")
    with pytest.raises(CheckpointError, match="format marker"):
        restore_bytes(gzip.compress(pickle.dumps({"x": 1})))
    with pytest.raises(CheckpointError, match="undecodable"):
        restore_bytes(gzip.compress(b"\x80\xff garbage"))


# ----------------------------------------------------------------------
# golden fixture: cross-version restore pin
# ----------------------------------------------------------------------
def test_golden_checkpoint_restores_to_pinned_summary():
    with open(GOLDEN_SUMMARY) as stream:
        pinned = json.load(stream)
    restored = load_checkpoint(GOLDEN_CKPT)
    assert restored.meta["sim_now"] == pinned["meta"]["sim_now"]
    result = resume(restored)
    assert canonical(result.summary) == pinned["summary"], \
        "the committed schema-1 checkpoint no longer restores to its " \
        "pinned summary; if a world-layout change was intentional, " \
        "bump SCHEMA_VERSION and regenerate the fixture " \
        "(tests/golden/make_checkpoint_fixture.py)"
    assert result.cluster.sim.event_count == pinned["event_count"]


# ----------------------------------------------------------------------
# fork: what-if replay semantics
# ----------------------------------------------------------------------
def _checkpoint_of(policy, tmp_path, faulted=False):
    path = str(tmp_path / "fork.ckpt")
    run_blocking_scenario(policy, seed=0,
                          config=cell_config(1, True, faulted),
                          checkpoint_at=CHECKPOINT_AT, checkpoint_to=path)
    return path


def test_fork_swaps_policy_and_adopts_pending(tmp_path):
    path = _checkpoint_of("g-loadsharing", tmp_path)
    restored = load_checkpoint(path)
    old = restored.policy
    pending_before = list(old._pending)
    restored = fork(restored, policy="v-reconfiguration")
    assert restored.policy is not old
    assert restored.policy.name == "V-Reconfiguration"
    assert restored.policy._pending is old._pending, \
        "pending queue must be adopted by reference (in-flight " \
        "transfer callbacks still append to the old object)"
    assert list(restored.policy._pending) == pending_before
    assert restored.meta["forked_from"] == "G-Loadsharing"
    result = resume(restored)
    assert result.summary.policy == "V-Reconfiguration"
    assert result.summary.num_jobs == len(restored.jobs)


def test_fork_retires_old_policy_monitor(tmp_path):
    path = _checkpoint_of("v-reconfiguration", tmp_path)
    restored = load_checkpoint(path)
    old = restored.policy
    fork(restored, policy="g-loadsharing")
    assert old._retired
    assert old._monitor_event is None
    assert old._on_node_changed not in restored.cluster._node_listeners


def test_fork_unknown_policy_raises(tmp_path):
    path = _checkpoint_of("g-loadsharing", tmp_path)
    with pytest.raises(CheckpointError, match="unknown fork policy"):
        fork(load_checkpoint(path), policy="round-robin")


def test_fork_none_is_identity(tmp_path):
    path = _checkpoint_of("g-loadsharing", tmp_path)
    restored = load_checkpoint(path)
    assert fork(restored, policy=None) is restored


def test_forked_replay_differs_from_continuation(tmp_path):
    """The branch point matters: under the blocking scenario the two
    policies genuinely diverge from the same snapshot."""
    path = _checkpoint_of("g-loadsharing", tmp_path)
    continued = resume(load_checkpoint(path))
    forked = resume(fork(load_checkpoint(path),
                         policy="v-reconfiguration"))
    assert (forked.summary.total_paging_time_s
            < continued.summary.total_paging_time_s)


# ----------------------------------------------------------------------
# CLI round trip
# ----------------------------------------------------------------------
def test_runner_cli_checkpoint_then_restore_matches(tmp_path, capsys):
    from repro.experiments.runner import main

    ck = str(tmp_path / "cli.ckpt")
    full = str(tmp_path / "full.json")
    resumed = str(tmp_path / "resumed.json")
    assert main(["--trace", "3", "--scale", "0.1",
                 "--policy", "g-loadsharing",
                 "--checkpoint-at", "500", "--checkpoint-to", ck,
                 "--export-json", full]) == 0
    assert main(["--restore-from", ck,
                 "--export-json", resumed]) == 0
    capsys.readouterr()
    with open(full) as stream:
        uninterrupted = json.load(stream)
    with open(resumed) as stream:
        restored = json.load(stream)
    assert uninterrupted == restored


def test_runner_cli_flag_validation(tmp_path):
    from repro.experiments.runner import main

    with pytest.raises(SystemExit):
        main(["--checkpoint-at", "10"])  # missing --checkpoint-to
    with pytest.raises(SystemExit):
        main(["--restore-from", "x.ckpt", "--checkpoint-at", "10",
              "--checkpoint-to", "y.ckpt"])
    with pytest.raises(SystemExit):
        main(["--submit-stdin"])  # requires --serve


def test_run_trace_rejects_half_checkpoint_args():
    from repro.workload.generator import build_trace
    from repro.workload.programs import WorkloadGroup

    trace = build_trace(WorkloadGroup.SPEC, 3, seed=0, num_nodes=8)
    with pytest.raises(ValueError, match="go together"):
        run_trace(trace, "g-loadsharing", SCENARIO_CLUSTER.replace(),
                  checkpoint_at=10.0)
