"""Streaming job ingest and the live control plane.

End-to-end contract: jobs POSTed to a live run's ``/submit`` endpoint
are admitted at slice boundaries and the final summary is *identical*
(modulo ``obs.`` telemetry extras) to running a trace that contained
those jobs from the start — streamed arrival is an interface change,
not a semantics change.  Plus: ``/checkpoint`` and ``/fork`` against
the live engine, stdin ingest through the runner CLI, and the
SIGTERM/stream-log shutdown regression (a killed service run must not
leave a truncated JSONL tail).
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.runner import run_trace
from repro.experiments.scenario import (SCENARIO_CLUSTER,
                                        build_blocking_trace,
                                        run_blocking_scenario)
from repro.obs.live import validate_job_spec
from repro.obs.session import ObsSession
from repro.sim.checkpoint import restore_bytes, resume
from repro.workload.trace import Trace, TraceJob

from helpers import tiny_cluster

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CLI_ENV = dict(os.environ,
               PYTHONPATH=os.path.join(REPO_ROOT, "src"))

#: Streamed batch: submitted over HTTP mid-run with an explicit future
#: submit time, so admission instants are pinned regardless of the
#: wall-clock interleaving of the POST with engine slices.
STREAM_AT = 900.0
STREAM_BATCH = [
    {"program": "streamed", "lifetime_s": 40.0 + 5.0 * k,
     "peak_demand_mb": 24.0, "home_node": k % 8,
     "submit_time": STREAM_AT + 0.25 * k, "io_stall_per_cpu_s": 0.5}
    for k in range(4)
]


def world_summary(summary) -> dict:
    """Canonical summary minus ``obs.`` extras (telemetry carries
    wall-clock-dependent fields like publish counts)."""
    data = dataclasses.asdict(summary)
    data["extra"] = {key: value for key, value in data["extra"].items()
                     if not key.startswith("obs.")}
    return json.loads(json.dumps(data, sort_keys=True))


def post(url, payload, as_bytes=False):
    data = payload if isinstance(payload, bytes) else \
        json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(url, data=data, method="POST")
    with urllib.request.urlopen(request, timeout=30) as resp:
        body = resp.read()
        return resp.status, body if as_bytes else json.loads(body)


# ----------------------------------------------------------------------
# end to end: streamed == batched
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def streamed_run():
    """A paced scenario run that receives STREAM_BATCH over HTTP while
    executing; yields (obs, result)."""
    obs = ObsSession(record_events=False, window_s=100.0, serve=0,
                     pace=600.0, run_label="ingest-test")
    cfg = SCENARIO_CLUSTER.replace(num_nodes=8)
    box = {}

    def run():
        box["result"] = run_blocking_scenario(
            "v-reconfiguration", seed=0, config=cfg, obs=obs)

    thread = threading.Thread(target=run)
    thread.start()
    deadline = time.time() + 10.0
    while (obs.live is None or obs.live.port is None) \
            and time.time() < deadline:
        time.sleep(0.01)
    status, reply = post(f"{obs.live.url}/submit", STREAM_BATCH)
    assert status == 202 and reply["accepted"] == len(STREAM_BATCH)
    thread.join(timeout=120)
    assert not thread.is_alive(), "paced streamed run did not finish"
    yield obs, box["result"]
    obs.close()


def test_streamed_jobs_run_to_completion(streamed_run):
    _, result = streamed_run
    streamed = [job for job in result.cluster.finished_jobs
                if job.program == "streamed"]
    assert len(streamed) == len(STREAM_BATCH)
    assert all(job.submit_time >= STREAM_AT for job in streamed)


def test_snapshot_reports_ingest_stats(streamed_run):
    obs, _ = streamed_run
    with urllib.request.urlopen(f"{obs.live.url}/snapshot.json",
                                timeout=5) as resp:
        snapshot = json.loads(resp.read())
    assert snapshot["ingest"]["received"] == len(STREAM_BATCH)
    assert snapshot["ingest"]["admitted"] == len(STREAM_BATCH)
    assert snapshot["ingest"]["rejected"] == 0
    assert snapshot["ingest"]["queued"] == 0


def test_ingest_counters_reach_summary_extra(streamed_run):
    _, result = streamed_run
    assert result.summary.extra["obs.live_jobs_received"] == \
        float(len(STREAM_BATCH))
    assert result.summary.extra["obs.live_jobs_admitted"] == \
        float(len(STREAM_BATCH))


def test_streamed_summary_matches_batch_trace(streamed_run):
    """The semantics pin: the streamed run's world summary equals a
    plain batch run whose trace contained the same jobs all along."""
    _, streamed_result = streamed_run
    base = build_blocking_trace(num_nodes=8, seed=0)
    extra = [TraceJob(job_index=base.num_jobs + k,
                      submit_time=spec["submit_time"],
                      program=spec["program"],
                      lifetime_s=spec["lifetime_s"],
                      home_node=spec["home_node"],
                      peak_demand_mb=spec["peak_demand_mb"],
                      io_stall_per_cpu_s=spec["io_stall_per_cpu_s"])
             for k, spec in enumerate(STREAM_BATCH)]
    batch_trace = Trace(name=base.name, group=base.group,
                        trace_index=base.trace_index,
                        duration_s=max(base.duration_s,
                                       STREAM_AT + 2.0),
                        jobs=base.jobs + extra)
    batched = run_trace(batch_trace, "v-reconfiguration",
                        SCENARIO_CLUSTER.replace(num_nodes=8))
    # (Event counts are NOT compared: the sliced live drive processes
    # daemon ticks up to the last slice boundary past the makespan,
    # which the open-ended batch run stops before.  The summary is
    # immune — its collector averages clip at the makespan.)
    assert world_summary(streamed_result.summary) == \
        world_summary(batched.summary)


# ----------------------------------------------------------------------
# live control plane: /checkpoint and /fork against a paced run
# ----------------------------------------------------------------------
def test_live_checkpoint_and_fork(tmp_path):
    obs = ObsSession(record_events=False, window_s=100.0, serve=0,
                     pace=400.0, run_label="control-test")
    cfg = SCENARIO_CLUSTER.replace(num_nodes=8)
    box = {}

    def run():
        box["result"] = run_blocking_scenario(
            "v-reconfiguration", seed=0, config=cfg, obs=obs)

    thread = threading.Thread(target=run)
    thread.start()
    try:
        while obs.live is None or obs.live.port is None:
            time.sleep(0.01)
        url = obs.live.url
        time.sleep(2 * 0.25)

        # Bytes variant: the response body is a restorable snapshot.
        status, data = post(f"{url}/checkpoint", b"", as_bytes=True)
        assert status == 200
        restored = restore_bytes(data, advance_counters=False)
        live_now = restored.cluster.sim.now
        assert 0.0 < live_now
        side = resume(restored)
        assert side.summary.num_jobs == len(restored.jobs)

        # Path variant: meta echoed back, file written.
        target = str(tmp_path / "live.ckpt")
        status, reply = post(f"{url}/checkpoint", {"path": target})
        assert status == 200
        assert reply["path"] == target
        assert os.path.getsize(target) == reply["bytes"]
        assert reply["meta"]["policy"] == "V-Reconfiguration"

        # Fork: an independent what-if universe, live run unperturbed.
        status, reply = post(f"{url}/fork",
                             {"policy": "g-loadsharing"})
        assert status == 200
        assert reply["policy"] == "G-Loadsharing"
        assert reply["forked_from"] == "V-Reconfiguration"
        assert reply["summary"]["average_slowdown"] > 0
    finally:
        thread.join(timeout=120)
        obs.close()
    assert not thread.is_alive()
    # The live run still finished normally after all that surgery.
    assert box["result"].summary.num_jobs > 0


# ----------------------------------------------------------------------
# validation and error paths
# ----------------------------------------------------------------------
class TestSpecValidation:
    def test_valid_minimal_spec(self):
        spec = {"program": "x", "lifetime_s": 1.0,
                "peak_demand_mb": 10.0, "home_node": 0}
        assert validate_job_spec(spec, num_nodes=4) is None

    @pytest.mark.parametrize("mutation,fragment", [
        ({"lifetime_s": 0}, "positive"),
        ({"lifetime_s": "long"}, "positive"),
        ({"peak_demand_mb": -1}, "non-negative"),
        ({"home_node": 4}, "home_node"),
        ({"home_node": True}, "home_node"),
        ({"typo_key": 1}, "unknown"),
        ({"memory_phases": []}, "memory_phases"),
        ({"memory_phases": [[0.0]]}, "memory_phases"),
        ({"submit_time": -5.0}, "submit_time"),
    ])
    def test_invalid_specs(self, mutation, fragment):
        spec = {"program": "x", "lifetime_s": 1.0,
                "peak_demand_mb": 10.0, "home_node": 0}
        spec.update(mutation)
        assert fragment in validate_job_spec(spec, num_nodes=4)

    def test_missing_key_and_non_dict(self):
        assert "missing" in validate_job_spec(
            {"program": "x"}, num_nodes=4)
        assert "object" in validate_job_spec([1, 2], num_nodes=4)


class TestPostErrors:
    @pytest.fixture()
    def unbound_server(self):
        """A served session attached to a bare cluster — no bind_run,
        so the write endpoints must refuse."""
        obs = ObsSession(record_events=False, serve=0)
        obs.attach(tiny_cluster())
        yield obs
        obs.close()

    def test_submit_without_world_is_503(self, unbound_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(f"{unbound_server.live.url}/submit",
                 [{"program": "x", "lifetime_s": 1.0,
                   "peak_demand_mb": 1.0, "home_node": 0}])
        assert excinfo.value.code == 503
        assert b"bind_run" in excinfo.value.read()

    def test_checkpoint_without_world_is_503(self, unbound_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(f"{unbound_server.live.url}/checkpoint", b"")
        assert excinfo.value.code == 503

    def test_unknown_post_path_is_404(self, unbound_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(f"{unbound_server.live.url}/nope", b"")
        assert excinfo.value.code == 404
        assert b"/submit" in excinfo.value.read()

    def test_invalid_batch_rejected_wholesale(self):
        obs = ObsSession(record_events=False, serve=0)
        cluster = tiny_cluster()
        obs.attach(cluster, policy=object())
        try:
            obs.bind_run(collector=None, jobs=[], trace_name="t")
            good = {"program": "x", "lifetime_s": 1.0,
                    "peak_demand_mb": 1.0, "home_node": 0}
            bad = {"program": "x", "lifetime_s": -1.0,
                   "peak_demand_mb": 1.0, "home_node": 0}
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(f"{obs.live.url}/submit", [good, bad])
            assert excinfo.value.code == 400
            details = json.loads(excinfo.value.read())["details"]
            assert any("job[1]" in line for line in details)
            assert obs.live.jobs_rejected == 2
            assert not obs.live._ingest_queue
        finally:
            obs.close()

    def test_submit_body_parse_errors(self):
        obs = ObsSession(record_events=False, serve=0)
        obs.attach(tiny_cluster(), policy=object())
        try:
            obs.bind_run(collector=None, jobs=[], trace_name="t")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(f"{obs.live.url}/submit", b"")
            assert excinfo.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(f"{obs.live.url}/submit", b"{not json")
            assert excinfo.value.code == 400
        finally:
            obs.close()

    def test_fork_requires_policy(self):
        obs = ObsSession(record_events=False, serve=0)
        obs.attach(tiny_cluster(), policy=object())
        try:
            obs.bind_run(collector=None, jobs=[], trace_name="t")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(f"{obs.live.url}/fork", {})
            assert excinfo.value.code == 400
        finally:
            obs.close()


def test_jsonl_body_accepted():
    """/submit accepts JSONL (one spec per line) as well as JSON."""
    obs = ObsSession(record_events=False, serve=0)
    obs.attach(tiny_cluster(), policy=object())
    try:
        obs.bind_run(collector=None, jobs=[], trace_name="t")
        lines = b"\n".join(json.dumps(
            {"program": "jl", "lifetime_s": 1.0,
             "peak_demand_mb": 1.0, "home_node": 0}).encode()
            for _ in range(3))
        status, reply = post(f"{obs.live.url}/submit", lines)
        assert status == 202 and reply["accepted"] == 3
        assert len(obs.live._ingest_queue) == 3
    finally:
        obs.close()


# ----------------------------------------------------------------------
# stdin ingest through the runner CLI
# ----------------------------------------------------------------------
def _cli(args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner"] + args,
        env=CLI_ENV, cwd=REPO_ROOT, **kwargs)


def test_cli_submit_stdin_admits_jobs(tmp_path):
    out = tmp_path / "stdin.json"
    specs = "\n".join(json.dumps(
        {"program": "stdin-job", "lifetime_s": 30.0,
         "peak_demand_mb": 16.0, "home_node": k}) for k in range(2))
    proc = _cli(["--trace", "3", "--scale", "0.05", "--serve", "0",
                 "--submit-stdin", "--export-json", str(out)],
                input=specs + "\n", text=True, capture_output=True,
                timeout=300)
    assert proc.returncode == 0, proc.stderr
    baseline = tmp_path / "base.json"
    base = _cli(["--trace", "3", "--scale", "0.05",
                 "--export-json", str(baseline)],
                text=True, capture_output=True, timeout=300)
    assert base.returncode == 0, base.stderr
    with open(out) as stream:
        with_stdin = json.load(stream)
    with open(baseline) as stream:
        without = json.load(stream)
    assert with_stdin[0]["num_jobs"] == without[0]["num_jobs"] + 2


# ----------------------------------------------------------------------
# SIGTERM: the streaming log must close at a line boundary
# ----------------------------------------------------------------------
def test_sigterm_leaves_parseable_stream_log(tmp_path):
    log = tmp_path / "events.jsonl"
    # Paced far below real time so the run is mid-flight when killed.
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.runner",
         "--trace", "3", "--scale", "0.1", "--serve", "0",
         "--pace", "30", "--stream-log", str(log)],
        env=CLI_ENV, cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + 60.0
        while time.time() < deadline:
            if log.exists() and log.stat().st_size > 2000:
                break
            time.sleep(0.1)
        else:
            pytest.fail("stream log never grew; run did not start")
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 143  # SystemExit via handler
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    lines = log.read_text().splitlines()
    assert lines, "stream log is empty"
    for line in lines:  # every line parses — no truncated tail
        json.loads(line)
