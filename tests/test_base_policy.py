"""Unit tests for shared policy machinery (repro.scheduling.base)."""

import pytest

from repro.cluster.job import JobState
from repro.scheduling import GLoadSharing
from repro.scheduling.base import LoadSharingPolicy

from helpers import drive, job, tiny_cluster


class TestWaitAccounting:
    def test_pending_wait_charged_to_queue(self):
        cluster = tiny_cluster(num_nodes=1, cpu_threshold=1)
        policy = GLoadSharing(cluster)
        first = job(work=50.0, home=0, submit=0.0)
        second = job(work=10.0, home=0, submit=0.0)
        drive(policy, [first, second])
        cluster.sim.run()
        # second waited ~50s for the slot
        assert second.acct.pending_s == pytest.approx(50.0, rel=0.05)
        assert second.acct.queue_s >= second.acct.pending_s

    def test_immediate_placement_charges_nothing(self):
        cluster = tiny_cluster()
        policy = GLoadSharing(cluster)
        a = job(work=10.0, home=0)
        drive(policy, [a])
        cluster.sim.run()
        assert a.acct.pending_s == pytest.approx(0.0)


class TestBaseHooks:
    def test_select_node_is_abstract(self):
        cluster = tiny_cluster()
        policy = LoadSharingPolicy(cluster)
        with pytest.raises(NotImplementedError):
            policy.select_node(job())

    def test_stats_counters(self):
        cluster = tiny_cluster(num_nodes=2, cpu_threshold=1)
        policy = GLoadSharing(cluster)
        jobs = [job(work=10.0, home=0, submit=float(i))
                for i in range(3)]
        drive(policy, jobs)
        cluster.sim.run()
        stats = policy.stats
        assert stats.submissions == 3
        assert stats.local_placements + stats.remote_submissions <= 3
        assert stats.pending_peak >= 0

    def test_candidates_sorted_by_idle_memory(self):
        cluster = tiny_cluster(num_nodes=3, memory_mb=100.0)
        policy = GLoadSharing(cluster)
        cluster.nodes[0].add_job(job(work=100.0, demand=80.0))
        cluster.nodes[1].add_job(job(work=100.0, demand=30.0))
        cluster.directory.refresh()
        candidates = policy.candidates_by_idle_memory()
        idles = [node.idle_memory_mb for node in candidates]
        assert idles == sorted(idles, reverse=True)

    def test_candidates_exclude_requested_node(self):
        cluster = tiny_cluster(num_nodes=3)
        policy = GLoadSharing(cluster)
        cluster.directory.refresh()
        candidates = policy.candidates_by_idle_memory(exclude=1)
        assert 1 not in [node.node_id for node in candidates]


class TestMigrationGuards:
    def test_cannot_migrate_non_running_job(self):
        cluster = tiny_cluster(num_nodes=2)
        policy = GLoadSharing(cluster)
        pending = job(work=10.0)
        assert pending.state is JobState.PENDING
        with pytest.raises(ValueError):
            policy.migrate(pending, cluster.nodes[0], cluster.nodes[1])

    def test_cooldown_blocks_remigration(self):
        cluster = tiny_cluster(num_nodes=2,
                               network_bandwidth_mbps=10000.0)
        policy = GLoadSharing(cluster, migration_cooldown_s=1000.0,
                              min_remaining_for_migration_s=1.0)
        a = job(work=500.0, demand=1.0)
        cluster.nodes[0].add_job(a)
        assert policy._migratable(a)
        policy.migrate(a, cluster.nodes[0], cluster.nodes[1])
        cluster.sim.run(until=5.0)
        assert not policy._migratable(a)

    def test_payoff_bound_blocks_expensive_migration(self):
        # 190MB image at 10Mbps ~ 160s; job with 100s remaining fails
        # the 2x-payoff rule.
        cluster = tiny_cluster(num_nodes=2,
                               network_bandwidth_mbps=10.0)
        policy = GLoadSharing(cluster)
        short = job(work=100.0, demand=190.0)
        cluster.nodes[0].add_job(short)
        assert not policy._migratable(short)

    def test_migration_preserves_accounting_identity(self):
        cluster = tiny_cluster(num_nodes=2,
                               network_bandwidth_mbps=100.0)
        policy = GLoadSharing(cluster, migration_cooldown_s=0.0,
                              min_remaining_for_migration_s=1.0)
        a = job(work=100.0, demand=50.0)
        cluster.nodes[0].add_job(a)
        cluster.sim.run(until=20.0)
        policy.migrate(a, cluster.nodes[0], cluster.nodes[1])
        cluster.sim.run()
        assert a.finished
        wall = a.finish_time - a.submit_time
        acct = (a.acct.cpu_s + a.acct.page_s + a.acct.io_s
                + a.acct.queue_s + a.acct.migration_s)
        assert acct == pytest.approx(wall, rel=1e-6)
        assert a.acct.migration_s > 0
