"""ObsSession streaming logs, bounded buffers, and Prometheus export."""

import io
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.session import ObsSession

from helpers import job, tiny_cluster


def streamed_run(**session_kwargs):
    cluster = tiny_cluster()
    obs = ObsSession(**session_kwargs)
    obs.attach(cluster)
    for i in range(3):
        cluster.nodes[i].add_job(job(work=10.0, demand=20.0))
    cluster.sim.run()
    return cluster, obs


class TestStreamingLog:
    def test_streams_to_path_and_closes_on_finalize(self, tmp_path):
        target = tmp_path / "run.jsonl"
        _, obs = streamed_run(record_events=False,
                              stream_log=str(target))
        snapshot = obs.finalize()
        records = [json.loads(line)
                   for line in target.read_text().splitlines()]
        assert records
        assert snapshot["streamed_events"] == len(records)
        assert {"t", "channel", "kind"} <= set(records[0])
        assert obs._stream is None  # session-owned handle closed

    def test_streams_to_caller_owned_handle(self):
        buffer = io.StringIO()
        _, obs = streamed_run(record_events=False, stream_log=buffer)
        obs.finalize()
        assert not buffer.closed  # caller-owned: flushed, not closed
        lines = buffer.getvalue().splitlines()
        assert lines and json.loads(lines[0])

    def test_stream_is_line_buffered_for_tailing(self, tmp_path):
        # A `tail -f` consumer must see complete lines *during* the
        # run, not only after finalize flushes/closes the handle.
        target = tmp_path / "run.jsonl"
        cluster = tiny_cluster()
        obs = ObsSession(record_events=False, stream_log=str(target))
        obs.attach(cluster)
        for i in range(3):
            cluster.nodes[i].add_job(job(work=10.0, demand=20.0))
        cluster.sim.run(until=5.0)  # mid-run: stream still open
        lines = target.read_text().splitlines()
        assert lines, "no events visible before finalize"
        for line in lines:
            json.loads(line)  # every visible line is complete JSON
        cluster.sim.run()
        obs.finalize()

    def test_stream_matches_recorded_events(self):
        buffer = io.StringIO()
        _, obs = streamed_run(record_events=True, stream_log=buffer)
        obs.finalize()
        streamed = [json.loads(line)
                    for line in buffer.getvalue().splitlines()]
        assert streamed == [e.to_jsonable() for e in obs.events]


class TestBoundedBuffer:
    def test_max_events_must_be_positive(self):
        for bad in (0, -5):
            with pytest.raises(ValueError, match="positive"):
                ObsSession(max_events=bad)

    def test_ring_keeps_the_newest_events(self):
        _, unbounded = streamed_run(record_events=True)
        total = len(unbounded.events)
        cap = max(1, total // 2)
        _, bounded = streamed_run(record_events=True, max_events=cap)
        assert len(bounded.events) == cap
        # Same run (job ids differ by the global counter), so the ring
        # holds exactly the newest events.
        def shape(events):
            return [(e.channel, e.time, e.kind) for e in events]

        assert shape(bounded.events) == shape(unbounded.events)[-cap:]

    def test_recorded_events_gauge_reports_the_ring_size(self):
        _, obs = streamed_run(record_events=True, max_events=5)
        assert obs.finalize()["recorded_events"] == 5.0

    def test_trace_export_works_from_the_ring(self):
        _, obs = streamed_run(record_events=True, max_events=4)
        document = obs.write_trace(io.StringIO())
        assert document["otherData"]["events"] == 4


class TestPromExport:
    def test_registry_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("migrations").inc(3)
        registry.gauge("idle-memory.mb").set(12.5)
        registry.histogram("delay_s").observe(1.0)
        registry.histogram("delay_s").observe(3.0)
        buffer = io.StringIO()
        count = registry.write_prom(buffer, namespace="repro",
                                    labels={"run": 'a"b\\c'})
        text = buffer.getvalue()
        samples = [line for line in text.splitlines()
                   if line and not line.startswith("#")]
        assert count == len(samples)  # returns the sample count
        assert "# TYPE repro_migrations counter" in text
        assert 'repro_migrations{run="a\\"b\\\\c"} 3' in text
        # Bad metric characters are sanitized for Prometheus.
        assert "# TYPE repro_idle_memory_mb gauge" in text
        assert "# TYPE repro_delay_s summary" in text
        assert 'repro_delay_s_count{run="a\\"b\\\\c"} 2' in text
        assert 'repro_delay_s_sum{run="a\\"b\\\\c"} 4' in text
        assert "repro_delay_s_avg" in text

    def test_no_labels(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        buffer = io.StringIO()
        registry.write_prom(buffer, labels={})
        assert "repro_hits 1" in buffer.getvalue()

    def test_session_write_prom_defaults_to_run_label(self, tmp_path):
        _, obs = streamed_run(record_events=False,
                              run_label="prom-test")
        target = tmp_path / "metrics.prom"
        count = obs.write_prom(str(target))
        text = target.read_text()
        assert count > 0
        assert 'run="prom-test"' in text
        assert "repro_sim_events_executed" in text
