"""Engine self-profiler: exclusive timers, coverage, determinism, and
the Perfetto self-profile track."""

import dataclasses
import json
import time

import pytest

from repro.experiments.scenario import run_blocking_scenario
from repro.obs.profile import OTHER_PHASE, EngineProfiler
from repro.obs.session import ObsSession
from repro.obs.trace_export import PROFILE_PID, chrome_trace

from helpers import job, tiny_cluster


class TestTimerCore:
    def test_exclusive_times_subtract_children(self):
        profiler = EngineProfiler()
        profiler._enter("parent")
        time.sleep(0.01)
        profiler._enter("child")
        time.sleep(0.01)
        profiler._exit()
        profiler._exit()
        # The child's wall time is charged to the child only.
        assert profiler.exclusive_s["child"] >= 0.008
        assert profiler.exclusive_s["parent"] < (
            profiler.exclusive_s["child"] + profiler.exclusive_s["parent"])
        assert profiler.calls == {"parent": 1, "child": 1}

    def test_wrap_method_missing_attr(self):
        profiler = EngineProfiler()
        assert profiler.wrap_method(object(), "nope", "x") is False
        assert profiler._wrapped == []

    def test_wrap_and_detach_restore_class_method(self):
        cluster = tiny_cluster()
        node = cluster.nodes[0]
        original = node._recompute
        profiler = EngineProfiler().attach(cluster)
        assert node._recompute is not original
        assert node._recompute.__wrapped__ == original
        profiler.detach()
        # The instance attribute is gone; the class method shows again.
        assert "_recompute" not in vars(node)

    def test_coverage_zero_before_any_run(self):
        assert EngineProfiler().coverage() == 0.0


class TestProfiledRun:
    @pytest.fixture(scope="class")
    def profiled(self):
        obs = ObsSession(record_events=True, profile=True,
                         run_label="profile-test")
        result = run_blocking_scenario("v-reconfiguration", obs=obs)
        return obs, result

    def test_phase_timers_tile_engine_wall(self, profiled):
        obs, _ = profiled
        report = obs.profiler.report()
        assert report["engine_wall_s"] > 0
        # Exclusive timers tile the inclusive span (acceptance: >= 90%).
        assert report["coverage"] >= 0.9
        assert report["coverage"] <= 1.05  # no double counting

    def test_expected_phases_fired(self, profiled):
        obs, _ = profiled
        phases = obs.profiler.report()["phases_s"]
        for phase in ("recompute", "placement", "reconfiguration",
                      "loadinfo", OTHER_PHASE):
            assert phase in phases, phases
            assert phases[phase] >= 0.0
        assert obs.profiler.calls["recompute"] > 0

    def test_aggregates_reach_summary_extra(self, profiled):
        _, result = profiled
        extra = result.summary.extra
        assert extra["obs.profile_coverage"] >= 0.9
        assert extra["obs.profile_engine_wall_s"] > 0
        assert extra["obs.profile_recompute_calls"] > 0

    def test_profiling_is_deterministic(self, profiled):
        _, profiled_result = profiled
        plain = run_blocking_scenario("v-reconfiguration")
        stripped = {
            key: value
            for key, value in profiled_result.summary.extra.items()
            if not key.startswith("obs.")}
        assert dataclasses.replace(
            profiled_result.summary,
            extra=stripped) == dataclasses.replace(
            plain.summary, extra={
                key: value
                for key, value in plain.summary.extra.items()
                if not key.startswith("obs.")})

    def test_profile_track_in_chrome_trace(self, profiled):
        obs, _ = profiled
        trace = chrome_trace(obs.events, run_label="profile-test",
                             profile=obs.profiler)
        profile_events = [event for event in trace["traceEvents"]
                          if event.get("pid") == PROFILE_PID]
        spans = [event for event in profile_events
                 if event.get("ph") == "X"]
        names = {span["name"] for span in spans}
        assert "engine loop" in names
        assert "recompute" in names
        # Phase spans are laid end-to-end and stay inside the loop span.
        loop = next(span for span in spans
                    if span["name"] == "engine loop")
        for span in spans:
            if span["name"] != "engine loop":
                assert span["ts"] >= loop["ts"]
                assert (span["ts"] + span["dur"]
                        <= loop["ts"] + loop["dur"] + 1)
        trace_json = json.dumps(trace)
        assert "self-profile track" in trace_json

    def test_trace_without_profiler_has_no_profile_track(self, profiled):
        obs, _ = profiled
        trace = chrome_trace(obs.events, run_label="profile-test")
        assert not [event for event in trace["traceEvents"]
                    if event.get("pid") == PROFILE_PID]
