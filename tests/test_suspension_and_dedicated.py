"""Tests for the suspension baseline and dedicated-service priority."""

import pytest

from repro.cluster.job import JobState
from repro.scheduling import SuspensionPolicy

from helpers import job, tiny_cluster


class TestSuspensionPolicy:
    def build_blocked(self):
        """Same geometry as the reconfiguration tests: one wedge, the
        rest of the cluster slot-capped."""
        cluster = tiny_cluster(num_nodes=3, memory_mb=100.0,
                               cpu_threshold=2)
        policy = SuspensionPolicy(cluster, migration_cooldown_s=0.0,
                                  min_remaining_for_migration_s=1.0)
        hog = job(work=400.0, demand=90.0)
        small = job(work=400.0, demand=60.0)
        cluster.nodes[0].add_job(hog)
        cluster.nodes[0].add_job(small)
        fillers = []
        for node_id in (1, 2):
            for _ in range(2):
                filler = job(work=100.0, demand=10.0)
                cluster.nodes[node_id].add_job(filler)
                fillers.append(filler)
        return cluster, policy, hog, small, fillers

    def test_suspends_blocked_hog(self):
        cluster, policy, hog, _, _ = self.build_blocked()
        cluster.sim.run(until=20.0)
        assert hog.state is JobState.SUSPENDED
        assert hog in policy.suspended_jobs
        assert policy.stats.extra.get("suspensions", 0) >= 1

    def test_suspension_relieves_node(self):
        cluster, policy, hog, _, _ = self.build_blocked()
        cluster.sim.run(until=20.0)
        assert not cluster.nodes[0].thrashing

    def test_resumes_when_capacity_frees(self):
        cluster, policy, hog, _, fillers = self.build_blocked()
        cluster.sim.run()
        assert hog.finished
        assert all(f.finished for f in fillers)

    def test_unfairness_to_large_jobs(self):
        """The paper's §1 criticism: the suspended large job waits for
        the cluster, accruing queue time it never gets back."""
        cluster, policy, hog, small, _ = self.build_blocked()
        cluster.sim.run()
        assert hog.acct.pending_s > 0
        assert hog.finish_time > small.finish_time


class TestDedicatedService:
    def test_dedicated_job_gets_priority(self):
        cluster = tiny_cluster(num_nodes=1, memory_mb=1000.0,
                               cpu_threshold=8)
        node = cluster.nodes[0]
        vip = job(work=100.0, demand=10.0)
        vip.dedicated = True
        others = [job(work=100.0, demand=10.0) for _ in range(3)]
        node.add_job(vip)
        for other in others:
            node.add_job(other)
        cluster.sim.run()
        # the dedicated job finishes well before the equal-share jobs
        assert vip.finish_time < min(o.finish_time for o in others)
        assert vip.slowdown() < 1.5

    def test_co_residents_keep_a_share(self):
        """Special service is not starvation: co-resident jobs retain
        a quarter of the node."""
        cluster = tiny_cluster(num_nodes=1, memory_mb=1000.0,
                               cpu_threshold=8)
        node = cluster.nodes[0]
        vip = job(work=500.0, demand=10.0)
        vip.dedicated = True
        bystander = job(work=200.0, demand=10.0)
        node.add_job(vip)
        node.add_job(bystander)
        cluster.sim.run(until=250.0)
        node.running_jobs  # bring lazily-advanced progress up to date
        # bystander progressed at roughly a quarter rate
        assert bystander.progress_s >= 0.22 * 250.0
        assert bystander.progress_s <= 0.35 * 250.0

    def test_no_dedicated_means_fair_share(self):
        cluster = tiny_cluster(num_nodes=1, memory_mb=1000.0,
                               cpu_threshold=8)
        node = cluster.nodes[0]
        jobs = [job(work=100.0, demand=10.0) for _ in range(2)]
        for j in jobs:
            node.add_job(j)
        cluster.sim.run(until=50.0)
        assert jobs[0].progress_s == pytest.approx(jobs[1].progress_s)
