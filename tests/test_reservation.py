"""Unit tests for the reservation lifecycle (§2.1)."""

import pytest

from repro.core.reservation import (
    ReservationManager,
    ReservationMode,
    ReservationState,
)

from helpers import job, tiny_cluster


def manager(cluster, **kwargs):
    defaults = dict(mode=ReservationMode.DRAIN_ALL, max_reserved=2,
                    reserve_timeout_s=0.0)
    defaults.update(kwargs)
    return ReservationManager(cluster, **defaults)


class TestReserve:
    def test_reserve_blocks_submissions(self):
        cluster = tiny_cluster()
        mgr = manager(cluster)
        reservation = mgr.reserve(cluster.nodes[0], needed_mb=50.0)
        assert cluster.nodes[0].reserved
        assert not cluster.nodes[0].accepting
        assert reservation.state is ReservationState.RESERVING

    def test_idle_node_is_ready_immediately(self):
        cluster = tiny_cluster()
        mgr = manager(cluster)
        ready = []
        mgr.on_ready = ready.append
        reservation = mgr.reserve(cluster.nodes[0], needed_mb=50.0)
        assert ready == [reservation]

    def test_drain_all_waits_for_all_jobs(self):
        cluster = tiny_cluster()
        mgr = manager(cluster)
        ready = []
        mgr.on_ready = ready.append
        short = job(work=10.0, demand=10.0)
        long_ = job(work=30.0, demand=10.0)
        cluster.nodes[0].add_job(short)
        cluster.nodes[0].add_job(long_)
        mgr.reserve(cluster.nodes[0], needed_mb=50.0)
        cluster.sim.run(until=25.0)
        assert not ready  # short done, long still running
        cluster.sim.run()
        assert len(ready) == 1

    def test_first_fit_ready_when_memory_frees(self):
        cluster = tiny_cluster(memory_mb=100.0)
        mgr = manager(cluster, mode=ReservationMode.FIRST_FIT)
        ready = []
        mgr.on_ready = ready.append
        short = job(work=10.0, demand=40.0)
        long_ = job(work=1000.0, demand=30.0)
        cluster.nodes[0].add_job(short)
        cluster.nodes[0].add_job(long_)
        mgr.reserve(cluster.nodes[0], needed_mb=60.0)  # idle is 30 now
        cluster.sim.run(until=50.0)
        # short's 40MB freed -> idle 70 >= 60 although long still runs
        assert len(ready) == 1

    def test_double_reserve_rejected(self):
        cluster = tiny_cluster()
        mgr = manager(cluster)
        mgr.reserve(cluster.nodes[0], needed_mb=1.0)
        with pytest.raises(ValueError):
            mgr.reserve(cluster.nodes[0], needed_mb=1.0)

    def test_max_reserved_enforced(self):
        cluster = tiny_cluster()
        mgr = manager(cluster, max_reserved=1)
        mgr.reserve(cluster.nodes[0], needed_mb=1.0)
        assert not mgr.can_reserve()
        with pytest.raises(ValueError):
            mgr.reserve(cluster.nodes[1], needed_mb=1.0)

    def test_cannot_allow_reserving_every_node(self):
        cluster = tiny_cluster(num_nodes=4)
        with pytest.raises(ValueError):
            ReservationManager(cluster, max_reserved=4)
        with pytest.raises(ValueError):
            ReservationManager(cluster, max_reserved=0)


class TestServeAndRelease:
    def serve_one(self, cluster, mgr):
        reservation = mgr.reserve(cluster.nodes[0], needed_mb=50.0)
        big = job(work=20.0, demand=50.0)
        mgr.assign(reservation, big)
        cluster.nodes[0].add_job(big)
        mgr.job_arrived(reservation, big)
        return reservation, big

    def test_assign_moves_to_serving(self):
        cluster = tiny_cluster()
        mgr = manager(cluster)
        reservation, _ = self.serve_one(cluster, mgr)
        assert reservation.state is ReservationState.SERVING

    def test_release_when_migrated_jobs_complete(self):
        cluster = tiny_cluster()
        mgr = manager(cluster)
        reservation, big = self.serve_one(cluster, mgr)
        cluster.sim.run()
        assert big.finished
        assert reservation.state is ReservationState.RELEASED
        assert not cluster.nodes[0].reserved

    def test_release_notifies_node_change(self):
        cluster = tiny_cluster()
        changed = []
        cluster.on_node_changed(lambda node: changed.append(node.node_id))
        mgr = manager(cluster)
        self.serve_one(cluster, mgr)
        cluster.sim.run()
        assert 0 in changed

    def test_not_released_while_inbound_in_flight(self):
        cluster = tiny_cluster()
        mgr = manager(cluster)
        reservation, big = self.serve_one(cluster, mgr)
        second = job(work=50.0, demand=20.0)
        mgr.assign(reservation, second)  # in flight, never arrives yet
        cluster.sim.run(until=30.0)
        assert big.finished
        assert reservation.state is ReservationState.SERVING

    def test_reuse_capacity_check(self):
        cluster = tiny_cluster(memory_mb=100.0)
        mgr = manager(cluster)
        reservation, _ = self.serve_one(cluster, mgr)
        fits = job(work=10.0, demand=40.0)
        too_big = job(work=10.0, demand=60.0)
        assert mgr.serving_reservation_with_capacity(fits) is reservation
        assert mgr.serving_reservation_with_capacity(too_big) is None

    def test_local_leftovers_do_not_extend_reservation(self):
        """First-fit mode: the reservation ends when migrated jobs are
        done even if pre-existing local jobs still run."""
        cluster = tiny_cluster(memory_mb=100.0)
        mgr = manager(cluster, mode=ReservationMode.FIRST_FIT)
        leftover = job(work=1000.0, demand=10.0)
        cluster.nodes[0].add_job(leftover)
        reservation = mgr.reserve(cluster.nodes[0], needed_mb=40.0)
        big = job(work=20.0, demand=40.0)
        mgr.assign(reservation, big)
        cluster.nodes[0].add_job(big)
        mgr.job_arrived(reservation, big)
        cluster.sim.run(until=200.0)
        assert big.finished
        assert not leftover.finished
        assert reservation.state is ReservationState.RELEASED


class TestCancelAndTimeout:
    def test_cancel_returns_node_to_normal(self):
        cluster = tiny_cluster()
        mgr = manager(cluster)
        cluster.nodes[0].add_job(job(work=100.0))
        reservation = mgr.reserve(cluster.nodes[0], needed_mb=1.0)
        mgr.cancel(reservation)
        assert reservation.state is ReservationState.CANCELLED
        assert not cluster.nodes[0].reserved

    def test_cancel_only_affects_reserving_state(self):
        cluster = tiny_cluster()
        mgr = manager(cluster)
        reservation = mgr.reserve(cluster.nodes[0], needed_mb=1.0)
        big = job(work=10.0, demand=1.0)
        mgr.assign(reservation, big)
        mgr.cancel(reservation)  # no-op: already serving
        assert reservation.state is ReservationState.SERVING

    def test_timeout_cancels_stale_reserving_period(self):
        cluster = tiny_cluster()
        mgr = manager(cluster, reserve_timeout_s=50.0)
        cluster.nodes[0].add_job(job(work=1000.0))
        reservation = mgr.reserve(cluster.nodes[0], needed_mb=1.0)
        cluster.sim.run(until=60.0)
        assert reservation.state is ReservationState.CANCELLED
        assert not cluster.nodes[0].reserved

    def test_timeline_records_lifecycle(self):
        cluster = tiny_cluster()
        mgr = manager(cluster)
        reservation = mgr.reserve(cluster.nodes[0], needed_mb=1.0)
        big = job(work=5.0, demand=1.0)
        mgr.assign(reservation, big)
        cluster.nodes[0].add_job(big)
        mgr.job_arrived(reservation, big)
        cluster.sim.run()
        kinds = [event.kind for event in mgr.timeline]
        assert kinds == ["reserve", "ready", "assign", "arrive", "release"]
