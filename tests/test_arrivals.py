"""Unit tests for the lognormal arrival process (paper eq. 1)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.arrivals import (
    TRACE_SPECS,
    LognormalArrivals,
    lognormal_rate,
    trace_spec,
)


class TestRateFunction:
    def test_zero_for_nonpositive_t(self):
        assert lognormal_rate(0.0, 3.0, 3.0) == 0.0
        assert lognormal_rate(-5.0, 3.0, 3.0) == 0.0

    def test_positive_for_positive_t(self):
        assert lognormal_rate(10.0, 3.0, 3.0) > 0.0

    def test_integrates_to_one(self):
        """R_ln is a probability density: its integral over (0, inf) is 1."""
        mu = sigma = 2.0
        total, t, dt = 0.0, 1e-4, 0.01
        while t < 5e4:
            total += lognormal_rate(t, mu, sigma) * dt
            t += dt
            dt *= 1.002  # geometric grid for the long tail
        assert total == pytest.approx(1.0, rel=0.02)

    def test_mode_at_exp_mu_minus_sigma_squared(self):
        mu, sigma = 3.0, 1.0
        mode = math.exp(mu - sigma ** 2)
        below = lognormal_rate(mode * 0.8, mu, sigma)
        at = lognormal_rate(mode, mu, sigma)
        above = lognormal_rate(mode * 1.2, mu, sigma)
        assert at > below and at > above


class TestTraceSpecs:
    def test_five_published_specs(self):
        assert len(TRACE_SPECS) == 5
        volumes = [spec.num_jobs for spec in TRACE_SPECS]
        assert volumes == [359, 448, 578, 684, 777]

    def test_parameters_match_paper(self):
        assert (TRACE_SPECS[0].sigma, TRACE_SPECS[0].mu) == (4.0, 4.0)
        assert (TRACE_SPECS[1].sigma, TRACE_SPECS[1].mu) == (3.7, 3.7)
        assert (TRACE_SPECS[2].sigma, TRACE_SPECS[2].mu) == (3.0, 3.0)
        assert (TRACE_SPECS[3].sigma, TRACE_SPECS[3].mu) == (2.0, 2.0)
        assert (TRACE_SPECS[4].sigma, TRACE_SPECS[4].mu) == (1.5, 1.5)

    def test_durations_are_about_an_hour(self):
        for spec in TRACE_SPECS:
            assert 3580.0 <= spec.duration_s <= 3590.0

    def test_trace_spec_lookup(self):
        assert trace_spec(3).num_jobs == 578
        with pytest.raises(ValueError):
            trace_spec(0)
        with pytest.raises(ValueError):
            trace_spec(6)


class TestArrivalPlacement:
    def test_exactly_the_published_job_count(self):
        for spec in TRACE_SPECS:
            times = LognormalArrivals(spec).arrival_times()
            assert len(times) == spec.num_jobs

    def test_all_arrivals_within_duration(self):
        for spec in TRACE_SPECS:
            times = LognormalArrivals(spec).arrival_times()
            assert all(0.0 < t <= spec.duration_s + 1e-6 for t in times)

    def test_last_arrival_at_duration(self):
        """Normalization pins the span to the published duration."""
        spec = trace_spec(3)
        times = LognormalArrivals(spec).arrival_times()
        assert times[-1] == pytest.approx(spec.duration_s)

    def test_deterministic_without_rng(self):
        spec = trace_spec(3)
        a = LognormalArrivals(spec).arrival_times()
        b = LognormalArrivals(spec).arrival_times()
        assert a == b

    def test_different_rngs_differ(self):
        spec = trace_spec(3)
        a = LognormalArrivals(spec, rng=random.Random(1)).arrival_times()
        b = LognormalArrivals(spec, rng=random.Random(2)).arrival_times()
        assert a != b

    def test_arrivals_sorted_strictly(self):
        for spec in TRACE_SPECS:
            times = LognormalArrivals(spec).arrival_times()
            assert all(b > a for a, b in zip(times, times[1:]))

    def test_arrivals_spread_over_the_hour(self):
        """No decile of the window is empty (the winsorized model does
        not produce multi-hundred-second dead zones)."""
        for spec in TRACE_SPECS:
            times = LognormalArrivals(spec).arrival_times()
            bins = [0] * 10
            for t in times:
                bins[min(9, int(t / spec.duration_s * 10))] += 1
            assert all(count > 0 for count in bins), (spec.index, bins)

    def test_burstiness_decreases_with_intensity(self):
        """Trace 1 (sigma=4) is burstier than trace 5 (sigma=1.5)."""
        b1 = LognormalArrivals(trace_spec(1)).burstiness()
        b5 = LognormalArrivals(trace_spec(5)).burstiness()
        assert b1 > b5

    def test_mean_rate_increases_with_trace_index(self):
        rates = [spec.num_jobs / spec.duration_s for spec in TRACE_SPECS]
        assert rates == sorted(rates)

    def test_invalid_winsorize_quantile(self):
        with pytest.raises(ValueError):
            LognormalArrivals(trace_spec(1), winsorize_quantile=0.0)
        with pytest.raises(ValueError):
            LognormalArrivals(trace_spec(1), winsorize_quantile=1.5)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_placement_properties(self, seed):
        spec = trace_spec(2)
        times = LognormalArrivals(
            spec, rng=random.Random(seed)).arrival_times()
        assert len(times) == spec.num_jobs
        assert times == sorted(times)
        assert all(t > 0 for t in times)
        assert times[-1] == pytest.approx(spec.duration_s)
