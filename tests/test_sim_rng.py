"""Unit tests for named random streams."""

from repro.sim import RandomStreams
from repro.sim.rng import derive_seed


def test_same_label_returns_same_stream():
    streams = RandomStreams(seed=7)
    assert streams.stream("arrivals") is streams.stream("arrivals")


def test_streams_are_reproducible_across_instances():
    a = RandomStreams(seed=7).stream("arrivals")
    b = RandomStreams(seed=7).stream("arrivals")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_labels_give_independent_sequences():
    streams = RandomStreams(seed=7)
    xs = [streams.stream("x").random() for _ in range(5)]
    ys = [streams.stream("y").random() for _ in range(5)]
    assert xs != ys


def test_different_seeds_give_different_sequences():
    a = RandomStreams(seed=1).stream("s")
    b = RandomStreams(seed=2).stream("s")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_derive_seed_is_deterministic_and_label_sensitive():
    assert derive_seed(42, "foo") == derive_seed(42, "foo")
    assert derive_seed(42, "foo") != derive_seed(42, "bar")
    assert derive_seed(42, "foo") != derive_seed(43, "foo")


def test_spawn_creates_independent_child_factory():
    parent = RandomStreams(seed=7)
    child1 = parent.spawn("worker")
    child2 = parent.spawn("worker")
    assert child1.seed == child2.seed
    assert child1.seed != parent.seed
    s1 = [child1.stream("x").random() for _ in range(3)]
    s2 = [child2.stream("x").random() for _ in range(3)]
    assert s1 == s2
