"""Validate the simulation substrate against queueing theory.

These are the strongest correctness checks in the suite: if the CPU
model, event engine, or accounting were wrong, the measured averages
would not land on the closed-form values.
"""

import random

import pytest

from repro.analysis.queueing import (
    mm1_mean_sojourn,
    ps_mean_slowdown,
    run_single_node,
)


class TestClosedForms:
    def test_ps_slowdown_formula(self):
        assert ps_mean_slowdown(0.0) == 1.0
        assert ps_mean_slowdown(0.5) == pytest.approx(2.0)
        assert ps_mean_slowdown(0.9) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            ps_mean_slowdown(1.0)

    def test_mm1_formula(self):
        assert mm1_mean_sojourn(0.5, 1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            mm1_mean_sojourn(1.0, 1.0)


class TestSubstrateMatchesTheory:
    @pytest.mark.parametrize("rho", [0.3, 0.5, 0.7])
    def test_mg1_ps_mean_slowdown(self, rho):
        """M/G/1-PS: mean slowdown = 1/(1-rho), here with exponential
        service (statistical tolerance for 2k jobs)."""
        result = run_single_node(arrival_rate=rho, mean_service_s=1.0,
                                 num_jobs=2500, seed=11)
        assert result.mean_slowdown == pytest.approx(
            ps_mean_slowdown(rho), rel=0.15)

    def test_ps_insensitivity_to_service_distribution(self):
        """PS slowdown depends only on rho, not the service
        distribution — check with deterministic service times."""
        rho = 0.6
        det = run_single_node(
            arrival_rate=rho, mean_service_s=1.0, num_jobs=2500,
            seed=5, service_sampler=lambda r: 1.0)
        assert det.mean_slowdown == pytest.approx(
            ps_mean_slowdown(rho), rel=0.15)

    def test_mm1_fcfs_mean_sojourn(self):
        """CPU threshold 1 turns the node into an M/M/1 FCFS queue."""
        lam, mu = 0.5, 1.0
        result = run_single_node(arrival_rate=lam, mean_service_s=1.0,
                                 num_jobs=3000, seed=3,
                                 cpu_threshold=1)
        assert result.mean_sojourn_s == pytest.approx(
            mm1_mean_sojourn(lam, mu), rel=0.15)

    def test_utilization_law(self):
        """Measured CPU utilization matches offered load."""
        rho = 0.6
        result = run_single_node(arrival_rate=rho, mean_service_s=1.0,
                                 num_jobs=2500, seed=7)
        assert result.utilization == pytest.approx(rho, rel=0.1)

    def test_light_load_slowdown_near_one(self):
        result = run_single_node(arrival_rate=0.05, mean_service_s=1.0,
                                 num_jobs=800, seed=2)
        assert result.mean_slowdown == pytest.approx(1.05, abs=0.05)
