"""Determinism harness for the fault-injection subsystem.

Three layers of pins:

* **golden pin** — with ``faults=None`` the simulator must produce
  *byte-identical* summaries to the pre-fault-subsystem code; the
  reference summaries live in ``tests/golden/summaries_prefaults.json``
  (captured at the commit before ``repro.faults`` landed).  Every
  fault hook on the hot path reduces to one bool/None check when
  faults are off, and this pin is what enforces it.
* **replay property** — for any ``(seed, fault_seed)`` pair, running
  the same faulted scenario twice yields identical summaries (fault
  schedules derive from ``fault_seed`` alone, never from wall clock or
  iteration order).  Hypothesis drives the seed pairs.
* **process-boundary property** — a faulted sweep executed through
  worker processes returns summaries identical to the serial path
  (the :class:`RunSpec` carries the :class:`FaultConfig` by value).
* **combined-path pin** — the columnar + domain-sharded + faulted
  configuration (every optional engine layer at once) is pinned to
  ``tests/golden/summaries_combined.json``, and a mid-run
  checkpoint/restore on that path must resume byte-identically to the
  pin (the checkpoint harness crossing all the layers together).
  Regenerate after a deliberate behavior change::

      PYTHONPATH=src python tests/golden/make_combined_golden.py
"""

import dataclasses
import json
import os

from hypothesis import given, settings, strategies as st

from repro.experiments.parallel import RunSpec, run_specs
from repro.experiments.runner import run_experiment
from repro.experiments.scenario import run_blocking_scenario
from repro.faults import FaultConfig
from repro.workload.programs import WorkloadGroup

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "summaries_prefaults.json")
COMBINED_GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                                    "summaries_combined.json")

#: A failure model that exercises every fault class in one run.
#: ``checkpoint`` keeps runtimes bounded: under ``requeue`` at this
#: MTBF a job longer than a few multiples of 300 s restarts from
#: scratch nearly forever (the degradation tests cover ``requeue``
#: at gentler rates).
FULL_FAULTS = FaultConfig(mtbf_s=300.0, mttr_s=30.0,
                          crash_policy="checkpoint",
                          loadinfo_drop_prob=0.1,
                          loadinfo_delay_prob=0.1,
                          migration_failure_prob=0.3)


def canonical(summary) -> dict:
    """JSON round-trip of a RunSummary: the byte-identity currency.

    Round-tripping normalizes containers the way the golden file was
    written (dict keys become strings, tuples become lists), so equal
    canonical forms means equal serialized bytes.
    """
    return json.loads(json.dumps(dataclasses.asdict(summary),
                                 sort_keys=True))


# ----------------------------------------------------------------------
# golden pin: faults=None is byte-identical to the pre-faults code
# ----------------------------------------------------------------------
def test_faults_disabled_matches_prefaults_golden_trace_runs():
    with open(GOLDEN_PATH) as stream:
        golden = json.load(stream)
    for policy in ("g-loadsharing", "v-reconfiguration"):
        result = run_experiment(WorkloadGroup.SPEC, 3, policy=policy,
                                seed=0, scale=0.25)
        assert canonical(result.summary) == golden[f"spec-3-{policy}"], \
            f"faults-disabled {policy} run diverged from pre-faults code"


def test_faults_disabled_matches_prefaults_golden_scenario():
    with open(GOLDEN_PATH) as stream:
        golden = json.load(stream)
    for policy in ("g-loadsharing", "v-reconfiguration"):
        result = run_blocking_scenario(policy, seed=0)
        assert canonical(result.summary) == golden[f"scenario-{policy}"], \
            f"faults-disabled scenario {policy} diverged"


def test_faults_disabled_adds_no_extra_keys():
    result = run_experiment(WorkloadGroup.SPEC, 3, policy="g-loadsharing",
                            seed=0, scale=0.25)
    assert not any(key.startswith("fault.")
                   for key in result.summary.extra)


# ----------------------------------------------------------------------
# combined path: columnar + domained + faulted, pinned and restorable
# ----------------------------------------------------------------------
def combined_config():
    """Every optional engine layer at once: columnar state (default),
    8 load-info domains, and the all-fault-classes failure model."""
    from repro.experiments.scenario import SCENARIO_CLUSTER

    return SCENARIO_CLUSTER.replace(domains=8, faults=FULL_FAULTS)


def test_combined_path_matches_golden():
    with open(COMBINED_GOLDEN_PATH) as stream:
        golden = json.load(stream)
    for policy in ("g-loadsharing", "v-reconfiguration"):
        result = run_blocking_scenario(policy, seed=0,
                                       config=combined_config())
        assert canonical(result.summary) == \
            golden[f"scenario-combined-{policy}"], \
            f"combined columnar+domained+faulted {policy} run diverged"


def test_combined_path_restores_byte_identically(tmp_path):
    """Mid-run checkpoint/restore determinism on the combined path:
    the restored remainder must land exactly on the committed golden
    (same currency as the uninterrupted pin above)."""
    from repro.sim.checkpoint import load_checkpoint, resume

    with open(COMBINED_GOLDEN_PATH) as stream:
        golden = json.load(stream)
    for policy in ("g-loadsharing", "v-reconfiguration"):
        path = str(tmp_path / f"{policy}.ckpt")
        run_blocking_scenario(policy, seed=0, config=combined_config(),
                              checkpoint_at=250.0, checkpoint_to=path)
        resumed = resume(load_checkpoint(path))
        assert canonical(resumed.summary) == \
            golden[f"scenario-combined-{policy}"], \
            f"combined-path restore diverged for {policy}"


# ----------------------------------------------------------------------
# replay property: (seed, fault_seed) fully determines the run
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 3), fault_seed=st.integers(0, 3),
       policy=st.sampled_from(["g-loadsharing", "v-reconfiguration"]))
def test_same_seed_pair_replays_identically(seed, fault_seed, policy):
    faults = FULL_FAULTS.replace(fault_seed=fault_seed)

    def run():
        return run_blocking_scenario(policy, seed=seed, num_nodes=8,
                                     faults=faults).summary

    assert canonical(run()) == canonical(run())


def test_fault_seed_actually_changes_the_fault_schedule():
    def crashes(fault_seed):
        faults = FULL_FAULTS.replace(fault_seed=fault_seed)
        summary = run_blocking_scenario("g-loadsharing", seed=0,
                                        num_nodes=8,
                                        faults=faults).summary
        return summary.extra["fault.crashes"], summary.makespan_s

    assert crashes(0) != crashes(1)


# ----------------------------------------------------------------------
# process boundary: serial == parallel with faults enabled
# ----------------------------------------------------------------------
def test_faulted_sweep_identical_across_process_boundary():
    specs = [RunSpec(group=WorkloadGroup.SPEC, trace_index=3,
                     policy=policy, seed=0, scale=0.25,
                     faults=FULL_FAULTS.replace(fault_seed=fault_seed))
             for policy in ("g-loadsharing", "v-reconfiguration")
             for fault_seed in (0, 1)]
    serial = run_specs(specs, jobs=1)
    parallel = run_specs(specs, jobs=2)
    for spec, s, p in zip(specs, serial, parallel):
        assert canonical(s) == canonical(p), \
            f"serial != parallel for {spec.describe()}"
    assert all(s.extra["fault.crashes"] > 0 for s in serial)
