"""Determinism harness for the fault-injection subsystem.

Three layers of pins:

* **golden pin** — with ``faults=None`` the simulator must produce
  *byte-identical* summaries to the pre-fault-subsystem code; the
  reference summaries live in ``tests/golden/summaries_prefaults.json``
  (captured at the commit before ``repro.faults`` landed).  Every
  fault hook on the hot path reduces to one bool/None check when
  faults are off, and this pin is what enforces it.
* **replay property** — for any ``(seed, fault_seed)`` pair, running
  the same faulted scenario twice yields identical summaries (fault
  schedules derive from ``fault_seed`` alone, never from wall clock or
  iteration order).  Hypothesis drives the seed pairs.
* **process-boundary property** — a faulted sweep executed through
  worker processes returns summaries identical to the serial path
  (the :class:`RunSpec` carries the :class:`FaultConfig` by value).
"""

import dataclasses
import json
import os

from hypothesis import given, settings, strategies as st

from repro.experiments.parallel import RunSpec, run_specs
from repro.experiments.runner import run_experiment
from repro.experiments.scenario import run_blocking_scenario
from repro.faults import FaultConfig
from repro.workload.programs import WorkloadGroup

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "summaries_prefaults.json")

#: A failure model that exercises every fault class in one run.
#: ``checkpoint`` keeps runtimes bounded: under ``requeue`` at this
#: MTBF a job longer than a few multiples of 300 s restarts from
#: scratch nearly forever (the degradation tests cover ``requeue``
#: at gentler rates).
FULL_FAULTS = FaultConfig(mtbf_s=300.0, mttr_s=30.0,
                          crash_policy="checkpoint",
                          loadinfo_drop_prob=0.1,
                          loadinfo_delay_prob=0.1,
                          migration_failure_prob=0.3)


def canonical(summary) -> dict:
    """JSON round-trip of a RunSummary: the byte-identity currency.

    Round-tripping normalizes containers the way the golden file was
    written (dict keys become strings, tuples become lists), so equal
    canonical forms means equal serialized bytes.
    """
    return json.loads(json.dumps(dataclasses.asdict(summary),
                                 sort_keys=True))


# ----------------------------------------------------------------------
# golden pin: faults=None is byte-identical to the pre-faults code
# ----------------------------------------------------------------------
def test_faults_disabled_matches_prefaults_golden_trace_runs():
    with open(GOLDEN_PATH) as stream:
        golden = json.load(stream)
    for policy in ("g-loadsharing", "v-reconfiguration"):
        result = run_experiment(WorkloadGroup.SPEC, 3, policy=policy,
                                seed=0, scale=0.25)
        assert canonical(result.summary) == golden[f"spec-3-{policy}"], \
            f"faults-disabled {policy} run diverged from pre-faults code"


def test_faults_disabled_matches_prefaults_golden_scenario():
    with open(GOLDEN_PATH) as stream:
        golden = json.load(stream)
    for policy in ("g-loadsharing", "v-reconfiguration"):
        result = run_blocking_scenario(policy, seed=0)
        assert canonical(result.summary) == golden[f"scenario-{policy}"], \
            f"faults-disabled scenario {policy} diverged"


def test_faults_disabled_adds_no_extra_keys():
    result = run_experiment(WorkloadGroup.SPEC, 3, policy="g-loadsharing",
                            seed=0, scale=0.25)
    assert not any(key.startswith("fault.")
                   for key in result.summary.extra)


# ----------------------------------------------------------------------
# replay property: (seed, fault_seed) fully determines the run
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 3), fault_seed=st.integers(0, 3),
       policy=st.sampled_from(["g-loadsharing", "v-reconfiguration"]))
def test_same_seed_pair_replays_identically(seed, fault_seed, policy):
    faults = FULL_FAULTS.replace(fault_seed=fault_seed)

    def run():
        return run_blocking_scenario(policy, seed=seed, num_nodes=8,
                                     faults=faults).summary

    assert canonical(run()) == canonical(run())


def test_fault_seed_actually_changes_the_fault_schedule():
    def crashes(fault_seed):
        faults = FULL_FAULTS.replace(fault_seed=fault_seed)
        summary = run_blocking_scenario("g-loadsharing", seed=0,
                                        num_nodes=8,
                                        faults=faults).summary
        return summary.extra["fault.crashes"], summary.makespan_s

    assert crashes(0) != crashes(1)


# ----------------------------------------------------------------------
# process boundary: serial == parallel with faults enabled
# ----------------------------------------------------------------------
def test_faulted_sweep_identical_across_process_boundary():
    specs = [RunSpec(group=WorkloadGroup.SPEC, trace_index=3,
                     policy=policy, seed=0, scale=0.25,
                     faults=FULL_FAULTS.replace(fault_seed=fault_seed))
             for policy in ("g-loadsharing", "v-reconfiguration")
             for fault_seed in (0, 1)]
    serial = run_specs(specs, jobs=1)
    parallel = run_specs(specs, jobs=2)
    for spec, s, p in zip(specs, serial, parallel):
        assert canonical(s) == canonical(p), \
            f"serial != parallel for {spec.describe()}"
    assert all(s.extra["fault.crashes"] > 0 for s in serial)
