"""Cluster sampler: periodic snapshots without perturbing the run."""

import dataclasses
import io

import pytest

from repro.experiments.runner import run_experiment
from repro.obs.sampler import (
    FLAG_ALIVE,
    FLAG_RESERVED,
    FLAG_THRASHING,
    SAMPLE_FIELDS,
    ClusterSampler,
    _flag_str,
)
from repro.obs.session import EXTRA_PREFIX, ObsSession
from repro.workload.programs import WorkloadGroup

from helpers import job, tiny_cluster


def sampled_run(period_s=2.0, **cluster_kwargs):
    cluster = tiny_cluster(**cluster_kwargs)
    sampler = ClusterSampler(cluster, period_s).start()
    for i in range(4):
        cluster.nodes[i % cluster.num_nodes].add_job(
            job(work=10.0, demand=20.0))
    cluster.sim.run()
    return cluster, sampler


class TestSampling:
    def test_period_must_be_positive(self):
        cluster = tiny_cluster()
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="positive"):
                ClusterSampler(cluster, bad)

    def test_start_is_idempotent(self):
        cluster = tiny_cluster()
        sampler = ClusterSampler(cluster, 1.0)
        sampler.start().start()
        assert sampler.num_samples == 1  # one t=0 row, not two

    def test_tick_spacing_and_shape(self):
        cluster, sampler = sampled_run(period_s=2.0)
        times = list(sampler.times)
        assert times[0] == 0.0
        assert all(b - a == pytest.approx(2.0)
                   for a, b in zip(times, times[1:]))
        n = cluster.num_nodes
        for metric in SAMPLE_FIELDS:
            assert len(sampler.series[metric]) == sampler.num_samples * n
            for node_id in range(n):
                assert len(sampler.node_series(metric, node_id)) == \
                    sampler.num_samples
        assert len(sampler.flags) == sampler.num_samples * n

    def test_daemon_tick_does_not_keep_the_run_alive(self):
        cluster = tiny_cluster()
        ClusterSampler(cluster, 1.0).start()
        cluster.nodes[0].add_job(job(work=5.0, demand=10.0))
        cluster.sim.run()  # would never return if the tick were live
        assert cluster.sim.now < 100.0

    def test_samples_see_load(self):
        _, sampler = sampled_run()
        running = sampler.totals("running")
        assert max(running) >= 1.0
        assert running[-1] >= 0.0
        idle = sampler.totals("idle_mb")
        assert min(idle) < idle[0]  # demand ate into idle memory
        alive = sampler.flag_counts(FLAG_ALIVE)
        assert all(count == sampler.num_nodes for count in alive)

    def test_flag_strings(self):
        assert _flag_str(0) == "-"
        assert _flag_str(FLAG_ALIVE) == "A"
        assert _flag_str(FLAG_ALIVE | FLAG_RESERVED) == "AR"
        assert _flag_str(FLAG_ALIVE | FLAG_THRASHING) == "AT"


class TestExports:
    def test_aggregate_keys(self):
        _, sampler = sampled_run()
        agg = sampler.aggregate()
        assert agg["sampler_samples"] == float(sampler.num_samples)
        assert agg["sampler_period_s"] == 2.0
        assert agg["sampler_min_idle_mb"] <= agg["sampler_mean_idle_mb"]
        assert agg["sampler_peak_running"] >= agg["sampler_mean_running"]
        assert agg["sampler_mean_dead_nodes"] == 0.0

    def test_empty_aggregate(self):
        sampler = ClusterSampler(tiny_cluster(), 1.0)
        agg = sampler.aggregate()
        assert agg == {"sampler_samples": 0.0, "sampler_period_s": 1.0}

    def test_csv_shape(self):
        cluster, sampler = sampled_run()
        buffer = io.StringIO()
        rows = sampler.write_csv(buffer)
        lines = buffer.getvalue().splitlines()
        assert rows == sampler.num_samples == len(lines) - 1
        header = lines[0].split(",")
        n = cluster.num_nodes
        # t + 6 totals + (len(SAMPLE_FIELDS) + flags) per node
        assert len(header) == 7 + n * (len(SAMPLE_FIELDS) + 1)
        assert header[0] == "t"
        assert "running_n0" in header and f"flags_n{n - 1}" in header
        for line in lines[1:]:
            assert len(line.split(",")) == len(header)

    def test_to_jsonable_timeline_inputs(self):
        _, sampler = sampled_run()
        doc = sampler.to_jsonable()
        ticks = sampler.num_samples
        assert len(doc["times"]) == ticks
        assert len(doc["total_idle_mb"]) == ticks
        assert len(doc["thrashing_nodes"]) == ticks
        assert doc["num_nodes"] == sampler.num_nodes


class TestSessionIntegration:
    def test_sampler_aggregates_reach_summary_extra(self):
        obs = ObsSession(record_events=False, sample_period=50.0)
        result = run_experiment(WorkloadGroup.SPEC, 1, seed=0, scale=0.1,
                                obs=obs)
        extra = result.summary.extra
        assert extra["obs.sampler_samples"] >= 2
        assert extra["obs.sampler_period_s"] == 50.0
        assert obs.sampler.num_samples == extra["obs.sampler_samples"]

    def test_sampler_csv_requires_sampler(self):
        obs = ObsSession(record_events=False)
        with pytest.raises(ValueError, match="sample_period"):
            obs.write_sampler_csv(io.StringIO())

    def test_sampling_does_not_change_the_summary(self):
        plain = run_experiment(WorkloadGroup.SPEC, 1, seed=0, scale=0.1,
                               policy="v-reconfiguration")
        obs = ObsSession(record_events=False, sample_period=10.0)
        sampled = run_experiment(WorkloadGroup.SPEC, 1, seed=0, scale=0.1,
                                 policy="v-reconfiguration", obs=obs)
        stripped = dataclasses.replace(
            sampled.summary,
            extra={k: v for k, v in sampled.summary.extra.items()
                   if not k.startswith(EXTRA_PREFIX)})
        assert stripped == plain.summary
